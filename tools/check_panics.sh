#!/usr/bin/env bash
# Guards the public API against undocumented panics.
#
# Every `panic!(` in library code (the bottom-of-file `#[cfg(test)]` modules
# are excluded) must appear verbatim in tools/panic_allowlist.txt. The
# intended shape of the allowlist is the set of documented panicking
# wrappers that delegate to `try_`-prefixed fallible APIs; anything else
# should return a typed `EngineError` instead.
#
# The `hum-qbh` and `hum-server` crates get a stricter scan: the storage
# layer promises that untrusted snapshot bytes can never panic and the
# server promises the same for untrusted wire bytes, so `.unwrap()` /
# `.expect(` / `unreachable!(` sites there (outside tests and comments) are
# held to the same allowlist discipline as `panic!(` is elsewhere. The
# kernel layer (crates/core/src/kernel/) gets the same strict treatment:
# it holds the workspace's only `unsafe`, so any hidden unwrap there is a
# debugging hazard out of proportion to its size. The streaming-session
# module (crates/core/src/session.rs) is strict too: it buffers
# caller-controlled frames, the same trust level as wire bytes — as is the
# segmented-query module (crates/core/src/segment.rs), which sits on the
# storage engine's load path and must never turn disk corruption into a
# panic. The transform planner (crates/core/src/plan.rs) is strict as
# well: its output is persisted and re-read from untrusted snapshot
# bytes, so the whole plan/measure/score path must stay typed-error-only.
#
# Run with `--update` after a deliberate change to a documented panic.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=tools/panic_allowlist.txt

scan() {
  find crates -path '*/src/*' -name '*.rs' -print0 | sort -z |
    while IFS= read -r -d '' f; do
      strict=0
      case "$f" in
        crates/qbh/src/*|crates/server/src/*|crates/core/src/kernel/*) strict=1 ;;
        crates/core/src/session.rs) strict=1 ;;
        crates/core/src/segment.rs) strict=1 ;;
        crates/core/src/plan.rs) strict=1 ;;
      esac
      awk -v file="$f" -v strict="$strict" '
        /^#\[cfg\(test\)\]/ { exit }  # test module starts: stop scanning
        {
          line = $0
          gsub(/^[ \t]+|[ \t]+$/, "", line)
          if (line ~ /^\/\//) next    # comments and doc examples
          if (line ~ /panic!\(/ ||
              (strict && line ~ /\.unwrap\(\)|\.expect\(|unreachable!\(/)) {
            print file ": " line
          }
        }
      ' "$f"
    done
}

if [[ "${1:-}" == "--update" ]]; then
  scan > "$allowlist"
  echo "check_panics: rewrote $allowlist ($(wc -l < "$allowlist") entries)"
  exit 0
fi

if ! diff -u "$allowlist" <(scan); then
  echo >&2
  echo "check_panics: library panic!() sites differ from $allowlist." >&2
  echo "If the change is deliberate and the panic is documented, run" >&2
  echo "  tools/check_panics.sh --update" >&2
  echo "Otherwise return a typed EngineError through a try_ API instead." >&2
  exit 1
fi
echo "check_panics: all library panic sites are allowlisted."
