#!/usr/bin/env bash
# Guards against new uses of the deprecated positional query entry points.
#
# The legacy `range_query{,_with}` / `knn{,_with}` / `query_batch` delegates
# on `DtwIndexEngine` and `ShardedEngine` are `#[deprecated]` in favour of
# `QueryRequest` + `try_query*` (typed errors, budgets, traces) — but other
# types legitimately expose methods with the same names (the `SpatialIndex`
# trait, `SubsequenceIndex`, `SongSearch`, `QbhSystem`, the wire `Client`),
# so the compiler's deprecation lint alone cannot police a plain grep and a
# plain grep alone cannot see types. This script takes the
# check_panics.sh approach: every textual call site of those method names
# across the workspace (tests, benches and examples included — doc comments
# excluded) must appear verbatim in tools/deprecated_allowlist.txt. Adding
# a call site — even on a non-deprecated type — means consciously updating
# the allowlist in the same change, where review can check the receiver.
#
# Run with `--update` after a deliberate change.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=tools/deprecated_allowlist.txt

scan() {
  find crates tests examples -name '*.rs' -print0 | sort -z |
    while IFS= read -r -d '' f; do
      awk -v file="$f" '
        {
          line = $0
          gsub(/^[ \t]+|[ \t]+$/, "", line)
          if (line ~ /^\/\//) next    # comments and doc examples
          if (line ~ /\.range_query\(|\.range_query_with\(|\.knn\(|\.knn_with\(|\.query_batch\(/) {
            print file ": " line
          }
        }
      ' "$f"
    done
}

if [[ "${1:-}" == "--update" ]]; then
  scan > "$allowlist"
  echo "check_deprecated: rewrote $allowlist ($(wc -l < "$allowlist") entries)"
  exit 0
fi

if ! diff -u "$allowlist" <(scan); then
  echo >&2
  echo "check_deprecated: positional query call sites differ from $allowlist." >&2
  echo "New code should build a QueryRequest and use try_query / try_query_batch." >&2
  echo "If the call is on a non-deprecated type (spatial index, subsequence" >&2
  echo "index, wire client) or deliberately exercises a deprecated delegate," >&2
  echo "run: tools/check_deprecated.sh --update" >&2
  exit 1
fi
echo "check_deprecated: all positional query call sites are allowlisted."
