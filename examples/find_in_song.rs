//! Subsequence search: locate a hummed fragment *anywhere* inside whole
//! songs — the §3.2 alternative to pre-segmented phrase matching, including
//! the position (in beats) where the fragment occurs.
//!
//! ```text
//! cargo run --release -p hum-qbh --example find_in_song
//! ```

use hum_music::{HummingSimulator, SingerProfile, Songbook, SongbookConfig};
use hum_qbh::songsearch::{SongSearch, SongSearchConfig};

fn main() {
    let book = Songbook::generate(&SongbookConfig::default());
    let config = SongSearchConfig::default();
    let search = SongSearch::build(&book, &config);
    println!(
        "Indexed {} songs as {} sliding windows (window {}, hop {}).",
        search.song_count(),
        search.window_count(),
        config.window,
        config.hop
    );
    println!(
        "Note the cost of subsequence search the paper predicts: {}x more index \
         entries than the {}-phrase database.\n",
        search.window_count() / (book.phrase_count()),
        book.phrase_count()
    );

    // Hum the 8th phrase of song 23 — deep inside the song, crossing no
    // phrase boundary the index knows about.
    let (song_idx, phrase_idx) = (23usize, 8usize);
    let phrase = &book.songs[song_idx].phrases[phrase_idx];
    let beats_before: f64 =
        book.songs[song_idx].phrases[..phrase_idx].iter().map(|p| p.total_beats()).sum();
    println!(
        "Humming {} notes that start {} beats into \"{}\"...",
        phrase.len(),
        beats_before,
        book.songs[song_idx].name
    );
    let mut singer = HummingSimulator::new(SingerProfile::good(), 4242);
    let hum = singer.sing_series(phrase, 0.01);

    let results = search.query(&hum, 5);
    println!("\nTop songs (best matching position inside each):");
    for (rank, m) in results.matches.iter().enumerate() {
        let marker = if m.song == song_idx { "  <-- correct song" } else { "" };
        println!(
            "  {}. {}  at beat {:>6.1}  distance {:8.3}{}",
            rank + 1,
            book.songs[m.song].name,
            m.offset_beats,
            m.distance,
            marker
        );
    }
    if let Some(hit) = results.matches.iter().find(|m| m.song == song_idx) {
        println!(
            "\nLocated the fragment {:.1} beats from its true position ({} vs {}).",
            (hit.offset_beats - beats_before).abs(),
            hit.offset_beats,
            beats_before
        );
    }
}
