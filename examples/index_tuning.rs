//! Index tuning: compare envelope transforms and backends on the same
//! workload — candidates, page accesses and exact-DTW counts per query.
//!
//! Illustrates the paper's two engineering points: (1) the New_PAA envelope
//! transform prunes far better than Keogh_PAA at every warping width, and
//! (2) one index serves every warping width, because the band is a
//! query-time parameter.
//!
//! ```text
//! cargo run --release -p hum-qbh --example index_tuning
//! ```

use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::system::{Backend, QbhConfig, QbhSystem, TransformKind};

fn main() {
    let db = MelodyDatabase::from_songbook(&SongbookConfig::default());

    // Twenty shared hum queries.
    let targets: Vec<u64> = (0..20).map(|i| (i * 97 + 13) % db.len() as u64).collect();
    let hums: Vec<Vec<f64>> = targets
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            HummingSimulator::new(SingerProfile::good(), 100 + i as u64)
                .sing_series(db.entry(t).expect("in range").melody(), 0.01)
        })
        .collect();

    println!("Transform comparison on {} melodies, R*-tree backend, k-NN(10):\n", db.len());
    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>10}",
        "transform", "candidates", "exact DTWs", "page reads", "hit@1"
    );
    for transform in [
        TransformKind::NewPaa,
        TransformKind::KeoghPaa,
        TransformKind::Dft,
        TransformKind::Dwt,
        TransformKind::Svd,
    ] {
        let system = QbhSystem::build(
            &db,
            &QbhConfig { transform: transform.into(), backend: Backend::RStar, ..QbhConfig::default() },
        );
        let (mut cand, mut exact, mut pages, mut hits) = (0u64, 0u64, 0u64, 0usize);
        for (hum, &target) in hums.iter().zip(&targets) {
            let r = system.query_series(hum, 10);
            cand += r.stats.index.candidates;
            exact += r.stats.exact_computations;
            pages += r.stats.index.node_accesses;
            if r.matches.first().is_some_and(|m| m.id == target) {
                hits += 1;
            }
        }
        let n = hums.len() as u64;
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>12.1} {:>7}/{}",
            format!("{transform:?}"),
            cand as f64 / n as f64,
            exact as f64 / n as f64,
            pages as f64 / n as f64,
            hits,
            n
        );
    }

    println!("\nBackend comparison (New_PAA transform):\n");
    println!("{:<12} {:>12} {:>12}", "backend", "candidates", "page reads");
    for backend in [Backend::RStar, Backend::Grid, Backend::Linear] {
        let system = QbhSystem::build(
            &db,
            &QbhConfig { backend, ..QbhConfig::default() },
        );
        let (mut cand, mut pages) = (0u64, 0u64);
        for hum in &hums {
            let r = system.query_series(hum, 10);
            cand += r.stats.index.candidates;
            pages += r.stats.index.node_accesses;
        }
        let n = hums.len() as f64;
        println!(
            "{:<12} {:>12.1} {:>12.1}",
            format!("{backend:?}"),
            cand as f64 / n,
            pages as f64 / n
        );
    }

    println!("\nOne index, every warping width (New_PAA, R*-tree, range radius 5.0):\n");
    let system = QbhSystem::build(&db, &QbhConfig::default());
    println!("{:<8} {:>12} {:>10}", "delta", "candidates", "matches");
    for delta in [0.02, 0.05, 0.1, 0.2] {
        let band = hum_core::band_for_warping_width(delta, 128);
        let (mut cand, mut matches) = (0u64, 0u64);
        for hum in &hums {
            let r = system.range_query(hum, band, 5.0);
            cand += r.stats.index.candidates;
            matches += r.stats.matches;
        }
        let n = hums.len() as f64;
        println!("{:<8} {:>12.1} {:>10.1}", delta, cand as f64 / n, matches as f64 / n);
    }
}
