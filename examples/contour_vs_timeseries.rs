//! Head-to-head: the time-series (warping index) approach vs the
//! traditional contour-string approach, on identical hum queries that went
//! through the acoustic front end — a miniature of the paper's Table 2.
//!
//! ```text
//! cargo run --release -p hum-qbh --example contour_vs_timeseries
//! ```

use hum_music::contour::{
    segment_notes, series_contour, ContourAlphabet, SegmenterConfig,
};
use hum_music::{SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::{evaluate_contour, evaluate_timeseries, generate_hums_audio};
use hum_qbh::system::{QbhConfig, QbhSystem};

fn main() {
    let db = MelodyDatabase::from_songbook(&SongbookConfig::default());
    let system = QbhSystem::build(&db, &QbhConfig::default());

    // Hums from both singer populations, through synthesis + pitch tracking.
    for (label, profile, seed) in [
        ("good singers", SingerProfile::good(), 2003u64),
        ("poor singers", SingerProfile::poor(), 77u64),
    ] {
        let hums = generate_hums_audio(&db, profile, 20, seed);
        let ts = evaluate_timeseries(&system, &hums);
        let contour = evaluate_contour(&db, &hums, ContourAlphabet::Five);
        println!("=== {} of {} melodies, 20 hums ===", label, db.len());
        println!("  time series : {ts}");
        println!("  contour     : {contour}");
        println!();
    }

    // Show *why* contour struggles: note segmentation of one hummed series.
    let hum = &generate_hums_audio(&db, SingerProfile::good(), 1, 5)[0];
    let melody = db.entry(hum.target).expect("in range").melody();
    let segments = segment_notes(&hum.series, &SegmenterConfig::default());
    println!(
        "Anatomy of one hum: the melody has {} notes; the segmenter recovered {} segments.",
        melody.len(),
        segments.len()
    );
    let recovered = series_contour(&hum.series, &SegmenterConfig::default(), ContourAlphabet::Five);
    let truth = hum_music::contour::melody_contour(melody, ContourAlphabet::Five);
    println!("  true contour      : {}", String::from_utf8_lossy(&truth));
    println!("  recovered contour : {}", String::from_utf8_lossy(&recovered));
    println!(
        "  edit distance     : {} (over {} letters)",
        hum_music::contour::edit_distance(&recovered, &truth),
        truth.len()
    );
    println!(
        "\nThe DTW index needs no segmentation at all: it matched this hum at rank {}.",
        system
            .query_series(&hum.series, 10)
            .matches
            .iter()
            .position(|m| m.id == hum.target)
            .map_or_else(|| "10+".to_string(), |p| (p + 1).to_string())
    );
}
