//! Quickstart: build a melody database, hum a phrase, find the song.
//!
//! ```text
//! cargo run --release -p hum-qbh --example quickstart
//! ```

use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::system::{QbhConfig, QbhSystem};

fn main() {
    // 1. A music database: 50 generated songs segmented into 1000 phrase
    //    melodies, the corpus shape of the paper's experiments.
    let db = MelodyDatabase::from_songbook(&SongbookConfig::default());
    println!("Indexed {} phrase melodies from 50 songs.", db.len());

    // 2. Build the warping index: normal forms of length 128, reduced to 8
    //    dimensions with the paper's New_PAA envelope transform, stored in
    //    an R*-tree.
    let system = QbhSystem::build(&db, &QbhConfig::default());

    // 3. Hum a phrase. The simulator reproduces typical humming errors:
    //    wrong absolute pitch, a different tempo, per-note timing jitter.
    let target = 437u64;
    let entry = db.entry(target).expect("in range");
    println!(
        "\nHumming phrase {} of \"{}\" ({} notes)...",
        entry.phrase(),
        format_args!("song {:02}", entry.song()),
        entry.melody().len()
    );
    let mut singer = HummingSimulator::new(SingerProfile::good(), 42);
    let hum = singer.sing_series(entry.melody(), 0.01);

    // 4. Search: envelope transform of the query -> R*-tree range/k-NN ->
    //    exact DTW refinement. No false negatives, few candidates.
    let results = system.query_series(&hum, 5);
    println!("\nTop 5 matches (band-constrained DTW distance):");
    for (rank, m) in results.matches.iter().enumerate() {
        let marker = if m.id == target { "  <-- the hummed phrase" } else { "" };
        println!(
            "  {}. song {:02} phrase {:02}  distance {:8.3}{}",
            rank + 1,
            m.song,
            m.phrase,
            m.distance,
            marker
        );
    }
    println!(
        "\nWork done: {} index candidates, {} exact DTW computations, {} page accesses.",
        results.stats.index.candidates,
        results.stats.exact_computations,
        results.stats.index.node_accesses,
    );
}
