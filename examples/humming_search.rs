//! The full acoustic pipeline: synthesize a hum as audio, write it to a WAV
//! file, pitch-track it at 10 ms frames, and search the melody database —
//! every stage of the paper's §3 architecture.
//!
//! ```text
//! cargo run --release -p hum-qbh --example humming_search
//! ```

use hum_audio::{track_pitch, HumNote, HumSynthesizer, PitchTrackerConfig, SynthConfig};
use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::system::{QbhConfig, QbhSystem};

fn main() {
    let db = MelodyDatabase::from_songbook(&SongbookConfig::default());
    let system = QbhSystem::build(&db, &QbhConfig::default());
    println!("Database ready: {} melodies.", db.len());

    // A (simulated) user hums phrase 612 from memory.
    let target = 612u64;
    let melody = db.entry(target).expect("in range").melody();
    let mut singer = HummingSimulator::new(SingerProfile::good(), 7);
    let sung = singer.sing_notes(melody);

    // Render the hum as a waveform: harmonics, vibrato, glides, breath
    // noise, loudness tremolo — a mono microphone signal.
    let notes: Vec<HumNote> =
        sung.iter().map(|n| HumNote { midi: n.midi, seconds: n.seconds }).collect();
    let synth = HumSynthesizer::new(SynthConfig::default());
    let audio = synth.render(&notes);
    println!(
        "Synthesized {:.1} s of humming audio at {} Hz.",
        audio.len() as f64 / 8000.0,
        8000
    );

    // Persist it like a recording session would.
    let wav = hum_audio::write_wav_mono(&audio, 8000);
    let path = std::env::temp_dir().join("hum_query.wav");
    if std::fs::write(&path, &wav).is_ok() {
        println!("Wrote the hum to {}.", path.display());
    }

    // Pitch-track: 10 ms frames -> fractional MIDI pitches; silence dropped.
    let track = track_pitch(&audio, &PitchTrackerConfig::default());
    println!(
        "Pitch tracker: {} frames, {:.0}% voiced.",
        track.frames.len(),
        track.voicing_rate() * 100.0
    );

    // Search through the same API the higher-level system uses.
    let results = system.query_audio(&audio, 8000, 10);
    println!("\nTop matches:");
    for (rank, m) in results.matches.iter().take(5).enumerate() {
        let marker = if m.id == target { "  <-- correct" } else { "" };
        println!(
            "  {}. song {:02} phrase {:02}  distance {:8.3}{}",
            rank + 1,
            m.song,
            m.phrase,
            m.distance,
            marker
        );
    }
    match results.matches.iter().position(|m| m.id == target) {
        Some(p) => println!("\nThe hummed melody ranked {} of {}.", p + 1, db.len()),
        None => println!("\nThe hummed melody did not reach the top 10."),
    }
}
