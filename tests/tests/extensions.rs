//! Integration tests for the extensions beyond the paper's headline
//! experiments: subsequence song search, binary persistence, retrieval
//! metrics, the L1 variant, key finding, and the HPS tracker — each
//! exercised across crate boundaries.

use hum_core::dtw::band_for_warping_width;
use hum_music::{HummingSimulator, SingerProfile, Songbook, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::eval::{generate_hums, retrieval_metrics, target_ranks};
use hum_qbh::fault::TempFile;
use hum_qbh::songsearch::{SongSearch, SongSearchConfig};
use hum_qbh::system::{QbhConfig, QbhSystem};

fn songbook_config() -> SongbookConfig {
    SongbookConfig { songs: 10, phrases_per_song: 5, ..SongbookConfig::default() }
}

#[test]
fn persisted_database_serves_the_same_hums() {
    let db = MelodyDatabase::from_songbook(&songbook_config());
    let config = QbhConfig::default();
    // TempFile paths are unique per test *and* per process, and the file is
    // removed on drop even when an assertion below panics — a pid-only name
    // collides when the test harness runs files in one process.
    let file = TempFile::unique("ext-test");
    hum_qbh::storage::save(file.path(), &db, &config).expect("save");
    let (restored_db, restored_config) = hum_qbh::storage::load(file.path()).expect("load");

    let original = QbhSystem::build(&db, &config);
    let restored = QbhSystem::build(&restored_db, &restored_config);
    let hums = generate_hums(&db, SingerProfile::good(), 6, 77);
    for hum in &hums {
        let a: Vec<u64> =
            original.query_series(&hum.series, 5).matches.iter().map(|m| m.id).collect();
        let b: Vec<u64> =
            restored.query_series(&hum.series, 5).matches.iter().map(|m| m.id).collect();
        assert_eq!(a, b, "persisted database must answer identically");
    }
}

#[test]
fn metrics_summarize_what_the_rank_bins_say() {
    let db = MelodyDatabase::from_songbook(&songbook_config());
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let hums = generate_hums(&db, SingerProfile::good(), 10, 21);
    let ranks = target_ranks(&system, &hums, 10);
    let metrics = retrieval_metrics(&ranks);
    // Good singers on a small corpus: strong MRR and near-total top-10.
    assert!(metrics.mrr > 0.5, "MRR {}", metrics.mrr);
    assert!(metrics.precision_at_10 >= 0.8, "P@10 {}", metrics.precision_at_10);
    assert!(metrics.precision_at_1 <= metrics.precision_at_10);
}

#[test]
fn phrase_system_and_song_search_agree_on_the_source_song() {
    let book = Songbook::generate(&songbook_config());
    let db = MelodyDatabase::from_songbook(&songbook_config());
    let phrase_system = QbhSystem::build(&db, &QbhConfig::default());
    let song_search = SongSearch::build(&book, &SongSearchConfig::default());

    // Targets span four different songs, restricted to phrases whose length
    // is reasonably covered by the song-search window: whole-song subsequence
    // matching cannot rank a phrase first when the fixed window covers far
    // more (or less) material than the hum, so very short/long phrases are
    // out of scope for this agreement check.
    let mut agreements = 0;
    for (i, target) in [3u64, 22, 33, 41].iter().enumerate() {
        let entry = db.entry(*target).unwrap();
        let mut singer = HummingSimulator::new(SingerProfile::good(), 300 + i as u64);
        let hum = singer.sing_series(entry.melody(), 0.01);
        let phrase_hit = phrase_system.query_series(&hum, 1).matches[0].song;
        let song_hit = song_search.query(&hum, 1).matches[0].song;
        if phrase_hit == song_hit && song_hit == entry.song() {
            agreements += 1;
        }
    }
    assert!(agreements >= 3, "only {agreements}/4 hums agreed across both systems");
}

#[test]
fn l1_lower_bound_chain_holds_on_real_hums() {
    // The L1 extension's no-false-negative chain, exercised end-to-end on
    // simulated hums against the melody corpus:
    //   L1Paa feature bound  <=  L1 envelope bound  <=  L1 banded DTW.
    let db = MelodyDatabase::from_songbook(&songbook_config());
    let normal = hum_core::normal::NormalForm::with_length(128);
    let paa = hum_core::l1::L1Paa::new(128, 8);
    let band = band_for_warping_width(0.1, 128);

    for (i, target) in [3u64, 19, 36].iter().enumerate() {
        let mut singer = HummingSimulator::new(SingerProfile::poor(), 900 + i as u64);
        let hum = singer.sing_series(db.entry(*target).unwrap().melody(), 0.01);
        let query = normal.apply(&hum);
        let env = hum_core::envelope::Envelope::compute(&query, band);
        let image = paa.project_envelope(&env);
        for entry in db.entries().iter().take(25) {
            let series = normal.apply(&entry.melody().to_time_series(4));
            let dtw = hum_core::l1::l1_ldtw(&query, &series, band);
            let lb_env = hum_core::l1::l1_envelope_distance(&env, &series);
            let lb_feat = paa.lower_bound(&image, &paa.project(&series));
            assert!(lb_env <= dtw + 1e-9, "envelope bound violated for id {}", entry.id());
            assert!(lb_feat <= lb_env + 1e-9, "feature bound violated for id {}", entry.id());
        }
    }
}

#[test]
fn key_estimates_are_stable_across_midi_roundtrip() {
    let direct = MelodyDatabase::from_songbook(&songbook_config());
    let round = MelodyDatabase::from_midi_roundtrip(&songbook_config());
    for (a, b) in direct.entries().iter().zip(round.entries()).take(20) {
        let ka = hum_music::key::estimate_key(a.melody());
        let kb = hum_music::key::estimate_key(b.melody());
        assert_eq!(ka, kb, "id {}", a.id());
    }
}

#[test]
fn both_pitch_trackers_feed_the_same_search_answer() {
    let db = MelodyDatabase::from_songbook(&songbook_config());
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let target = 18u64;
    let mut singer = HummingSimulator::new(SingerProfile::good(), 13);
    let sung = singer.sing_notes(db.entry(target).unwrap().melody());
    let notes: Vec<hum_audio::HumNote> =
        sung.iter().map(|n| hum_audio::HumNote { midi: n.midi, seconds: n.seconds }).collect();
    let audio = hum_audio::HumSynthesizer::new(hum_audio::SynthConfig::default()).render(&notes);

    let cfg = hum_audio::PitchTrackerConfig::default();
    let acf_series = hum_audio::track_pitch(&audio, &cfg).voiced_series();
    let hps_series = hum_audio::track_pitch_hps(&audio, &cfg).voiced_series();
    assert!(!acf_series.is_empty() && !hps_series.is_empty());
    let acf_top = system.query_series(&acf_series, 3);
    let hps_top = system.query_series(&hps_series, 3);
    assert!(acf_top.matches.iter().any(|m| m.id == target), "ACF route missed");
    assert!(hps_top.matches.iter().any(|m| m.id == target), "HPS route missed");
}
