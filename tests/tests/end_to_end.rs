//! End-to-end integration: every substrate chained together.
//!
//! melody (hum-music) → SMF bytes (hum-midi) → melody → time series →
//! warping index (hum-core + hum-index) ← pitch series ← pitch tracker
//! (hum-audio) ← synthesized hum audio ← perturbed notes (hum-music).

use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::system::{Backend, QbhConfig, QbhSystem, TransformKind};

fn small_db() -> MelodyDatabase {
    MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 12,
        phrases_per_song: 6,
        ..SongbookConfig::default()
    })
}

#[test]
fn midi_roundtrip_database_equals_direct_database() {
    let config =
        SongbookConfig { songs: 8, phrases_per_song: 4, ..SongbookConfig::default() };
    let direct = MelodyDatabase::from_songbook(&config);
    let roundtrip = MelodyDatabase::from_midi_roundtrip(&config);
    assert_eq!(direct.len(), roundtrip.len());
    for (a, b) in direct.entries().iter().zip(roundtrip.entries()) {
        assert_eq!(a.melody(), b.melody(), "id {}", a.id());
    }
}

#[test]
fn audio_route_and_symbolic_route_agree_on_the_target() {
    let db = small_db();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let target = 40u64;
    let melody = db.entry(target).unwrap().melody();

    // Symbolic route.
    let mut singer = HummingSimulator::new(SingerProfile::good(), 11);
    let series = singer.sing_series(melody, 0.01);
    let symbolic = system.query_series(&series, 10);

    // Audio route: same sung notes, rendered and re-tracked.
    let mut singer = HummingSimulator::new(SingerProfile::good(), 11);
    let sung = singer.sing_notes(melody);
    let notes: Vec<hum_audio::HumNote> =
        sung.iter().map(|n| hum_audio::HumNote { midi: n.midi, seconds: n.seconds }).collect();
    let audio = hum_audio::HumSynthesizer::new(hum_audio::SynthConfig::default()).render(&notes);
    let acoustic = system.query_audio(&audio, 8_000, 10);

    assert!(symbolic.matches.iter().any(|m| m.id == target), "symbolic route missed");
    assert!(acoustic.matches.iter().any(|m| m.id == target), "acoustic route missed");
}

#[test]
fn every_configuration_retrieves_its_own_phrases_exactly() {
    let db = small_db();
    for transform in [
        TransformKind::NewPaa,
        TransformKind::KeoghPaa,
        TransformKind::Dft,
        TransformKind::Dwt,
        TransformKind::Svd,
    ] {
        for backend in [Backend::RStar, Backend::Grid, Backend::Linear] {
            let system = QbhSystem::build(
                &db,
                &QbhConfig { transform: transform.into(), backend, ..QbhConfig::default() },
            );
            for id in [0u64, 17, 51, 71] {
                let series = db.entry(id).unwrap().melody().to_time_series(4);
                let top = &system.query_series(&series, 1).matches[0];
                assert_eq!(top.id, id, "{transform:?}/{backend:?}");
                assert!(top.distance < 1e-9);
            }
        }
    }
}

#[test]
fn wav_persistence_roundtrips_through_search() {
    let db = small_db();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let target = 23u64;
    let mut singer = HummingSimulator::new(SingerProfile::good(), 3);
    let sung = singer.sing_notes(db.entry(target).unwrap().melody());
    let notes: Vec<hum_audio::HumNote> =
        sung.iter().map(|n| hum_audio::HumNote { midi: n.midi, seconds: n.seconds }).collect();
    let audio = hum_audio::HumSynthesizer::new(hum_audio::SynthConfig::default()).render(&notes);

    // Save to WAV bytes and back — the recording-session path.
    let wav = hum_audio::write_wav_mono(&audio, 8_000);
    let (restored, rate) = hum_audio::read_wav_mono(&wav).expect("own WAV parses");
    let results = system.query_audio(&restored, rate, 10);
    assert!(results.matches.iter().any(|m| m.id == target));
}

#[test]
fn tempo_and_transposition_invariance_through_the_full_system() {
    let db = small_db();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let target = 30u64;
    let melody = db.entry(target).unwrap().melody();

    // A "perfect" hum at half tempo, transposed down a fourth.
    let slow_low: Vec<f64> = melody
        .transposed(-5)
        .to_time_series(8) // double the samples per beat = half tempo
        .to_vec();
    let results = system.query_series(&slow_low, 3);
    assert_eq!(results.matches[0].id, target);
    assert!(results.matches[0].distance < 1e-9, "normal form should cancel both distortions");
}
