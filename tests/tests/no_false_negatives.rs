//! The paper's central guarantee, exercised across crates with randomized
//! workloads: for every transform and every index backend, an ε-range query
//! through the GEMINI engine returns *exactly* the series whose true banded
//! DTW distance is within ε — never fewer (Theorem 1), never more (exact
//! refinement).

use hum_core::dtw::ldtw_distance;
use hum_core::engine::{DtwIndexEngine, EngineConfig, QueryRequest};
use hum_core::transform::dft::Dft;
use hum_core::transform::dwt::Dwt;
use hum_core::transform::paa::{KeoghPaa, NewPaa};
use hum_core::transform::svd::SvdTransform;
use hum_core::transform::EnvelopeTransform;
use hum_datasets::{generate, DatasetFamily, ALL_FAMILIES};
use hum_index::{GridFile, LinearScan, RStarTree, SpatialIndex};
use proptest::prelude::*;

const LEN: usize = 64;
const DIMS: usize = 8;

fn workload(family: DatasetFamily, n: usize, seed: u64) -> Vec<Vec<f64>> {
    generate(family, n, LEN, seed)
        .into_iter()
        .map(|s| hum_core::normal::NormalForm::with_length(LEN).apply(&s))
        .collect()
}

fn transforms(sample: &[Vec<f64>]) -> Vec<Box<dyn EnvelopeTransform>> {
    vec![
        Box::new(NewPaa::new(LEN, DIMS)),
        Box::new(KeoghPaa::new(LEN, DIMS)),
        Box::new(Dft::new(LEN, DIMS)),
        Box::new(Dwt::new(LEN, DIMS)),
        Box::new(SvdTransform::fit(sample, DIMS)),
    ]
}

fn backends() -> Vec<Box<dyn SpatialIndex>> {
    vec![
        Box::new(RStarTree::with_page_size(DIMS, 1024)),
        Box::new(GridFile::with_params(DIMS, 4, 32, 1024)),
        Box::new(LinearScan::with_page_size(DIMS, 1024)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn range_queries_are_exact_for_all_stacks(
        seed in 0u64..1000,
        family_idx in 0usize..24,
        band in 0usize..8,
        radius in 0.5f64..8.0,
    ) {
        let family = ALL_FAMILIES[family_idx];
        let database = workload(family, 60, seed);
        let query = workload(family, 1, seed ^ 0xFFFF).remove(0);

        let mut expected: Vec<u64> = database
            .iter()
            .enumerate()
            .filter(|(_, s)| ldtw_distance(&query, s, band) <= radius)
            .map(|(i, _)| i as u64)
            .collect();
        expected.sort_unstable();

        for transform in transforms(&database) {
            let name = transform.name().to_string();
            for index in backends() {
                let mut engine = DtwIndexEngine::new(
                    // Re-create per backend: transforms are consumed by the
                    // engine, so fit a fresh boxed clone from the same data.
                    clone_transform(&*transform, &database),
                    index,
                    EngineConfig::default(),
                );
                for (i, s) in database.iter().enumerate() {
                    engine.insert(i as u64, s.clone());
                }
                let request =
                    QueryRequest::range(radius).with_series(query.clone()).with_band(band);
                let mut got: Vec<u64> =
                    engine.query(&request).result.matches.iter().map(|m| m.0).collect();
                got.sort_unstable();
                prop_assert_eq!(&got, &expected, "transform {} family {:?}", name, family);
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_for_all_stacks(
        seed in 0u64..1000,
        family_idx in 0usize..24,
        band in 0usize..6,
        k in 1usize..12,
    ) {
        let family = ALL_FAMILIES[family_idx];
        let database = workload(family, 50, seed);
        let query = workload(family, 1, seed ^ 0xABC).remove(0);

        let mut brute: Vec<(u64, f64)> = database
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, ldtw_distance(&query, s, band)))
            .collect();
        brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        let mut engine = DtwIndexEngine::new(
            NewPaa::new(LEN, DIMS),
            RStarTree::with_page_size(DIMS, 1024),
            EngineConfig::default(),
        );
        for (i, s) in database.iter().enumerate() {
            engine.insert(i as u64, s.clone());
        }
        let request = QueryRequest::knn(k).with_series(query.clone()).with_band(band);
        let got = engine.query(&request).result.matches;
        prop_assert_eq!(got.len(), k.min(database.len()));
        for (g, b) in got.iter().zip(&brute) {
            prop_assert!((g.1 - b.1).abs() < 1e-9);
        }
    }
}

/// Rebuilds an equivalent transform (transforms are cheap to reconstruct;
/// SVD refits on the same data, giving the same basis).
fn clone_transform(
    t: &dyn EnvelopeTransform,
    data: &[Vec<f64>],
) -> Box<dyn EnvelopeTransform> {
    match t.name() {
        "New_PAA" => Box::new(NewPaa::new(LEN, DIMS)),
        "Keogh_PAA" => Box::new(KeoghPaa::new(LEN, DIMS)),
        "DFT" => Box::new(Dft::new(LEN, DIMS)),
        "DWT" => Box::new(Dwt::new(LEN, DIMS)),
        "SVD" => Box::new(SvdTransform::fit(data, DIMS)),
        other => unreachable!("unknown transform {other}"),
    }
}
