//! Cross-crate determinism contract of the batched query layer.
//!
//! Every batch entry point — the phrase-segmented QBH system, the
//! whole-song subsequence search, and the raw subsequence index — must
//! reproduce a plain sequential loop of single queries bit for bit
//! (matches *and* counters) for every thread count and chunk size.
//!
//! CI runs this file twice, with `HUM_THREADS=1` and `HUM_THREADS=8`; the
//! override feeds `BatchOptions::default()`, which the default-options
//! tests below exercise, while the explicit sweeps pin threads 1/2/8
//! directly.

use hum_core::batch::BatchOptions;
use hum_core::dtw::band_for_warping_width;
use hum_core::normal::NormalForm;
use hum_core::subsequence::{SubsequenceConfig, SubsequenceIndex, SubsequenceResult};
use hum_core::transform::paa::NewPaa;
use hum_index::RStarTree;
use hum_music::{HummingSimulator, SingerProfile, Songbook, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::songsearch::{SongSearch, SongSearchConfig, SongSearchResults};
use hum_qbh::system::{Backend, QbhConfig, QbhResults, QbhSystem};

const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

fn songbook() -> Songbook {
    Songbook::generate(&SongbookConfig {
        songs: 10,
        phrases_per_song: 5,
        ..SongbookConfig::default()
    })
}

/// Hums of real phrases plus seeded noise, the same corpus every substrate
/// queries below.
fn hums(book: &Songbook, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let song = &book.songs[i % book.songs.len()];
            let phrase = &song.phrases[i % song.phrases.len()];
            HummingSimulator::new(SingerProfile::good(), 400 + i as u64)
                .sing_series(phrase, 0.01)
        })
        .collect()
}

#[test]
fn qbh_system_batch_is_bit_identical_across_thread_counts() {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 10,
        phrases_per_song: 5,
        ..SongbookConfig::default()
    });
    for backend in [Backend::RStar, Backend::Grid] {
        let system =
            QbhSystem::build(&db, &QbhConfig { backend, ..QbhConfig::default() });
        let queries = hums(&songbook(), 7);
        let expected: Vec<QbhResults> =
            queries.iter().map(|h| system.query_series(h, 5)).collect();
        for threads in THREAD_SWEEP {
            for chunk in [1, 3] {
                let got =
                    system.query_series_batch(&queries, 5, &BatchOptions::new(threads, chunk));
                assert_eq!(got, expected, "backend={backend:?} threads={threads} chunk={chunk}");
            }
        }
        // Whatever HUM_THREADS CI sets, defaults must not change answers.
        let via_default = system.query_series_batch(&queries, 5, &BatchOptions::default());
        assert_eq!(via_default, expected, "backend={backend:?} default options");
    }
}

#[test]
fn song_search_batch_is_bit_identical_across_thread_counts() {
    let book = songbook();
    let search = SongSearch::build(&book, &SongSearchConfig::default());
    let queries = hums(&book, 6);
    let expected: Vec<SongSearchResults> =
        queries.iter().map(|h| search.query(h, 4)).collect();
    for threads in THREAD_SWEEP {
        let got = search.query_batch(&queries, 4, &BatchOptions::new(threads, 2));
        assert_eq!(got, expected, "threads={threads}");
    }
    let via_default = search.query_batch(&queries, 4, &BatchOptions::default());
    assert_eq!(via_default, expected, "default options");
}

#[test]
fn subsequence_index_batches_are_bit_identical_across_thread_counts() {
    let book = songbook();
    let config = SongSearchConfig::default();
    let sub_config = SubsequenceConfig {
        window: config.window,
        hop: config.hop,
        normal: NormalForm::with_length(config.normal_length),
    };
    let mut index = SubsequenceIndex::new(
        NewPaa::new(config.normal_length, config.feature_dims),
        RStarTree::new(config.feature_dims),
        sub_config,
    );
    for (i, song) in book.songs.iter().enumerate() {
        let mut series = Vec::new();
        for phrase in &song.phrases {
            series.extend(phrase.to_time_series(config.samples_per_beat));
        }
        index.insert_source(i as u64, &series);
    }
    let band = band_for_warping_width(config.warping_width, config.normal_length);
    let queries = hums(&book, 5);

    let expected_knn: Vec<SubsequenceResult> =
        queries.iter().map(|q| index.knn(q, band, 3, true)).collect();
    let expected_range: Vec<SubsequenceResult> =
        queries.iter().map(|q| index.range_query(q, band, 6.0)).collect();
    for threads in THREAD_SWEEP {
        let knn = index.knn_batch(&queries, band, 3, true, &BatchOptions::new(threads, 2));
        assert_eq!(knn, expected_knn, "knn threads={threads}");
        let range =
            index.range_query_batch(&queries, band, 6.0, &BatchOptions::new(threads, 2));
        assert_eq!(range, expected_range, "range threads={threads}");
    }
}
