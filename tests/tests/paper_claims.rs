//! Quick-scale checks that the paper's headline claims hold on every run —
//! the same checks the `repro` binary applies at paper scale.

use hum_bench_claims::*;

/// Thin re-exports so the test reads like the claims list.
mod hum_bench_claims {
    pub use hum_bench::experiments::{fig10, fig6, fig7, fig8, sweep, table2};
}

#[test]
fn claim_new_paa_tightness_dominates_across_all_datasets() {
    let out = fig6::run(&fig6::Params::quick());
    let failures = fig6::verify_shape(&out);
    assert!(failures.is_empty(), "{failures:?}");
    assert!(
        out.mean_improvement_ratio >= 1.3,
        "mean tightness improvement {:.2} too small",
        out.mean_improvement_ratio
    );
}

#[test]
fn claim_svd_wins_at_zero_width_and_new_paa_wins_at_large_width() {
    let out = fig7::run(&fig7::Params::quick());
    let failures = fig7::verify_shape(&out);
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn claim_fewer_candidates_on_music_database() {
    let out = fig8::run(&fig8::Params::quick());
    let failures = fig8::check(&out);
    assert!(failures.is_empty(), "{failures:?}");
}

#[test]
fn claim_fewer_candidates_and_page_accesses_on_random_walks() {
    let out = fig10::run(&fig10::Params::quick());
    let failures = fig10::check(&out);
    assert!(failures.is_empty(), "{failures:?}");
    // Page accesses advantage too, in aggregate.
    let pages = |method: &str| -> f64 {
        out.sweeps
            .iter()
            .find(|s| s.method == method)
            .unwrap()
            .points
            .iter()
            .map(|p| p.page_accesses)
            .sum()
    };
    assert!(
        pages("New_PAA") <= pages("Keogh_PAA"),
        "page accesses should favor New_PAA"
    );
}

#[test]
fn claim_time_series_approach_beats_contour_on_quality() {
    let out = table2::run(&table2::Params::quick());
    let (ts, contour) = table2::bins(&out);
    assert!(ts.top1 >= contour.top1, "ts {ts} vs contour {contour}");
    assert!(ts.within_top10() >= contour.within_top10());
}

#[test]
fn sweep_grid_covers_paper_axes() {
    let widths = sweep::paper_widths();
    assert_eq!(widths.len(), 10);
    assert_eq!(sweep::THRESHOLDS, [0.2, 0.8]);
}
