//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for structs with named fields — the only
//! shape the workspace derives on — by walking the raw token stream (no
//! `syn`/`quote`, which are unavailable offline). Generics, enums, and
//! `#[serde(...)]` attributes are intentionally unsupported and produce a
//! compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (direct-to-JSON-value) for a
/// named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("valid error tokens"),
    }
}

fn generate(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (#[...]) and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // pub(crate) etc.
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }

    match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        _ => return Err("vendored serde_derive supports only structs".to_string()),
    }

    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        _ => return Err("expected struct name".to_string()),
    };

    let body = loop {
        match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("vendored serde_derive does not support generics".to_string())
            }
            Some(_) => i += 1,
            None => return Err("expected named-field struct body".to_string()),
        }
    };

    let fields = field_names(body)?;
    let mut pushes = String::new();
    for f in &fields {
        pushes.push_str(&format!(
            "fields.push(({f:?}.to_string(), serde::Serialize::to_value(&self.{f})));\n"
        ));
    }
    let out = format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n\
         let mut fields: Vec<(String, serde::Value)> = Vec::new();\n\
         {pushes}\
         serde::Value::Object(fields)\n\
         }}\n\
         }}"
    );
    out.parse().map_err(|e| format!("generated impl failed to parse: {e:?}"))
}

/// Extracts field identifiers from the brace body of a named-field struct:
/// for each comma-separated chunk, the identifier immediately before the
/// first top-level `:`.
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut flush = |chunk: &mut Vec<TokenTree>| -> Result<(), String> {
        if chunk.is_empty() {
            return Ok(());
        }
        let mut name = None;
        for (idx, t) in chunk.iter().enumerate() {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ':' {
                    match chunk.get(idx.wrapping_sub(1)) {
                        Some(TokenTree::Ident(id)) => {
                            name = Some(id.to_string());
                            break;
                        }
                        _ => return Err("unsupported field shape".to_string()),
                    }
                }
            }
        }
        names.push(name.ok_or_else(|| "tuple structs are unsupported".to_string())?);
        chunk.clear();
        Ok(())
    };

    for tree in body {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == ',' => flush(&mut current)?,
            _ => current.push(tree),
        }
    }
    flush(&mut current)?;
    Ok(names)
}
