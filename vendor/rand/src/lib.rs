//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal, deterministic implementation of exactly the API surface it uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`RngExt`]
//! convenience methods (`random`, `random_range`, `random_bool`) and
//! [`seq::IndexedRandom::choose`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — high-quality, fast, and reproducible across runs, which is
//! all the workspace's synthetic-data generators require.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values obtainable uniformly from an RNG via [`RngExt::random`].
pub trait Random {
    /// Draws one value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u8 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Scalars uniformly samplable from a bounded interval (mirrors rand's
/// `SampleUniform`, so `random_range` stays generic in the scalar type and
/// float-literal inference works exactly as with the real crate).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if the interval is empty.
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! uint_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R, lo: $t, hi: $t, inclusive: bool,
            ) -> $t {
                let span = (hi as u128) - (lo as u128) + (inclusive as u128);
                assert!(span > 0, "cannot sample empty range");
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R, lo: $t, hi: $t, inclusive: bool,
            ) -> $t {
                let span = ((hi as i128) - (lo as i128) + (inclusive as i128)) as u128;
                assert!(span > 0, "cannot sample empty range");
                ((lo as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

uint_sample_uniform!(u8, u16, u32, u64, usize);
int_sample_uniform!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, inclusive: bool) -> f64 {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
        lo + f64::random_from(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32, inclusive: bool) -> f32 {
        assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
        lo + f32::random_from(rng) * (hi - lo)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniform value from a range.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `p` lies in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::random_from(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, per the
            // xoshiro reference implementation's seeding recommendation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Random selection from indexable collections.
    pub trait IndexedRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        for _ in 0..100 {
            let v = a.random_range(3..10usize);
            assert!((3..10).contains(&v));
            let f = a.random_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = a.random_range(4u8..=6);
            assert!((4..=6).contains(&i));
        }
    }

    #[test]
    fn bool_and_choose_behave() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..1000).filter(|_| rng.random_bool(0.3)).count();
        assert!(hits > 200 && hits < 400, "hits={hits}");
        let pool = [1, 2, 3];
        assert!(pool.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
