//! Offline stand-in for `serde`.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal serialization facility: [`Serialize`] converts a value directly
//! into a JSON [`Value`] tree (re-exported by the vendored `serde_json`),
//! and the `derive` feature re-exports a hand-rolled derive macro for
//! named-field structs. This covers exactly what the bench harness needs:
//! `#[derive(Serialize)]` on result structs and `serde_json::json!` /
//! `to_string_pretty` for persistence.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON value tree. Lives here (rather than in `serde_json`) so the
/// [`Serialize`] trait can target it without a circular dependency; the
/// vendored `serde_json` re-exports it.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, ample for bench counters).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! number_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

number_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_into_values() {
        assert_eq!(3usize.to_value(), Value::Number(3.0));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(vec![1u8, 2].to_value(), Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }
}
