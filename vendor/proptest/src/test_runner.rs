//! Configuration, case errors, and the deterministic case RNG.

/// Per-block configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one property case body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's assumptions were not met; sample another input.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Convenience constructor mirroring proptest's `fail`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic per-case generator (SplitMix64 seeded from the test path
/// and the case number, so every run samples the same inputs).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case of one named test.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15) }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)` with 53 mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample from an empty range");
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_test_and_case() {
        let mut a = TestRng::for_case("mod::test", 3);
        let mut b = TestRng::for_case("mod::test", 3);
        let mut c = TestRng::for_case("mod::test", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
