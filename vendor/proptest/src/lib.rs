//! Offline stand-in for `proptest`.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal property-testing harness with proptest's surface API: the
//! [`proptest!`] macro, `prop_assert*` / `prop_assume`, [`strategy::Strategy`]
//! with `prop_map` / `prop_flat_map` / `prop_filter`, ranges and tuples as
//! strategies, [`collection::vec`], [`prop_oneof!`], [`arbitrary::any`],
//! [`sample::Index`], and a tiny regex-subset string strategy.
//!
//! Differences from real proptest, deliberately accepted for a test-only
//! stand-in: no shrinking (a failing case reports its inputs via `Debug`
//! where the assertion formats them, but is not minimized), and a fixed
//! deterministic seed per test derived from the test path, so failures are
//! reproducible run to run.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The `prop` module alias (`prop::sample::Index`, `prop::collection`).
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut passed = 0u32;
            let mut attempts = 0u32;
            let max_attempts = config.cases.saturating_mul(20).max(1000);
            while passed < config.cases && attempts < max_attempts {
                attempts += 1;
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempts,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at sampled case {} (attempt {}): {}",
                            stringify!($name), passed, attempts, msg
                        );
                    }
                }
            }
            assert!(
                passed >= config.cases,
                "proptest '{}': too many rejected cases ({} passed of {} wanted)",
                stringify!($name), passed, config.cases
            );
        }
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
}

/// Fails the current property case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`", lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`: {}", lhs, rhs, format!($($fmt)+)
        );
    }};
}

/// Fails the current property case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?}` == `{:?}`", lhs, rhs
        );
    }};
}

/// Rejects (skips) the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// A uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
