//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values spanning a wide but well-behaved magnitude range.
        (rng.next_f64() - 0.5) * 2e6
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::from_raw(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_domains() {
        let mut rng = TestRng::for_case("arbitrary::test", 1);
        let mut seen = [false; 256];
        for _ in 0..6000 {
            seen[any::<u8>().generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() > 200);
    }
}
