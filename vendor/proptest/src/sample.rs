//! `prop::sample::Index` — a length-agnostic random index.

/// A random index usable with any collection length: `idx.index(len)` maps
/// the underlying raw draw uniformly into `[0, len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Builds from a raw random value (used by `any::<Index>()`).
    pub fn from_raw(raw: usize) -> Self {
        Index { raw }
    }

    /// The index into a collection of length `len`.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        self.raw % len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_stays_in_bounds() {
        for raw in [0usize, 1, 17, usize::MAX] {
            let idx = Index::from_raw(raw);
            for len in [1usize, 2, 31] {
                assert!(idx.index(len) < len);
            }
        }
    }
}
