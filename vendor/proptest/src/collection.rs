//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as a vector-length specification.
pub trait IntoSizeRange {
    /// Inclusive bounds on the length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range");
        (*self.start(), *self.end())
    }
}

/// Strategy producing vectors whose elements come from `element` and whose
/// length is uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy { element, min_len, max_len }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.max_len - self.min_len + 1;
        let len = self.min_len + rng.next_index(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_every_spec_form() {
        let mut rng = TestRng::for_case("collection::test", 1);
        for _ in 0..100 {
            assert_eq!(vec(0u8..4, 3usize).generate(&mut rng).len(), 3);
            let a = vec(0u8..4, 1..5usize).generate(&mut rng);
            assert!((1..5).contains(&a.len()));
            let b = vec(-1.0f64..1.0, 2..=6usize).generate(&mut rng);
            assert!((2..=6).contains(&b.len()));
        }
    }
}
