//! A tiny regex-subset string generator backing `&str` strategies.
//!
//! Supports exactly what simple test patterns need: literal characters,
//! character classes `[a-z0-9 _]` (ranges and singletons), and the
//! quantifiers `{n}`, `{m,n}`, `*` (0–8), `+` (1–8), and `?` applied to the
//! preceding atom. Anything else panics loudly rather than silently
//! generating wrong data.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u32 = ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                let mut pick = rng.next_index(total as usize) as u32;
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick).expect("valid class char");
                    }
                    pick -= span;
                }
                unreachable!("class sampling out of bounds")
            }
        }
    }
}

/// Generates a string matching the supported regex subset.
///
/// # Panics
/// Panics on unsupported regex syntax.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed class in regex {pattern:?}"));
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in regex {pattern:?}");
                i = close + 1;
                Atom::Class(ranges)
            }
            '\\' => {
                let next = *chars.get(i + 1).unwrap_or_else(|| panic!("trailing backslash"));
                i += 2;
                match next {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    c => Atom::Literal(c),
                }
            }
            '{' | '}' | '*' | '+' | '?' => panic!("dangling quantifier in regex {pattern:?}"),
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };

        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed quantifier in regex {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("quantifier lower bound"),
                        hi.trim().parse::<usize>().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        let count = min + rng.next_index(max - min + 1);
        for _ in 0..count {
            out.push(atom.sample(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_matching_strings() {
        let mut rng = TestRng::for_case("string::test", 1);
        for _ in 0..100 {
            let s = generate_matching("[a-zA-Z0-9 ]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
            let t = generate_matching("ab[0-3]+x?", &mut rng);
            assert!(t.starts_with("ab"));
        }
    }
}
