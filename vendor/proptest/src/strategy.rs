//! The [`Strategy`] trait, range/tuple/constant strategies, and combinators.

use crate::test_runner::TestRng;

/// A recipe for sampling values of one type. Unlike real proptest there is
/// no value tree / shrinking: `generate` draws one concrete value.
pub trait Strategy {
    /// The type of sampled values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Samples a value, then samples from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects sampled values failing the predicate (resampling locally; a
    /// predicate that rejects everything panics after many attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies of one value type.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds the union.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of nothing");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.next_index(self.options.len());
        self.options[pick].generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive samples", self.whence);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// `&'static str` strategies are regex patterns generating matching strings
/// (a small subset — see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_combinators_sample_in_bounds() {
        let mut rng = TestRng::for_case("strategy::test", 1);
        for _ in 0..200 {
            let v = (3u8..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let (a, b) = (0u32..4, Just(7i32)).generate(&mut rng);
            assert!(a < 4 && b == 7);
            let doubled = (0usize..5).prop_map(|x| x * 2).generate(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 10);
            let odd = (0u32..100).prop_filter("odd", |x| x % 2 == 1).generate(&mut rng);
            assert!(odd % 2 == 1);
            let nested =
                (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..9, n..=n)).generate(&mut rng);
            assert!((1..4).contains(&nested.len()));
        }
    }

    #[test]
    fn union_samples_every_arm() {
        let mut rng = TestRng::for_case("strategy::union", 1);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
