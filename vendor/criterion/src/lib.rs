//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::{iter, iter_batched}`, `criterion_group!`, `criterion_main!` —
//! backed by a simple adaptive wall-clock timer: each benchmark is warmed up,
//! then run until it accumulates a fixed time budget, and the mean
//! nanoseconds per iteration is printed. No statistics, plots, or baselines;
//! enough to compare kernels and track regressions by eye.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (re-export of
/// `std::hint::black_box` for criterion API compatibility).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
    /// Fixed number of batches.
    NumBatches(u64),
    /// Fixed number of iterations per batch.
    NumIterations(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark id: a plain string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    /// Measured mean nanoseconds per iteration, filled by `iter*`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine` until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and a first estimate of per-call cost.
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let target_iters =
            (self.budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000_000) as u64;
        let timer = Instant::now();
        for _ in 0..target_iters {
            std_black_box(routine());
        }
        let elapsed = timer.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / target_iters as f64;
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup cost
    /// from the per-iteration estimate only crudely (setup runs inside the
    /// loop but its cost is measured and subtracted).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Estimate setup cost alone.
        let setup_timer = Instant::now();
        let first_input = setup();
        let setup_cost = setup_timer.elapsed();
        let start = Instant::now();
        std_black_box(routine(first_input));
        let once = start.elapsed().max(Duration::from_nanos(1));

        let target_iters =
            (self.budget.as_nanos() / (once + setup_cost).as_nanos().max(1)).clamp(1, 1_000_000)
                as u64;
        let mut routine_total = Duration::ZERO;
        for _ in 0..target_iters {
            let input = setup();
            let timer = Instant::now();
            std_black_box(routine(input));
            routine_total += timer.elapsed();
        }
        self.ns_per_iter = routine_total.as_nanos() as f64 / target_iters as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Adjusts the sampling effort (mapped onto the time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion's default is 100 samples; scale our default budget.
        self.sample_budget = Duration::from_millis((n as u64).clamp(10, 200));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, self.sample_budget, |b| f(b));
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, self.sample_budget, |b| f(b, input));
        self
    }

    /// Ends the group (formatting only).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with `--bench`; any bare trailing
        // argument is treated as a substring filter, like criterion proper.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_budget: Duration::from_millis(100),
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_id();
        self.run_one(&full, Duration::from_millis(100), |b| f(b));
        self
    }

    fn run_one(&self, id: &str, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { budget, ns_per_iter: f64::NAN };
        f(&mut bencher);
        let ns = bencher.ns_per_iter;
        if ns.is_nan() {
            println!("{id:<60} (no measurement)");
        } else if ns >= 1_000_000.0 {
            println!("{id:<60} {:>12.3} ms/iter", ns / 1_000_000.0);
        } else if ns >= 1_000.0 {
            println!("{id:<60} {:>12.3} us/iter", ns / 1_000.0);
        } else {
            println!("{id:<60} {ns:>12.1} ns/iter");
        }
    }
}

/// Declares a group of benchmark functions as a single callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { budget: Duration::from_millis(5), ns_per_iter: f64::NAN };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.ns_per_iter.is_finite() && b.ns_per_iter > 0.0);
        b.iter_batched(|| vec![1u64; 100], |v| v.iter().sum::<u64>(), BatchSize::LargeInput);
        assert!(b.ns_per_iter.is_finite() && b.ns_per_iter > 0.0);
    }
}
