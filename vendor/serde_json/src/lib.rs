//! Offline stand-in for `serde_json`.
//!
//! Re-exports the vendored `serde`'s [`Value`] tree and provides the entry
//! points the workspace uses: the [`json!`] macro over a serializable
//! expression, [`to_value`], [`to_string`] / [`to_string_pretty`], and a
//! [`from_str`] parser back into a [`Value`] tree (used by the wire
//! protocol in `hum-server`).
//!
//! Number fidelity: numbers are stored as `f64`. The writers emit either a
//! plain integer (for whole values below 10^15) or Rust's `{}` formatting,
//! which is the shortest string that round-trips the `f64` exactly; the
//! parser goes through `str::parse::<f64>()`, which is correctly rounded.
//! A finite `f64` therefore survives a write→parse round trip bit for bit —
//! the property the serving layer's determinism tests rely on.

pub use serde::Value;

use std::fmt::Write as _;

/// Serialization or parse error. Serialization through the vendored
/// pipeline is infallible; parse errors carry a message with the byte
/// offset where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn parse(offset: usize, message: &str) -> Self {
        Error { message: format!("json parse error at byte {offset}: {message}") }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.message.is_empty() {
            f.write_str("json serialization error")
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Pretty-prints a serializable value as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Compact single-line JSON (no spaces or newlines) — the wire format.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Maximum nesting depth [`from_str`] accepts, so untrusted input cannot
/// overflow the stack with `[[[[…]]]]`.
pub const MAX_PARSE_DEPTH: usize = 128;

/// Parses a JSON document into a [`Value`] tree.
///
/// Accepts exactly one top-level value (trailing whitespace allowed).
/// Numbers become `f64` (see the module docs for the round-trip contract);
/// objects keep their key order and permit duplicate keys (last one is
/// still reachable by scanning — lookups in this workspace take the first).
///
/// # Errors
/// A typed [`Error`] with the byte offset for any malformed input: garbage
/// tokens, unterminated strings/containers, invalid escapes, non-UTF8
/// escape sequences, numbers that do not parse, trailing data, or nesting
/// beyond [`MAX_PARSE_DEPTH`].
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing data after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, &format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(self.pos, &format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_PARSE_DEPTH {
            return Err(Error::parse(self.pos, "nesting too deep"));
        }
        match self.peek() {
            None => Err(Error::parse(self.pos, "unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => {
                Err(Error::parse(self.pos, &format!("unexpected byte 0x{other:02x}")))
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest plain run in one shot (the common case).
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, but a run may end mid-UTF8 only at
                // '"', '\\', or a control byte — all ASCII — so the run is
                // always valid UTF-8.
                match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(Error::parse(start, "invalid utf-8 in string")),
                }
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(Error::parse(self.pos, "control byte in string")),
                None => return Err(Error::parse(self.pos, "unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let at = self.pos;
        let b = self.peek().ok_or_else(|| Error::parse(at, "unterminated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(Error::parse(at, "invalid low surrogate"));
                        }
                        let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        char::from_u32(c)
                            .ok_or_else(|| Error::parse(at, "invalid surrogate pair"))?
                    } else {
                        return Err(Error::parse(at, "unpaired surrogate"));
                    }
                } else {
                    char::from_u32(hi).ok_or_else(|| Error::parse(at, "invalid \\u escape"))?
                }
            }
            other => {
                return Err(Error::parse(at, &format!("invalid escape '\\{}'", other as char)))
            }
        })
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let at = self.pos;
        let end = at.checked_add(4).filter(|&e| e <= self.bytes.len());
        let slice = end.map(|e| &self.bytes[at..e]);
        let hex = slice
            .and_then(|s| std::str::from_utf8(s).ok())
            .and_then(|s| u32::from_str_radix(s, 16).ok());
        match hex {
            Some(v) => {
                self.pos += 4;
                Ok(v)
            }
            None => Err(Error::parse(at, "expected 4 hex digits")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            Ok(_) => Err(Error::parse(start, "number out of range")),
            Err(_) => Err(Error::parse(start, "invalid number")),
        }
    }
}

/// Builds a [`Value`] from a serializable expression.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN; mirror serde_json's null
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("fig9".to_string())),
            ("counts".to_string(), Value::Array(vec![Value::Number(1.0), Value::Number(2.5)])),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"fig9\""));
        assert!(s.contains("2.5"));
        assert!(s.starts_with("{\n"));
    }

    #[test]
    fn json_macro_wraps_serializable_values() {
        assert_eq!(json!(3u32), Value::Number(3.0));
        assert_eq!(json!(null), Value::Null);
        let escaped = to_string_pretty(&json!("a\"b")).unwrap();
        assert_eq!(escaped, "\"a\\\"b\"");
    }

    #[test]
    fn compact_writer_emits_one_line() {
        let v = Value::Object(vec![
            ("op".to_string(), Value::String("knn".to_string())),
            ("pitch".to_string(), Value::Array(vec![Value::Number(1.0), Value::Number(-2.5)])),
            ("trace".to_string(), Value::Bool(false)),
            ("band".to_string(), Value::Null),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"op\":\"knn\",\"pitch\":[1,-2.5],\"trace\":false,\"band\":null}"
        );
    }

    #[test]
    fn parses_every_value_kind() {
        let v = from_str(
            " {\"a\": [1, -2.5, 1e3, null, true, false], \"b\": {\"c\": \"x\\ny\"}} ",
        )
        .unwrap();
        let Value::Object(fields) = &v else { panic!("object") };
        assert_eq!(fields[0].0, "a");
        assert_eq!(
            fields[0].1,
            Value::Array(vec![
                Value::Number(1.0),
                Value::Number(-2.5),
                Value::Number(1000.0),
                Value::Null,
                Value::Bool(true),
                Value::Bool(false),
            ])
        );
        assert_eq!(
            fields[1].1,
            Value::Object(vec![("c".to_string(), Value::String("x\ny".to_string()))])
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["", "plain", "a\"b\\c/d", "tab\there\nnewline", "unicode \u{1F600} é", "\u{0007}"]
        {
            let written = to_string(&Value::String(s.to_string())).unwrap();
            assert_eq!(from_str(&written).unwrap(), Value::String(s.to_string()), "{written}");
        }
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            from_str("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            Value::String("A\u{1F600}".to_string())
        );
    }

    #[test]
    fn f64_values_round_trip_bit_for_bit() {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut values = vec![0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -1e-300];
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            values.push(f64::from_bits(state >> 12 | 0x3FF0000000000000)); // [1, 2)
            values.push((state as f64 / 1e3).fract() * 1e6 - 5e5);
        }
        for v in values {
            let written = to_string(&Value::Number(v)).unwrap();
            match from_str(&written).unwrap() {
                Value::Number(parsed) => {
                    assert_eq!(parsed.to_bits(), v.to_bits(), "{v} -> {written} -> {parsed}")
                }
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "", "{", "}", "[1,", "[1 2]", "{\"a\"}", "{\"a\":}", "{a:1}", "tru", "nul",
            "\"unterminated", "\"bad \\q escape\"", "\"\\u12\"", "\"\\ud800 lone\"",
            "1 2", "1..2", "--1", "1e", "+1", "nan", "inf", "1e999",
            "[1] trailing", "\u{0}",
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_PARSE_DEPTH), "]".repeat(MAX_PARSE_DEPTH));
        assert!(from_str(&deep_ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(600), "]".repeat(600));
        let err = from_str(&too_deep).unwrap_err();
        assert!(err.to_string().contains("nesting too deep"), "{err}");
    }

    #[test]
    fn duplicate_keys_and_key_order_are_preserved() {
        let v = from_str("{\"z\":1,\"a\":2,\"z\":3}").unwrap();
        let Value::Object(fields) = v else { panic!("object") };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "z"]);
    }
}
