//! Offline stand-in for `serde_json`.
//!
//! Re-exports the vendored `serde`'s [`Value`] tree and provides the three
//! entry points the workspace uses: the [`json!`] macro over a serializable
//! expression, [`to_value`], and [`to_string_pretty`].

pub use serde::Value;

use std::fmt::Write as _;

/// Serialization error (the vendored pipeline is infallible; this exists so
/// call sites can keep serde_json's `Result`-shaped API).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("json serialization error")
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Pretty-prints a serializable value as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Builds a [`Value`] from a serializable expression.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN; mirror serde_json's null
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("fig9".to_string())),
            ("counts".to_string(), Value::Array(vec![Value::Number(1.0), Value::Number(2.5)])),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"fig9\""));
        assert!(s.contains("2.5"));
        assert!(s.starts_with("{\n"));
    }

    #[test]
    fn json_macro_wraps_serializable_values() {
        assert_eq!(json!(3u32), Value::Number(3.0));
        assert_eq!(json!(null), Value::Null);
        let escaped = to_string_pretty(&json!("a\"b")).unwrap();
        assert_eq!(escaped, "\"a\\\"b\"");
    }
}
