#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q

# The batch layer's determinism contract must hold at both extremes of the
# HUM_THREADS override (BatchOptions::default() reads it). The obs suite
# additionally checks that traces and registry counters are thread-count-
# invariant and that tracing never changes an answer.
HUM_THREADS=1 cargo test -q -p hum-core --test batch
HUM_THREADS=8 cargo test -q -p hum-core --test batch
HUM_THREADS=1 cargo test -q -p hum-core --test obs
HUM_THREADS=8 cargo test -q -p hum-core --test obs
HUM_THREADS=1 cargo test -q -p hum-integration-tests --test batch_determinism
HUM_THREADS=8 cargo test -q -p hum-integration-tests --test batch_determinism

# Storage durability: exhaustive fault-injection, truncation, and bit-flip
# matrices over both snapshot formats, plus the compaction crash-state
# enumeration for the segmented store. Every fault must surface as a typed
# StorageError — never a panic, never silently wrong data.
cargo test -q -p hum-qbh --test storage_faults

# Segmented storage engine: the memtable-over-segments view must answer
# bit-identically to the monolithic build at every segment layout x shard
# count, reloads and compactions must change nothing, and removals must be
# durable — at both extremes of the scatter fanout override.
HUM_THREADS=1 cargo test -q -p hum-core --lib segment
HUM_THREADS=8 cargo test -q -p hum-core --lib segment
HUM_THREADS=1 cargo test -q -p hum-qbh --test store
HUM_THREADS=8 cargo test -q -p hum-qbh --test store

# Serving: transport-level tests against a mock service, then end-to-end
# bit-identity/overload/deadline/drain tests and the wire-protocol fuzz
# matrix against the real system, at both extremes of the thread override.
cargo test -q -p hum-server
HUM_THREADS=1 cargo test -q -p hum-qbh --test server_integration
HUM_THREADS=8 cargo test -q -p hum-qbh --test server_integration
HUM_THREADS=1 cargo test -q -p hum-qbh --test server_fuzz
HUM_THREADS=8 cargo test -q -p hum-qbh --test server_fuzz

# Streaming sessions: refining a session must be bit-identical to a
# one-shot query over the same prefix — in process (every shard count x
# kernel mode) and over the wire — and the lifecycle matrix (eviction,
# byte caps, deadlines, post-close ops, sessionful fuzz) must answer
# with typed errors, at both extremes of the thread override.
HUM_THREADS=1 cargo test -q -p hum-core --test session
HUM_THREADS=8 cargo test -q -p hum-core --test session
HUM_THREADS=1 cargo test -q -p hum-qbh --test session_server
HUM_THREADS=8 cargo test -q -p hum-qbh --test session_server

# Sharding: matches must be bit-identical to the monolithic engine at
# every shard count — in process, through the batch API, over the wire,
# and after a snapshot round trip with a shard-count override — at both
# extremes of the scatter fanout default (HUM_THREADS caps it).
HUM_THREADS=1 cargo test -q -p hum-core --test shard
HUM_THREADS=8 cargo test -q -p hum-core --test shard
HUM_THREADS=1 cargo test -q -p hum-qbh --test sharding
HUM_THREADS=8 cargo test -q -p hum-qbh --test sharding

# Transform planning: the planner must be a pure function of its seeded
# inputs (property suite), and a store or snapshot created with
# TransformChoice::Auto must reopen with the identical persisted plan and
# answer bit-identically to a Fixed rebuild — at both extremes of the
# thread override, since planning happens once at build time and must not
# depend on parallelism.
HUM_THREADS=1 cargo test -q -p hum-core --test plan
HUM_THREADS=8 cargo test -q -p hum-core --test plan
HUM_THREADS=1 cargo test -q -p hum-qbh --test plan_store
HUM_THREADS=8 cargo test -q -p hum-qbh --test plan_store

# Kernel layer: the `simd` feature (and the KernelMode it selects) may
# change speed but never bits. The property suite runs under both feature
# states, then the engine digest — answers and counters over a fixed
# workload on every backend, including the f32-prefilter on/off sections —
# is diffed byte-for-byte across simd off/on × HUM_THREADS 1/8.
cargo test -q -p hum-core --test kernel
cargo test -q -p hum-core --features simd --test kernel
DIGEST_DIR=$(mktemp -d)
trap 'rm -rf "$DIGEST_DIR"' EXIT
HUM_THREADS=1 cargo run -q --release -p hum-core --example engine_digest \
    > "$DIGEST_DIR/scalar_t1.txt"
HUM_THREADS=8 cargo run -q --release -p hum-core --example engine_digest \
    > "$DIGEST_DIR/scalar_t8.txt"
HUM_THREADS=1 cargo run -q --release -p hum-core --features simd --example engine_digest \
    > "$DIGEST_DIR/simd_t1.txt"
HUM_THREADS=8 cargo run -q --release -p hum-core --features simd --example engine_digest \
    > "$DIGEST_DIR/simd_t8.txt"
cmp "$DIGEST_DIR/scalar_t1.txt" "$DIGEST_DIR/scalar_t8.txt"
cmp "$DIGEST_DIR/scalar_t1.txt" "$DIGEST_DIR/simd_t1.txt"
cmp "$DIGEST_DIR/scalar_t1.txt" "$DIGEST_DIR/simd_t8.txt"
echo "engine_digest bit-identical across simd x threads"

# Scale harness smoke: the planner-vs-fixed decade sweep at quick scale,
# including its shape check that the chosen transform's measured tightness
# dominates every rejected candidate. Results land in the throwaway digest
# dir, not results/ (the committed baseline is regenerated deliberately).
cargo run -q --release -p hum-bench --bin repro -- scale --quick --out "$DIGEST_DIR/scale"

# Every panic!() in library code must be a documented wrapper around a
# try_ API (tools/panic_allowlist.txt); hum-qbh and hum-server are
# additionally scanned for .unwrap()/.expect() since they parse untrusted
# bytes (snapshots and wire frames respectively). The kernel layer is held
# to the same standard (it additionally contains the only unsafe in the
# workspace, each block SAFETY-annotated).
./tools/check_panics.sh

# The deprecated panicking entry points must gain no new first-party
# callers (tools/deprecated_allowlist.txt pins the frozen set).
./tools/check_deprecated.sh

cargo clippy --all-targets -- -D warnings
cargo clippy -p hum-core --all-targets --features simd -- -D warnings
