#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q

# The batch layer's determinism contract must hold at both extremes of the
# HUM_THREADS override (BatchOptions::default() reads it). The obs suite
# additionally checks that traces and registry counters are thread-count-
# invariant and that tracing never changes an answer.
HUM_THREADS=1 cargo test -q -p hum-core --test batch
HUM_THREADS=8 cargo test -q -p hum-core --test batch
HUM_THREADS=1 cargo test -q -p hum-core --test obs
HUM_THREADS=8 cargo test -q -p hum-core --test obs
HUM_THREADS=1 cargo test -q -p hum-integration-tests --test batch_determinism
HUM_THREADS=8 cargo test -q -p hum-integration-tests --test batch_determinism

# Every panic!() in library code must be a documented wrapper around a
# try_ API (tools/panic_allowlist.txt).
./tools/check_panics.sh

cargo clippy --all-targets -- -D warnings
