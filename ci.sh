#!/usr/bin/env bash
# Local CI gate: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q

# The batch layer's determinism contract must hold at both extremes of the
# HUM_THREADS override (BatchOptions::default() reads it).
HUM_THREADS=1 cargo test -q -p hum-core --test batch
HUM_THREADS=8 cargo test -q -p hum-core --test batch
HUM_THREADS=1 cargo test -q -p hum-integration-tests --test batch_determinism
HUM_THREADS=8 cargo test -q -p hum-integration-tests --test batch_determinism

cargo clippy --all-targets -- -D warnings
