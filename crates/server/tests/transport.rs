//! Transport-level tests against a mock service whose queries block on a
//! gate channel, making overload, drain, and queue-wait deadlines
//! deterministic instead of timing-dependent.

use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use hum_core::engine::{EngineError, EngineStats, QueryBudget, QueryScratch};
use hum_core::obs::{Metric, MetricsSink};
use hum_server::{
    Client, ClientError, QbhService, QueryOptions, Server, ServerConfig, ServiceError,
    ServiceOutcome, ServiceQuery,
};

/// Every query announces itself on `started`, then blocks until the test
/// sends one `()` down the gate; insert and remove are bookkeeping-only.
struct GateService {
    gate: Mutex<mpsc::Receiver<()>>,
    started: mpsc::Sender<()>,
    len: usize,
}

impl GateService {
    fn new() -> (GateService, mpsc::Sender<()>, mpsc::Receiver<()>) {
        let (gate_tx, gate_rx) = mpsc::channel();
        let (started_tx, started_rx) = mpsc::channel();
        let service =
            GateService { gate: Mutex::new(gate_rx), started: started_tx, len: 3 };
        (service, gate_tx, started_rx)
    }
}

impl QbhService for GateService {
    fn query(
        &self,
        _query: &ServiceQuery,
        pitch_series: &[f64],
        _band: Option<usize>,
        _budget: QueryBudget,
        _trace: bool,
        _scratch: &mut QueryScratch,
    ) -> Result<ServiceOutcome, EngineError> {
        if pitch_series.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        let _ = self.started.send(());
        let gate = self.gate.lock().unwrap();
        gate.recv_timeout(Duration::from_secs(10))
            .expect("test gate closed without releasing a blocked query");
        let stats = EngineStats { exact_computations: 1, ..EngineStats::default() };
        Ok(ServiceOutcome { matches: Vec::new(), stats, trace: None })
    }

    fn insert(
        &mut self,
        _id: u64,
        _song: usize,
        _phrase: usize,
        _pitch_series: &[f64],
    ) -> Result<(), ServiceError> {
        self.len += 1;
        Ok(())
    }

    fn remove(&mut self, _id: u64) -> Result<bool, ServiceError> {
        self.len -= 1;
        Ok(true)
    }

    fn len(&self) -> usize {
        self.len
    }
}

fn start_gated(
    workers: usize,
    queue_depth: usize,
) -> (Server<GateService>, mpsc::Sender<()>, mpsc::Receiver<()>) {
    let (service, gate, started) = GateService::new();
    let config = ServerConfig {
        workers,
        queue_depth,
        metrics: MetricsSink::enabled(),
        ..ServerConfig::default()
    };
    let server = Server::start(service, "127.0.0.1:0", config).expect("bind ephemeral port");
    (server, gate, started)
}

fn accepted(server: &Server<GateService>) -> u64 {
    server
        .metrics()
        .registry()
        .expect("metrics enabled")
        .get(Metric::ServerRequestsAccepted)
}

fn wait_for_accepted(server: &Server<GateService>, n: u64) {
    for _ in 0..400 {
        if accepted(server) >= n {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("server never accepted {n} requests (got {})", accepted(server));
}

fn spawn_query(
    addr: std::net::SocketAddr,
) -> std::thread::JoinHandle<Result<hum_server::QueryReply, ClientError>> {
    std::thread::spawn(move || {
        let mut client = Client::connect(addr)?;
        client.knn(&[60.0, 62.0, 64.0], 3, &QueryOptions::default())
    })
}

#[test]
fn queue_overflow_is_a_typed_overloaded_rejection() {
    let (server, gate, started) = start_gated(1, 1);
    let addr = server.local_addr();

    // First query: wait until the single worker has popped it (it blocks
    // on the gate), so the queue is empty when the second arrives. The
    // second then sits in the depth-1 queue, and the third submission
    // deterministically finds the queue full.
    let first = spawn_query(addr);
    started.recv_timeout(Duration::from_secs(10)).expect("first query running");
    let second = spawn_query(addr);
    wait_for_accepted(&server, 2);

    let mut client = Client::connect(addr).unwrap();
    match client.knn(&[60.0], 1, &QueryOptions::default()) {
        Err(ClientError::Overloaded(message)) => {
            assert!(message.contains("queue"), "unhelpful message: {message}")
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    gate.send(()).unwrap();
    gate.send(()).unwrap();
    assert!(first.join().unwrap().is_ok());
    assert!(second.join().unwrap().is_ok());

    let registry = server.metrics().registry().unwrap();
    assert_eq!(registry.get(Metric::ServerRequestsAccepted), 2);
    assert_eq!(registry.get(Metric::ServerRequestsRejectedOverload), 1);
    assert_eq!(registry.get(Metric::ServerQueueHighWater), 1);
    server.shutdown().expect("service handed back");
}

#[test]
fn graceful_shutdown_drains_every_admitted_request() {
    let (server, gate, _started) = start_gated(1, 8);
    let addr = server.local_addr();

    let clients: Vec<_> = (0..3).map(|_| spawn_query(addr)).collect();
    wait_for_accepted(&server, 3);

    // Release the gate only after shutdown has begun: if shutdown did not
    // drain, the blocked and queued queries would never be answered.
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        for _ in 0..3 {
            gate.send(()).unwrap();
        }
    });
    let service = server.shutdown().expect("service handed back after drain");
    releaser.join().unwrap();
    assert_eq!(service.len(), 3);

    for client in clients {
        let reply = client.join().unwrap().expect("admitted request answered during drain");
        assert_eq!(reply.stats.exact_computations, 1);
    }
    assert!(Client::connect(addr).is_err(), "listener must be gone after shutdown");
}

#[test]
fn deadline_spent_in_queue_is_a_typed_deadline_error() {
    let (server, gate, started) = start_gated(1, 4);
    let addr = server.local_addr();

    // Occupy the only worker, then submit a query whose 1ms deadline
    // expires while it waits in the queue: the worker must answer it with
    // a typed deadline error and all-zero counters, without running it.
    let blocker = spawn_query(addr);
    started.recv_timeout(Duration::from_secs(10)).expect("blocker running");

    let late = std::thread::spawn(move || {
        let mut client = Client::connect(addr)?;
        let options = QueryOptions { deadline_ms: Some(1), ..QueryOptions::default() };
        client.knn(&[60.0, 62.0], 2, &options)
    });
    wait_for_accepted(&server, 2);
    std::thread::sleep(Duration::from_millis(30));

    gate.send(()).unwrap();
    assert!(blocker.join().unwrap().is_ok());
    match late.join().unwrap() {
        Err(ClientError::DeadlineExceeded { stats, .. }) => {
            assert_eq!(stats, Some(EngineStats::default()), "no work was done");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    let registry = server.metrics().registry().unwrap();
    assert_eq!(registry.get(Metric::ServerDeadlineExceeded), 1);
    server.shutdown().expect("service handed back");
}

#[test]
fn shutdown_request_over_the_wire_wakes_the_waiter() {
    let (service, _gate, _started) = GateService::new();
    let config = ServerConfig { allow_remote_shutdown: true, ..ServerConfig::default() };
    let server = Server::start(service, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.ping().unwrap(), 3);
    client.shutdown().unwrap();
    // Returns promptly only if the wire request flipped the signal.
    server.wait_shutdown_requested();
    server.shutdown().expect("service handed back");
}

#[test]
fn wire_shutdown_is_rejected_unless_enabled() {
    let (service, _gate, _started) = GateService::new();
    let server =
        Server::start(service, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let err = client.shutdown().unwrap_err();
    match err {
        ClientError::BadRequest(message) => {
            assert!(message.contains("disabled"), "unexpected message: {message}");
        }
        other => panic!("expected typed bad_request, got {other:?}"),
    }
    // The server must keep serving after the rejected shutdown attempt.
    assert_eq!(client.ping().unwrap(), 3);
    server.shutdown().expect("service handed back");
}

#[test]
fn mutations_and_bad_requests_round_trip() {
    let (service, _gate, _started) = GateService::new();
    let config = ServerConfig { workers: 2, ..ServerConfig::default() };
    let server = Server::start(service, "127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(server.local_addr()).unwrap();

    assert_eq!(client.insert(9, 1, 0, &[60.0, 61.0]).unwrap(), 4);
    assert_eq!(client.remove(9).unwrap(), (true, 3));

    // An engine-level rejection (empty query) is a bad_request, and the
    // connection survives it.
    match client.knn(&[], 2, &QueryOptions::default()) {
        Err(ClientError::BadRequest(message)) => {
            assert!(message.contains("at least one sample"), "{message}")
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
    assert_eq!(client.ping().unwrap(), 3);
    server.shutdown().expect("service handed back");
}
