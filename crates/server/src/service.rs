//! The service boundary between the transport and the query system.
//!
//! `hum-server` deliberately does not depend on `hum-qbh` (the `qbh` binary
//! lives there and links the server, so the dependency must point the other
//! way). Instead the transport is generic over [`QbhService`] — the small
//! surface a query-by-humming system must expose to be served: budgeted
//! queries against an immutable snapshot (`&self`, so a worker pool can run
//! them concurrently behind a read lock) and live mutation (`&mut self`).
//! `hum-qbh` implements the trait for `QbhSystem`.

use hum_core::engine::{EngineError, EngineStats, QueryBudget, QueryScratch};
use hum_core::obs::QueryTrace;

/// Why a service mutation failed.
///
/// The transport maps [`ServiceError::Engine`] to a client-visible
/// bad-request (the caller sent something the engine rejects: duplicate id,
/// non-finite samples, ...) and [`ServiceError::Storage`] to an internal
/// error (the service's durable store failed; nothing the client sent was
/// wrong). Storage failures carry the rendered message rather than a typed
/// error so `hum-server` stays independent of `hum-qbh`'s storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The query engine rejected the mutation.
    Engine(EngineError),
    /// The service's durable storage failed.
    Storage(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Engine(e) => write!(f, "{e}"),
            ServiceError::Storage(msg) => write!(f, "storage: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

/// What one background maintenance tick did (see [`QbhService::maintain`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// The service flushed volatile state to durable storage.
    pub flushed: bool,
    /// The service compacted its durable storage.
    pub compacted: bool,
}

/// What a served query asks for (the wire-level subset of
/// [`hum_core::engine::RequestKind`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceQuery {
    /// k-nearest-neighbors query.
    Knn {
        /// Neighbors requested.
        k: usize,
    },
    /// ε-range query.
    Range {
        /// Query radius (plain DTW distance).
        radius: f64,
    },
}

/// One hit, with its provenance resolved by the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceMatch {
    /// Stored melody id.
    pub id: u64,
    /// Song the melody belongs to.
    pub song: usize,
    /// Phrase number within the song.
    pub phrase: usize,
    /// Exact banded DTW distance.
    pub distance: f64,
}

/// A completed service query: matches, work counters, optional trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// Hits, best first.
    pub matches: Vec<ServiceMatch>,
    /// Engine work counters for this query.
    pub stats: EngineStats,
    /// The cascade trace, present iff the request asked for one.
    pub trace: Option<QueryTrace>,
}

/// What the server needs from a query system to serve it.
///
/// `Send + Sync + 'static` because the server shares the service across its
/// worker pool behind an `RwLock`: queries take the read lock (and run
/// concurrently), mutations take the write lock.
pub trait QbhService: Send + Sync + 'static {
    /// Runs one query over a raw (hummed) pitch series. `band` of `None`
    /// means the service's default warping band. The `budget` must
    /// propagate into the engine so an expired deadline surfaces as
    /// [`EngineError::DeadlineExceeded`] with partial stats.
    fn query(
        &self,
        query: &ServiceQuery,
        pitch_series: &[f64],
        band: Option<usize>,
        budget: QueryBudget,
        trace: bool,
        scratch: &mut QueryScratch,
    ) -> Result<ServiceOutcome, EngineError>;

    /// Inserts a melody (raw pitch series) under `id` with its provenance.
    /// Store-backed services may flush to durable storage as part of the
    /// insert; such failures surface as [`ServiceError::Storage`].
    fn insert(
        &mut self,
        id: u64,
        song: usize,
        phrase: usize,
        pitch_series: &[f64],
    ) -> Result<(), ServiceError>;

    /// Removes the melody stored under `id`; `Ok(true)` if it was present.
    /// Store-backed services make the removal durable before returning, so
    /// a [`ServiceError::Storage`] failure means the melody is still
    /// present and queryable.
    fn remove(&mut self, id: u64) -> Result<bool, ServiceError>;

    /// One background maintenance tick (flush/compaction for store-backed
    /// services). The server calls this periodically behind the write lock
    /// when [`crate::ServerConfig::maintenance_interval`] is set; purely
    /// in-memory services keep the default no-op.
    ///
    /// # Errors
    /// [`ServiceError::Storage`] when durable maintenance fails; the
    /// service must remain queryable.
    fn maintain(&mut self) -> Result<MaintenanceReport, ServiceError> {
        Ok(MaintenanceReport::default())
    }

    /// Number of stored melodies.
    fn len(&self) -> usize;

    /// `true` when nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
