//! The bounded admission queue.
//!
//! Admission control is the server's backpressure mechanism: a request
//! either gets a queue slot immediately or is rejected immediately with a
//! typed `Overloaded` response — [`BoundedQueue::try_push`] never blocks
//! and never drops silently. Workers block on [`BoundedQueue::pop`];
//! [`BoundedQueue::close`] starts the drain: pushes are refused from that
//! point, pops keep returning queued items until the queue is empty, then
//! return `None` so workers exit. Every item accepted before the close is
//! therefore handed to exactly one worker — the guarantee graceful
//! shutdown is built on.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused; gives the item back.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (overload — reject with backpressure).
    Full(T),
    /// The queue is closed (shutting down — no new work).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A Mutex+Condvar bounded MPMC queue (std has no bounded channel).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` (≥ 1) items at a time.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
                high_water: 0,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// Non-blocking push. `Ok(depth)` is the queue depth including the new
    /// item (callers feed it to the high-water metric); on `Err` the item
    /// comes back so the caller can answer the client instead of dropping.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        inner.high_water = inner.high_water.max(depth);
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking pop: the next item, or `None` once the queue is closed
    /// *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = match self.not_empty.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`PushError::Closed`]; queued items still drain through
    /// [`BoundedQueue::pop`].
    pub fn close(&self) {
        let mut inner = match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        match self.inner.lock() {
            Ok(guard) => guard.items.len(),
            Err(poisoned) => poisoned.into_inner().items.len(),
        }
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deepest the queue has ever been.
    pub fn high_water(&self) -> usize {
        match self.inner.lock() {
            Ok(guard) => guard.high_water,
            Err(poisoned) => poisoned.into_inner().high_water,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3).unwrap(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        match q.try_push("c") {
            Err(PushError::Closed(item)) => assert_eq!(item, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocked_poppers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        q.close();
        let mut got: Vec<Option<u32>> =
            workers.into_iter().map(|w| w.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, [None, None, Some(7)]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
    }
}
