//! The wire protocol: length-prefixed JSON frames.
//!
//! # Frame layout
//!
//! ```text
//! +----------------+---------------------------+
//! | length (u32 BE)| payload: compact JSON     |
//! +----------------+---------------------------+
//! ```
//!
//! One request frame in, one response frame out, in order, per connection.
//! The length prefix counts payload bytes only. Frames above the
//! configured maximum ([`MAX_FRAME_BYTES`] by default) are rejected without
//! reading the payload, and the prefix is *never* trusted for allocation:
//! the reader preallocates at most [`PREALLOC_CAP`] and grows only as bytes
//! actually arrive (the same discipline as the storage layer's untrusted
//! length prefixes), so a lying 4 GiB prefix cannot over-allocate.
//!
//! # Versioning
//!
//! The frame layout is version-less and frozen; evolution happens inside
//! the JSON payload. A client may send a `hello` op to learn the server's
//! highest protocol version ([`PROTOCOL_VERSION`]) and negotiate down, and
//! any request may carry an optional `"v"` field naming the version it was
//! written against — versions the server does not speak come back as a
//! typed `unsupported` error, as do unknown ops, so old servers and new
//! clients fail loudly instead of misinterpreting each other. Version 1 is
//! the sessionless surface (`knn`/`range`/`insert`/`remove`/`ping`/
//! `stats`/`shutdown`); version 2 adds the streaming session ops
//! (`open_session`/`append_frames`/`refine`/`close_session`).
//!
//! # Number fidelity
//!
//! Payloads are JSON, and every number rides as an `f64`. The vendored
//! writer emits shortest-round-trip decimal and the parser is correctly
//! rounded, so finite `f64` values (pitch samples, distances) survive the
//! wire bit for bit — which is what makes "server responses are
//! bit-identical to in-process queries" a testable claim. Non-finite
//! samples cannot be encoded (JSON has no NaN); they serialize as `null`
//! and are rejected by the receiving side as a typed error.

use std::io::{self, Read, Write};

use hum_core::engine::EngineStats;
use hum_index::QueryStats;
use serde_json::Value;

use crate::service::{ServiceMatch, ServiceQuery};

/// Highest protocol version this build speaks. Version 1 is the original
/// sessionless surface; version 2 adds streaming query sessions. The
/// server accepts every version in `1..=PROTOCOL_VERSION`.
pub const PROTOCOL_VERSION: u64 = 2;

/// Default ceiling on payload size. Generous for this protocol: the
/// largest legitimate frame is an insert carrying a few thousand pitch
/// samples (tens of KiB).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Most the reader preallocates from an untrusted length prefix; beyond
/// this the buffer grows only as bytes actually arrive.
pub const PREALLOC_CAP: usize = 64 * 1024;

/// Protocol ceiling on `k` in a `knn` request. The engine clamps its own
/// preallocations to the corpus size, but a ceiling at the parse boundary
/// turns an absurd `k` (a typo'd `10^15`, a fuzzer's `u64::MAX`) into a
/// typed `bad_request` before it can drive a maximal index walk. One
/// million neighbors is far beyond any legitimate query-by-humming result
/// page and comfortably above the largest corpus the serve benchmarks use.
pub const MAX_WIRE_K: u64 = 1 << 20;

/// Outcome of reading one frame.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete payload.
    Frame(Vec<u8>),
    /// Read timed out before the first header byte — no frame in flight
    /// (the server's shutdown-poll point).
    Idle,
    /// Clean end of stream at a frame boundary.
    Eof,
    /// The stream ended (or stalled past the poll budget) mid-frame.
    Truncated,
    /// The length prefix exceeds the frame ceiling; payload left unread.
    Oversized(u32),
}

fn is_poll_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads one frame. Read timeouts surface as [`FrameRead::Idle`] at a
/// frame boundary; mid-frame they count against `mid_frame_poll_budget`
/// timeouts before the frame is declared [`FrameRead::Truncated`] (so a
/// stalled sender cannot pin a connection thread forever).
///
/// # Errors
/// Only hard I/O errors; timeouts, EOF, and malformed sizes are all
/// in-band [`FrameRead`] variants.
pub fn read_frame<R: Read>(
    reader: &mut R,
    max_frame: usize,
    mid_frame_poll_budget: usize,
) -> io::Result<FrameRead> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    let mut polls = 0usize;
    while filled < 4 {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 { FrameRead::Eof } else { FrameRead::Truncated })
            }
            Ok(n) => filled += n,
            Err(e) if is_poll_timeout(&e) => {
                if filled == 0 {
                    return Ok(FrameRead::Idle);
                }
                polls += 1;
                if polls > mid_frame_poll_budget {
                    return Ok(FrameRead::Truncated);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header);
    if len as usize > max_frame {
        return Ok(FrameRead::Oversized(len));
    }
    let len = len as usize;
    let mut payload = Vec::with_capacity(len.min(PREALLOC_CAP));
    let mut chunk = [0u8; 8192];
    while payload.len() < len {
        let want = (len - payload.len()).min(chunk.len());
        match reader.read(&mut chunk[..want]) {
            Ok(0) => return Ok(FrameRead::Truncated),
            Ok(n) => payload.extend_from_slice(&chunk[..n]),
            Err(e) if is_poll_timeout(&e) => {
                polls += 1;
                if polls > mid_frame_poll_budget {
                    return Ok(FrameRead::Truncated);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Frame(payload))
}

/// Writes one frame; returns the bytes put on the wire (header included).
///
/// # Errors
/// `InvalidInput` if the payload exceeds `max_frame`, else any I/O error.
pub fn write_frame<W: Write>(
    writer: &mut W,
    payload: &[u8],
    max_frame: usize,
) -> io::Result<u64> {
    if payload.len() > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds maximum {max_frame}", payload.len()),
        ));
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(payload.len() as u64 + 4)
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// k-NN query over a raw pitch series.
    Knn {
        /// Raw (hummed) pitch series.
        pitch: Vec<f64>,
        /// Neighbors requested.
        k: usize,
        /// Warping-band override (`None` = service default).
        band: Option<usize>,
        /// Per-request deadline in milliseconds from arrival.
        deadline_ms: Option<u64>,
        /// Ask for the cascade trace in the response.
        trace: bool,
    },
    /// ε-range query over a raw pitch series.
    Range {
        /// Raw (hummed) pitch series.
        pitch: Vec<f64>,
        /// Query radius (plain DTW distance).
        radius: f64,
        /// Warping-band override (`None` = service default).
        band: Option<usize>,
        /// Per-request deadline in milliseconds from arrival.
        deadline_ms: Option<u64>,
        /// Ask for the cascade trace in the response.
        trace: bool,
    },
    /// Live insert of a melody with provenance.
    Insert {
        /// New melody id (must be unused).
        id: u64,
        /// Song provenance.
        song: usize,
        /// Phrase provenance.
        phrase: usize,
        /// Raw pitch series.
        pitch: Vec<f64>,
    },
    /// Live removal by id.
    Remove {
        /// Melody id to remove.
        id: u64,
    },
    /// Liveness check; responds with the store size.
    Ping,
    /// Metrics snapshot (null when the server runs without a registry).
    Stats,
    /// Ask the server to begin graceful shutdown.
    Shutdown,
    /// Version/capability negotiation: the client names the highest
    /// protocol version it speaks; the server answers with the negotiated
    /// version (the minimum of the two) and its op table.
    Hello {
        /// Highest protocol version the client speaks (must be ≥ 1).
        version: u64,
    },
    /// Open a streaming query session (protocol v2). The query shape is
    /// fixed at open; frames stream in via `append_frames`.
    OpenSession {
        /// What each refinement asks for (k-NN or ε-range).
        query: ServiceQuery,
        /// Warping-band override (`None` = service default).
        band: Option<usize>,
        /// Ask for the cascade trace in each refine response.
        trace: bool,
    },
    /// Append raw pitch frames to an open session.
    AppendFrames {
        /// Session id from `open_session`.
        session: u64,
        /// Raw (hummed) pitch frames to append.
        frames: Vec<f64>,
    },
    /// Run the session's query over everything appended so far.
    Refine {
        /// Session id from `open_session`.
        session: u64,
        /// Per-refine deadline in milliseconds from arrival.
        deadline_ms: Option<u64>,
    },
    /// Close a session and release its buffered frames.
    CloseSession {
        /// Session id from `open_session`.
        session: u64,
    },
}

/// Typed error kinds a response can carry, with their wire codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission queue full: retry later.
    Overloaded,
    /// The request's deadline passed before or during execution.
    DeadlineExceeded,
    /// Well-formed frame, unacceptable content (bad op, bad input,
    /// duplicate id, non-finite samples, ...).
    BadRequest,
    /// Unreadable frame: bad prefix, truncation, non-UTF8, bad JSON.
    Protocol,
    /// Server is draining; no new work accepted.
    ShuttingDown,
    /// Unexpected internal failure.
    Internal,
    /// Unknown op or a protocol version this server does not speak.
    Unsupported,
    /// The session was evicted (idle LRU under the session cap) before
    /// this request arrived; the client must open a new session.
    SessionEvicted,
}

impl ErrorKind {
    /// The wire code.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Protocol => "protocol",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::SessionEvicted => "session_evicted",
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: &str) -> Option<Self> {
        Some(match code {
            "overloaded" => ErrorKind::Overloaded,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "bad_request" => ErrorKind::BadRequest,
            "protocol" => ErrorKind::Protocol,
            "shutting_down" => ErrorKind::ShuttingDown,
            "internal" => ErrorKind::Internal,
            "unsupported" => ErrorKind::Unsupported,
            "session_evicted" => ErrorKind::SessionEvicted,
            _ => return None,
        })
    }
}

// ---------------------------------------------------------------------------
// Value plumbing. The vendored `serde::Value` keeps objects as ordered
// `Vec<(String, Value)>`; these helpers read fields by first occurrence.

fn field<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    match value {
        Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(value: &Value) -> Option<f64> {
    match value {
        Value::Number(n) => Some(*n),
        _ => None,
    }
}

/// A JSON number that is a whole non-negative value exactly representable
/// in an `f64` (ids and counts stay below 2^53 everywhere in this system).
fn as_u64(value: &Value) -> Option<u64> {
    let n = as_f64(value)?;
    if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
        Some(n as u64)
    } else {
        None
    }
}

fn get_f64(value: &Value, key: &str) -> Result<f64, String> {
    field(value, key)
        .and_then(as_f64)
        .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
}

fn get_u64(value: &Value, key: &str) -> Result<u64, String> {
    field(value, key)
        .and_then(as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, String> {
    match field(value, key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => as_u64(v).map(Some).ok_or_else(|| format!("non-integer field '{key}'")),
    }
}

fn get_bool_or(value: &Value, key: &str, default: bool) -> Result<bool, String> {
    match field(value, key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("non-boolean field '{key}'")),
    }
}

fn get_pitch(value: &Value, key: &str) -> Result<Vec<f64>, String> {
    let Some(Value::Array(items)) = field(value, key) else {
        return Err(format!("missing or non-array field '{key}'"));
    };
    let mut pitch = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match as_f64(item) {
            // Non-finite f64 serializes as JSON null, so a NaN sample shows
            // up here as a typed error instead of poisoning the engine.
            Some(v) => pitch.push(v),
            None => return Err(format!("'{key}[{i}]' is not a number")),
        }
    }
    Ok(pitch)
}

fn num(n: u64) -> Value {
    Value::Number(n as f64)
}

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Why a request payload failed to parse: the typed error kind the server
/// should answer with, plus a human-readable message naming the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// How the server should classify the failure (`BadRequest` for
    /// missing/ill-typed fields, `Unsupported` for unknown ops and
    /// protocol versions this build does not speak).
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ParseError {
    fn unsupported(message: String) -> ParseError {
        ParseError { kind: ErrorKind::Unsupported, message }
    }
}

impl From<String> for ParseError {
    fn from(message: String) -> Self {
        ParseError { kind: ErrorKind::BadRequest, message }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.code(), self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a request payload (already JSON-decoded).
///
/// # Errors
/// [`ParseError`] naming the missing/ill-typed field (`bad_request`) or
/// the unknown op / unspeakable protocol version (`unsupported`).
pub fn parse_request(value: &Value) -> Result<Request, ParseError> {
    let Some(Value::String(op)) = field(value, "op") else {
        return Err("missing string field 'op'".to_string().into());
    };
    // Any request may pin the protocol version it was written against; a
    // version outside 1..=PROTOCOL_VERSION is a typed `unsupported` error
    // before any op-specific parsing happens.
    if let Some(v) = opt_u64(value, "v")? {
        if !(1..=PROTOCOL_VERSION).contains(&v) {
            return Err(ParseError::unsupported(format!(
                "protocol version {v} is not supported (this server speaks 1..={PROTOCOL_VERSION})"
            )));
        }
    }
    match op.as_str() {
        "knn" => {
            let k = get_u64(value, "k")?;
            // Resource-exhaustion guard: `k` sizes heaps and index walks
            // downstream, so anything above the documented ceiling is
            // rejected here as a typed error, not forwarded to the engine.
            if k > MAX_WIRE_K {
                return Err(format!(
                    "field 'k' ({k}) exceeds the protocol ceiling {MAX_WIRE_K}"
                )
                .into());
            }
            Ok(Request::Knn {
                pitch: get_pitch(value, "pitch")?,
                k: k as usize,
                band: opt_u64(value, "band")?.map(|b| b as usize),
                deadline_ms: opt_u64(value, "deadline_ms")?,
                trace: get_bool_or(value, "trace", false)?,
            })
        }
        "range" => {
            let radius = get_f64(value, "radius")?;
            // A negative radius can match nothing and a non-finite one is
            // meaningless (the JSON parser already rejects out-of-range
            // literals; this also covers values built programmatically).
            if !radius.is_finite() || radius < 0.0 {
                return Err(format!(
                    "field 'radius' ({radius}) must be finite and non-negative"
                )
                .into());
            }
            Ok(Request::Range {
                pitch: get_pitch(value, "pitch")?,
                radius,
                band: opt_u64(value, "band")?.map(|b| b as usize),
                deadline_ms: opt_u64(value, "deadline_ms")?,
                trace: get_bool_or(value, "trace", false)?,
            })
        }
        "insert" => Ok(Request::Insert {
            id: get_u64(value, "id")?,
            song: get_u64(value, "song")? as usize,
            phrase: get_u64(value, "phrase")? as usize,
            pitch: get_pitch(value, "pitch")?,
        }),
        "remove" => Ok(Request::Remove { id: get_u64(value, "id")? }),
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "hello" => {
            let version = get_u64(value, "version")?;
            if version == 0 {
                return Err(ParseError::unsupported(
                    "protocol version 0 does not exist (versions start at 1)".to_string(),
                ));
            }
            Ok(Request::Hello { version })
        }
        "open_session" => {
            let Some(Value::String(mode)) = field(value, "mode") else {
                return Err("missing string field 'mode' (knn or range)".to_string().into());
            };
            let query = match mode.as_str() {
                "knn" => {
                    let k = get_u64(value, "k")?;
                    if k > MAX_WIRE_K {
                        return Err(format!(
                            "field 'k' ({k}) exceeds the protocol ceiling {MAX_WIRE_K}"
                        )
                        .into());
                    }
                    ServiceQuery::Knn { k: k as usize }
                }
                "range" => {
                    let radius = get_f64(value, "radius")?;
                    if !radius.is_finite() || radius < 0.0 {
                        return Err(format!(
                            "field 'radius' ({radius}) must be finite and non-negative"
                        )
                        .into());
                    }
                    ServiceQuery::Range { radius }
                }
                other => {
                    return Err(format!("unknown session mode '{other}' (knn or range)").into())
                }
            };
            Ok(Request::OpenSession {
                query,
                band: opt_u64(value, "band")?.map(|b| b as usize),
                trace: get_bool_or(value, "trace", false)?,
            })
        }
        "append_frames" => Ok(Request::AppendFrames {
            session: get_u64(value, "session")?,
            frames: get_pitch(value, "frames")?,
        }),
        "refine" => Ok(Request::Refine {
            session: get_u64(value, "session")?,
            deadline_ms: opt_u64(value, "deadline_ms")?,
        }),
        "close_session" => Ok(Request::CloseSession { session: get_u64(value, "session")? }),
        other => Err(ParseError::unsupported(format!("unknown op '{other}'"))),
    }
}

/// Encodes a request for the wire (the client side of
/// [`parse_request`]).
pub fn request_to_value(request: &Request) -> Value {
    fn opt_num(v: Option<u64>) -> Value {
        v.map_or(Value::Null, num)
    }
    fn pitch_value(pitch: &[f64]) -> Value {
        Value::Array(pitch.iter().map(|&v| Value::Number(v)).collect())
    }
    match request {
        Request::Knn { pitch, k, band, deadline_ms, trace } => object(vec![
            ("op", Value::String("knn".to_string())),
            ("pitch", pitch_value(pitch)),
            ("k", num(*k as u64)),
            ("band", opt_num(band.map(|b| b as u64))),
            ("deadline_ms", opt_num(*deadline_ms)),
            ("trace", Value::Bool(*trace)),
        ]),
        Request::Range { pitch, radius, band, deadline_ms, trace } => object(vec![
            ("op", Value::String("range".to_string())),
            ("pitch", pitch_value(pitch)),
            ("radius", Value::Number(*radius)),
            ("band", opt_num(band.map(|b| b as u64))),
            ("deadline_ms", opt_num(*deadline_ms)),
            ("trace", Value::Bool(*trace)),
        ]),
        Request::Insert { id, song, phrase, pitch } => object(vec![
            ("op", Value::String("insert".to_string())),
            ("id", num(*id)),
            ("song", num(*song as u64)),
            ("phrase", num(*phrase as u64)),
            ("pitch", pitch_value(pitch)),
        ]),
        Request::Remove { id } => object(vec![
            ("op", Value::String("remove".to_string())),
            ("id", num(*id)),
        ]),
        Request::Ping => object(vec![("op", Value::String("ping".to_string()))]),
        Request::Stats => object(vec![("op", Value::String("stats".to_string()))]),
        Request::Shutdown => object(vec![("op", Value::String("shutdown".to_string()))]),
        Request::Hello { version } => object(vec![
            ("op", Value::String("hello".to_string())),
            ("version", num(*version)),
        ]),
        // Session ops pin `"v": 2` on the wire so a v1 server rejects them
        // as unsupported instead of guessing at a shape it never learned.
        Request::OpenSession { query, band, trace } => {
            let mut fields = vec![
                ("op", Value::String("open_session".to_string())),
                ("v", num(PROTOCOL_VERSION)),
            ];
            match query {
                ServiceQuery::Knn { k } => {
                    fields.push(("mode", Value::String("knn".to_string())));
                    fields.push(("k", num(*k as u64)));
                }
                ServiceQuery::Range { radius } => {
                    fields.push(("mode", Value::String("range".to_string())));
                    fields.push(("radius", Value::Number(*radius)));
                }
            }
            fields.push(("band", opt_num(band.map(|b| b as u64))));
            fields.push(("trace", Value::Bool(*trace)));
            object(fields)
        }
        Request::AppendFrames { session, frames } => object(vec![
            ("op", Value::String("append_frames".to_string())),
            ("v", num(PROTOCOL_VERSION)),
            ("session", num(*session)),
            ("frames", pitch_value(frames)),
        ]),
        Request::Refine { session, deadline_ms } => object(vec![
            ("op", Value::String("refine".to_string())),
            ("v", num(PROTOCOL_VERSION)),
            ("session", num(*session)),
            ("deadline_ms", opt_num(*deadline_ms)),
        ]),
        Request::CloseSession { session } => object(vec![
            ("op", Value::String("close_session".to_string())),
            ("v", num(PROTOCOL_VERSION)),
            ("session", num(*session)),
        ]),
    }
}

/// Serializes [`EngineStats`] with the same field names the obs exporter
/// uses for traces, so scripted consumers see one vocabulary.
pub fn stats_to_value(stats: &EngineStats) -> Value {
    object(vec![
        (
            "index",
            object(vec![
                ("node_accesses", num(stats.index.node_accesses)),
                ("leaf_accesses", num(stats.index.leaf_accesses)),
                ("points_examined", num(stats.index.points_examined)),
                ("candidates", num(stats.index.candidates)),
            ]),
        ),
        ("lb_pruned", num(stats.lb_pruned)),
        ("lb_improved_pruned", num(stats.lb_improved_pruned)),
        ("exact_computations", num(stats.exact_computations)),
        ("early_abandoned", num(stats.early_abandoned)),
        ("dp_cells", num(stats.dp_cells)),
        ("matches", num(stats.matches)),
    ])
}

/// Parses [`stats_to_value`]'s output back into [`EngineStats`].
///
/// # Errors
/// Names the first missing or ill-typed field.
pub fn stats_from_value(value: &Value) -> Result<EngineStats, String> {
    let index = field(value, "index").ok_or("missing field 'index'")?;
    Ok(EngineStats {
        index: QueryStats {
            node_accesses: get_u64(index, "node_accesses")?,
            leaf_accesses: get_u64(index, "leaf_accesses")?,
            points_examined: get_u64(index, "points_examined")?,
            candidates: get_u64(index, "candidates")?,
        },
        lb_pruned: get_u64(value, "lb_pruned")?,
        lb_improved_pruned: get_u64(value, "lb_improved_pruned")?,
        exact_computations: get_u64(value, "exact_computations")?,
        early_abandoned: get_u64(value, "early_abandoned")?,
        dp_cells: get_u64(value, "dp_cells")?,
        matches: get_u64(value, "matches")?,
    })
}

/// Serializes one match.
pub fn match_to_value(m: &ServiceMatch) -> Value {
    object(vec![
        ("id", num(m.id)),
        ("song", num(m.song as u64)),
        ("phrase", num(m.phrase as u64)),
        ("distance", Value::Number(m.distance)),
    ])
}

/// Parses one match.
///
/// # Errors
/// Names the first missing or ill-typed field.
pub fn match_from_value(value: &Value) -> Result<ServiceMatch, String> {
    Ok(ServiceMatch {
        id: get_u64(value, "id")?,
        song: get_u64(value, "song")? as usize,
        phrase: get_u64(value, "phrase")? as usize,
        distance: get_f64(value, "distance")?,
    })
}

/// An `{"ok": true, ...}` response with extra fields.
pub fn ok_response(extra: Vec<(&str, Value)>) -> Value {
    let mut fields = vec![("ok", Value::Bool(true))];
    fields.extend(extra);
    object(fields)
}

/// An `{"ok": false, "error": <code>, "message": ...}` response;
/// `deadline_exceeded` responses also attach the partial stats.
pub fn error_response(kind: ErrorKind, message: &str, stats: Option<&EngineStats>) -> Value {
    let mut fields = vec![
        ("ok", Value::Bool(false)),
        ("error", Value::String(kind.code().to_string())),
        ("message", Value::String(message.to_string())),
    ];
    if let Some(stats) = stats {
        fields.push(("stats", stats_to_value(stats)));
    }
    object(fields)
}

/// What a response payload decodes to on the client side.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `ok: true` — the whole payload, for typed extractors to pick over.
    Ok(Value),
    /// `ok: false` — the typed kind, the message, and (for deadline
    /// errors) the partial stats.
    Error {
        /// Typed error kind.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
        /// Partial work counters (deadline errors only).
        stats: Option<EngineStats>,
    },
}

/// Splits a decoded response payload into ok/error.
///
/// # Errors
/// A message when the payload is not a recognizable response object.
pub fn parse_response(value: Value) -> Result<Response, String> {
    match field(&value, "ok") {
        Some(Value::Bool(true)) => Ok(Response::Ok(value)),
        Some(Value::Bool(false)) => {
            let kind = match field(&value, "error") {
                Some(Value::String(code)) => ErrorKind::from_code(code)
                    .ok_or_else(|| format!("unknown error code '{code}'"))?,
                _ => return Err("error response without string 'error' code".to_string()),
            };
            let message = match field(&value, "message") {
                Some(Value::String(m)) => m.clone(),
                _ => String::new(),
            };
            let stats = match field(&value, "stats") {
                Some(v) => Some(stats_from_value(v)?),
                None => None,
            };
            Ok(Response::Error { kind, message, stats })
        }
        _ => Err("response without boolean 'ok' field".to_string()),
    }
}

/// Reads a field out of an [`Response::Ok`] payload as `u64`.
///
/// # Errors
/// Names the field when missing or ill-typed.
pub fn response_u64(value: &Value, key: &str) -> Result<u64, String> {
    get_u64(value, key)
}

/// Reads the `matches` array out of a query response.
///
/// # Errors
/// Names the first missing or ill-typed field.
pub fn response_matches(value: &Value) -> Result<Vec<ServiceMatch>, String> {
    let Some(Value::Array(items)) = field(value, "matches") else {
        return Err("missing or non-array field 'matches'".to_string());
    };
    items.iter().map(match_from_value).collect()
}

/// Reads the `stats` object out of a query response.
///
/// # Errors
/// Names the first missing or ill-typed field.
pub fn response_stats(value: &Value) -> Result<EngineStats, String> {
    stats_from_value(field(value, "stats").ok_or("missing field 'stats'")?)
}

/// Reads the optional `trace` object out of a query response (kept as a
/// raw [`Value`]; its totals always equal the response's `stats`).
pub fn response_trace(value: &Value) -> Option<Value> {
    match field(value, "trace") {
        None | Some(Value::Null) => None,
        Some(v) => Some(v.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        let written = write_frame(&mut wire, b"{\"op\":\"ping\"}", MAX_FRAME_BYTES).unwrap();
        assert_eq!(written as usize, wire.len());
        let mut reader = wire.as_slice();
        match read_frame(&mut reader, MAX_FRAME_BYTES, 4).unwrap() {
            FrameRead::Frame(payload) => assert_eq!(payload, b"{\"op\":\"ping\"}"),
            other => panic!("expected frame, got {other:?}"),
        }
        match read_frame(&mut reader, MAX_FRAME_BYTES, 4).unwrap() {
            FrameRead::Eof => {}
            other => panic!("expected EOF, got {other:?}"),
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_without_reading() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut reader = wire.as_slice();
        match read_frame(&mut reader, MAX_FRAME_BYTES, 4).unwrap() {
            FrameRead::Oversized(len) => assert_eq!(len, u32::MAX),
            other => panic!("expected oversized, got {other:?}"),
        }
    }

    #[test]
    fn lying_prefix_never_overallocates() {
        // Prefix claims 1 MiB (the max) but only 3 bytes follow: the reader
        // must cap its preallocation and report truncation, not OOM or hang.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES as u32).to_be_bytes());
        wire.extend_from_slice(b"abc");
        let mut reader = wire.as_slice();
        match read_frame(&mut reader, MAX_FRAME_BYTES, 4).unwrap() {
            FrameRead::Truncated => {}
            other => panic!("expected truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_is_truncated_not_eof() {
        let mut reader: &[u8] = &[0u8, 0u8];
        match read_frame(&mut reader, MAX_FRAME_BYTES, 4).unwrap() {
            FrameRead::Truncated => {}
            other => panic!("expected truncated, got {other:?}"),
        }
    }

    #[test]
    fn requests_round_trip_through_json() {
        let requests = [
            Request::Knn {
                pitch: vec![60.25, 61.5, -0.125],
                k: 5,
                band: Some(12),
                deadline_ms: Some(250),
                trace: true,
            },
            Request::Range {
                pitch: vec![55.0; 4],
                radius: 2.75,
                band: None,
                deadline_ms: None,
                trace: false,
            },
            Request::Insert { id: 901, song: 7, phrase: 3, pitch: vec![60.0, 62.0] },
            Request::Remove { id: 901 },
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Hello { version: PROTOCOL_VERSION },
            Request::OpenSession {
                query: ServiceQuery::Knn { k: 7 },
                band: Some(6),
                trace: true,
            },
            Request::OpenSession {
                query: ServiceQuery::Range { radius: 3.5 },
                band: None,
                trace: false,
            },
            Request::AppendFrames { session: 17, frames: vec![59.75, 60.0, -0.5] },
            Request::Refine { session: 17, deadline_ms: Some(40) },
            Request::Refine { session: 17, deadline_ms: None },
            Request::CloseSession { session: 17 },
        ];
        for request in requests {
            let text = serde_json::to_string(&request_to_value(&request)).unwrap();
            let parsed = parse_request(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(parsed, request, "{text}");
        }
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (payload, needle) in [
            ("{}", "op"),
            ("{\"op\":\"fly\"}", "unknown op"),
            ("{\"op\":\"knn\",\"k\":3}", "pitch"),
            ("{\"op\":\"knn\",\"pitch\":[1,null],\"k\":3}", "pitch[1]"),
            ("{\"op\":\"knn\",\"pitch\":[1],\"k\":-1}", "k"),
            ("{\"op\":\"knn\",\"pitch\":[1],\"k\":1.5}", "k"),
            // Wire-boundary resource-exhaustion guards: an absurd `k` hits
            // the protocol ceiling, u64::MAX is not even an exact integer,
            // and a negative radius is rejected before reaching the engine.
            ("{\"op\":\"knn\",\"pitch\":[1],\"k\":1000000000000000}", "ceiling"),
            ("{\"op\":\"knn\",\"pitch\":[1],\"k\":18446744073709551615}", "k"),
            ("{\"op\":\"range\",\"pitch\":[1],\"radius\":-1.0}", "radius"),
            ("{\"op\":\"range\",\"pitch\":[1]}", "radius"),
            ("{\"op\":\"insert\",\"id\":1,\"song\":0,\"phrase\":0}", "pitch"),
            ("{\"op\":\"remove\"}", "id"),
            ("{\"op\":\"hello\"}", "version"),
            ("{\"op\":\"open_session\"}", "mode"),
            ("{\"op\":\"open_session\",\"mode\":\"walk\"}", "mode"),
            ("{\"op\":\"open_session\",\"mode\":\"knn\"}", "k"),
            ("{\"op\":\"open_session\",\"mode\":\"range\",\"radius\":-2}", "radius"),
            ("{\"op\":\"append_frames\",\"session\":1}", "frames"),
            ("{\"op\":\"append_frames\",\"session\":1,\"frames\":[null]}", "frames[0]"),
            ("{\"op\":\"append_frames\",\"frames\":[1]}", "session"),
            ("{\"op\":\"refine\"}", "session"),
            ("{\"op\":\"close_session\"}", "session"),
        ] {
            let value = serde_json::from_str(payload).unwrap();
            let err = parse_request(&value).unwrap_err();
            assert!(err.message.contains(needle), "{payload}: {err}");
        }
    }

    #[test]
    fn unknown_ops_and_foreign_versions_are_unsupported_not_bad_request() {
        // Typed split at the parse boundary: field problems are
        // `bad_request`, but "this server never learned that op/version"
        // is `unsupported`, so a newer client can detect an older server.
        for payload in [
            "{\"op\":\"fly\"}",
            "{\"op\":\"ping\",\"v\":99}",
            "{\"op\":\"ping\",\"v\":0}",
            "{\"op\":\"knn\",\"pitch\":[1],\"k\":1,\"v\":3}",
            "{\"op\":\"hello\",\"version\":0}",
        ] {
            let value = serde_json::from_str(payload).unwrap();
            let err = parse_request(&value).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Unsupported, "{payload}: {err}");
        }
        // Every spoken version is accepted on any op.
        for v in 1..=PROTOCOL_VERSION {
            let payload = format!("{{\"op\":\"ping\",\"v\":{v}}}");
            let value = serde_json::from_str(&payload).unwrap();
            assert_eq!(parse_request(&value).unwrap(), Request::Ping, "{payload}");
        }
        // And a field problem is still bad_request.
        let value = serde_json::from_str("{\"op\":\"remove\"}").unwrap();
        assert_eq!(parse_request(&value).unwrap_err().kind, ErrorKind::BadRequest);
    }

    #[test]
    fn wire_k_ceiling_and_radius_bounds() {
        let ok = format!("{{\"op\":\"knn\",\"pitch\":[1],\"k\":{MAX_WIRE_K}}}");
        assert!(parse_request(&serde_json::from_str(&ok).unwrap()).is_ok());
        let over = format!("{{\"op\":\"knn\",\"pitch\":[1],\"k\":{}}}", MAX_WIRE_K + 1);
        let err = parse_request(&serde_json::from_str(&over).unwrap()).unwrap_err();
        assert!(err.message.contains("ceiling"), "{err}");
        // A radius literal overflowing f64 never reaches parse_request: the
        // JSON layer rejects it (the server answers `protocol`).
        assert!(
            serde_json::from_str("{\"op\":\"range\",\"pitch\":[1],\"radius\":1e309}")
                .is_err()
        );
        let zero = serde_json::from_str("{\"op\":\"range\",\"pitch\":[1],\"radius\":0}").unwrap();
        assert!(parse_request(&zero).is_ok());
    }

    #[test]
    fn stats_and_matches_round_trip() {
        let stats = EngineStats {
            index: QueryStats {
                node_accesses: 12,
                leaf_accesses: 9,
                points_examined: 400,
                candidates: 37,
            },
            lb_pruned: 20,
            lb_improved_pruned: 5,
            exact_computations: 12,
            early_abandoned: 3,
            dp_cells: 123_456,
            matches: 4,
        };
        assert_eq!(stats_from_value(&stats_to_value(&stats)).unwrap(), stats);
        let m = ServiceMatch { id: 31, song: 2, phrase: 4, distance: 1.0625 };
        assert_eq!(match_from_value(&match_to_value(&m)).unwrap(), m);
    }

    #[test]
    fn responses_split_into_ok_and_typed_errors() {
        let ok = ok_response(vec![("len", num(42))]);
        match parse_response(ok).unwrap() {
            Response::Ok(value) => assert_eq!(response_u64(&value, "len").unwrap(), 42),
            other => panic!("expected ok, got {other:?}"),
        }
        let err = error_response(ErrorKind::Overloaded, "queue full", None);
        match parse_response(err).unwrap() {
            Response::Error { kind, message, stats } => {
                assert_eq!(kind, ErrorKind::Overloaded);
                assert_eq!(message, "queue full");
                assert!(stats.is_none());
            }
            other => panic!("expected error, got {other:?}"),
        }
        let deadline =
            error_response(ErrorKind::DeadlineExceeded, "late", Some(&EngineStats::default()));
        match parse_response(deadline).unwrap() {
            Response::Error { kind, stats, .. } => {
                assert_eq!(kind, ErrorKind::DeadlineExceeded);
                assert_eq!(stats, Some(EngineStats::default()));
            }
            other => panic!("expected error, got {other:?}"),
        }
    }
}
