//! A small blocking client for the wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues strictly serialized
//! request/response pairs. Server-side rejections surface as typed
//! [`ClientError`] variants — `Overloaded` and `DeadlineExceeded` are
//! expected operating conditions callers are meant to match on, not
//! stringly-typed surprises.

use std::fmt;
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use hum_core::engine::EngineStats;
use serde_json::Value;

use crate::protocol::{
    self, ErrorKind, FrameRead, Request, Response,
};
use crate::service::{ServiceMatch, ServiceQuery};

/// Per-query knobs (all optional).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Warping-band override (`None` = server default).
    pub band: Option<usize>,
    /// Deadline in milliseconds, measured from server-side admission.
    pub deadline_ms: Option<u64>,
    /// Ask the server for the per-stage cascade trace.
    pub trace: bool,
}

/// A successful query response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Hits, best first.
    pub matches: Vec<ServiceMatch>,
    /// Engine work counters for this query.
    pub stats: EngineStats,
    /// The cascade trace as raw JSON, present iff requested.
    pub trace: Option<Value>,
}

/// What a `hello` negotiation came back with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloReply {
    /// The version both sides speak (minimum of client and server).
    pub version: u64,
    /// The highest version the server speaks.
    pub server_version: u64,
    /// Every op the server understands.
    pub ops: Vec<String>,
}

/// A successful session refinement: the query answer plus how many frames
/// of the session it covered.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineReply {
    /// The query answer over everything appended so far.
    pub reply: QueryReply,
    /// How many session frames this refinement saw.
    pub frames: u64,
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, close mid-frame).
    Io(io::Error),
    /// The server's bytes did not decode as a protocol response, or the
    /// server reported an unreadable frame from us.
    Protocol(String),
    /// Rejected at admission: the queue was full. Retry later.
    Overloaded(String),
    /// The deadline passed before the query finished; carries the
    /// partial work counters when the server attached them.
    DeadlineExceeded {
        /// Server-side detail.
        message: String,
        /// Work done before the abort (`matches` always 0).
        stats: Option<EngineStats>,
    },
    /// The server is draining and refused new work.
    ShuttingDown(String),
    /// The request was readable but unacceptable (bad field, duplicate
    /// id, non-finite samples, unknown/closed session, ...).
    BadRequest(String),
    /// Unexpected server-side failure.
    Internal(String),
    /// The server does not speak this op or protocol version (e.g. a
    /// session op against a v1 server). Fall back or renegotiate.
    Unsupported(String),
    /// The session was evicted (idle LRU under the session cap); open a
    /// new session and re-stream.
    SessionEvicted(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Overloaded(m) => write!(f, "server overloaded: {m}"),
            ClientError::DeadlineExceeded { message, .. } => {
                write!(f, "deadline exceeded: {message}")
            }
            ClientError::ShuttingDown(m) => write!(f, "server shutting down: {m}"),
            ClientError::BadRequest(m) => write!(f, "bad request: {m}"),
            ClientError::Internal(m) => write!(f, "internal server error: {m}"),
            ClientError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ClientError::SessionEvicted(m) => write!(f, "session evicted: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn server_error(kind: ErrorKind, message: String, stats: Option<EngineStats>) -> ClientError {
    match kind {
        ErrorKind::Overloaded => ClientError::Overloaded(message),
        ErrorKind::DeadlineExceeded => ClientError::DeadlineExceeded { message, stats },
        ErrorKind::BadRequest => ClientError::BadRequest(message),
        ErrorKind::Protocol => ClientError::Protocol(message),
        ErrorKind::ShuttingDown => ClientError::ShuttingDown(message),
        ErrorKind::Internal => ClientError::Internal(message),
        ErrorKind::Unsupported => ClientError::Unsupported(message),
        ErrorKind::SessionEvicted => ClientError::SessionEvicted(message),
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    /// Any socket error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream, max_frame_bytes: protocol::MAX_FRAME_BYTES })
    }

    /// Sets a read timeout for responses (`None` = wait forever).
    ///
    /// # Errors
    /// Any socket error.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request and decodes the response; `Ok` responses come
    /// back as the raw payload for the typed wrappers to pick over.
    fn call(&mut self, request: &Request) -> Result<Value, ClientError> {
        let payload = serde_json::to_string(&protocol::request_to_value(request))
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        protocol::write_frame(&mut self.stream, payload.as_bytes(), self.max_frame_bytes)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Value, ClientError> {
        // A generous budget: the stream usually has no read timeout, and
        // when tests set one they want the first timeout to surface.
        match protocol::read_frame(&mut self.stream, self.max_frame_bytes, 0)? {
            FrameRead::Frame(payload) => {
                let text = std::str::from_utf8(&payload)
                    .map_err(|_| ClientError::Protocol("response is not UTF-8".to_string()))?;
                let value = serde_json::from_str(text)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                match protocol::parse_response(value).map_err(ClientError::Protocol)? {
                    Response::Ok(value) => Ok(value),
                    Response::Error { kind, message, stats } => {
                        Err(server_error(kind, message, stats))
                    }
                }
            }
            FrameRead::Idle => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "timed out waiting for a response",
            ))),
            FrameRead::Eof | FrameRead::Truncated => Err(ClientError::Protocol(
                "connection closed before a full response arrived".to_string(),
            )),
            FrameRead::Oversized(len) => Err(ClientError::Protocol(format!(
                "response frame length {len} exceeds maximum {}",
                self.max_frame_bytes
            ))),
        }
    }

    fn query_reply(value: &Value) -> Result<QueryReply, ClientError> {
        Ok(QueryReply {
            matches: protocol::response_matches(value).map_err(ClientError::Protocol)?,
            stats: protocol::response_stats(value).map_err(ClientError::Protocol)?,
            trace: protocol::response_trace(value),
        })
    }

    /// k-nearest-neighbors query over a raw (hummed) pitch series.
    ///
    /// # Errors
    /// Typed [`ClientError`]; see the variants.
    pub fn knn(
        &mut self,
        pitch: &[f64],
        k: usize,
        options: &QueryOptions,
    ) -> Result<QueryReply, ClientError> {
        let value = self.call(&Request::Knn {
            pitch: pitch.to_vec(),
            k,
            band: options.band,
            deadline_ms: options.deadline_ms,
            trace: options.trace,
        })?;
        Self::query_reply(&value)
    }

    /// ε-range query over a raw (hummed) pitch series.
    ///
    /// # Errors
    /// Typed [`ClientError`]; see the variants.
    pub fn range(
        &mut self,
        pitch: &[f64],
        radius: f64,
        options: &QueryOptions,
    ) -> Result<QueryReply, ClientError> {
        let value = self.call(&Request::Range {
            pitch: pitch.to_vec(),
            radius,
            band: options.band,
            deadline_ms: options.deadline_ms,
            trace: options.trace,
        })?;
        Self::query_reply(&value)
    }

    /// Inserts a melody; returns the new store size.
    ///
    /// # Errors
    /// [`ClientError::BadRequest`] for duplicate ids or bad samples.
    pub fn insert(
        &mut self,
        id: u64,
        song: usize,
        phrase: usize,
        pitch: &[f64],
    ) -> Result<u64, ClientError> {
        let value = self.call(&Request::Insert { id, song, phrase, pitch: pitch.to_vec() })?;
        protocol::response_u64(&value, "len").map_err(ClientError::Protocol)
    }

    /// Removes a melody; `(removed, new store size)`.
    ///
    /// # Errors
    /// Typed [`ClientError`]; see the variants.
    pub fn remove(&mut self, id: u64) -> Result<(bool, u64), ClientError> {
        let value = self.call(&Request::Remove { id })?;
        let removed = match value {
            Value::Object(ref fields) => fields
                .iter()
                .find(|(k, _)| k == "removed")
                .and_then(|(_, v)| match v {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                })
                .ok_or_else(|| {
                    ClientError::Protocol("missing boolean field 'removed'".to_string())
                })?,
            _ => return Err(ClientError::Protocol("response is not an object".to_string())),
        };
        let len = protocol::response_u64(&value, "len").map_err(ClientError::Protocol)?;
        Ok((removed, len))
    }

    /// Liveness check; returns the store size.
    ///
    /// # Errors
    /// Typed [`ClientError`]; see the variants.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let value = self.call(&Request::Ping)?;
        protocol::response_u64(&value, "len").map_err(ClientError::Protocol)
    }

    /// The server's metrics snapshot as raw JSON ([`Value::Null`] when the
    /// server runs without a registry).
    ///
    /// # Errors
    /// Typed [`ClientError`]; see the variants.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        let value = self.call(&Request::Stats)?;
        match value {
            Value::Object(fields) => fields
                .into_iter()
                .find(|(k, _)| k == "metrics")
                .map(|(_, v)| v)
                .ok_or_else(|| ClientError::Protocol("missing field 'metrics'".to_string())),
            _ => Err(ClientError::Protocol("response is not an object".to_string())),
        }
    }

    /// Asks the server to begin graceful shutdown.
    ///
    /// # Errors
    /// Typed [`ClientError`]; see the variants.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Shutdown).map(|_| ())
    }

    /// Negotiates the protocol version
    /// ([`protocol::PROTOCOL_VERSION`] is this build's highest) and
    /// learns the server's op table.
    ///
    /// # Errors
    /// Typed [`ClientError`]; a v1 server answers the `hello` op itself
    /// with [`ClientError::Unsupported`], which is the signal to stay on
    /// the sessionless surface.
    pub fn hello(&mut self, version: u64) -> Result<HelloReply, ClientError> {
        let value = self.call(&Request::Hello { version })?;
        let ops = match &value {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == "ops")
                .and_then(|(_, v)| match v {
                    Value::Array(items) => Some(
                        items
                            .iter()
                            .filter_map(|item| match item {
                                Value::String(s) => Some(s.clone()),
                                _ => None,
                            })
                            .collect::<Vec<String>>(),
                    ),
                    _ => None,
                })
                .unwrap_or_default(),
            _ => Vec::new(),
        };
        Ok(HelloReply {
            version: protocol::response_u64(&value, "version").map_err(ClientError::Protocol)?,
            server_version: protocol::response_u64(&value, "server_version")
                .map_err(ClientError::Protocol)?,
            ops,
        })
    }

    /// Opens a streaming query session; the query shape (k-NN or range),
    /// band override, and trace flag are fixed for the session's life.
    /// Returns the session id.
    ///
    /// # Errors
    /// [`ClientError::Overloaded`] at the session cap,
    /// [`ClientError::Unsupported`] from pre-session servers.
    pub fn open_session(
        &mut self,
        query: ServiceQuery,
        options: &QueryOptions,
    ) -> Result<u64, ClientError> {
        let value = self.call(&Request::OpenSession {
            query,
            band: options.band,
            trace: options.trace,
        })?;
        protocol::response_u64(&value, "session").map_err(ClientError::Protocol)
    }

    /// Appends raw pitch frames to an open session; returns the session's
    /// new total frame count.
    ///
    /// # Errors
    /// [`ClientError::Overloaded`] past the per-session byte cap (the
    /// session survives; nothing from this batch landed),
    /// [`ClientError::SessionEvicted`] after an idle-LRU eviction,
    /// [`ClientError::BadRequest`] for closed/unknown sessions or
    /// non-finite samples.
    pub fn append_frames(&mut self, session: u64, frames: &[f64]) -> Result<u64, ClientError> {
        let value =
            self.call(&Request::AppendFrames { session, frames: frames.to_vec() })?;
        protocol::response_u64(&value, "frames").map_err(ClientError::Protocol)
    }

    /// Runs the session's query over everything appended so far.
    ///
    /// # Errors
    /// Typed [`ClientError`]; deadline aborts carry partial stats exactly
    /// like one-shot queries.
    pub fn refine(
        &mut self,
        session: u64,
        deadline_ms: Option<u64>,
    ) -> Result<RefineReply, ClientError> {
        let value = self.call(&Request::Refine { session, deadline_ms })?;
        Ok(RefineReply {
            reply: Self::query_reply(&value)?,
            frames: protocol::response_u64(&value, "frames").map_err(ClientError::Protocol)?,
        })
    }

    /// Closes a session; returns how many frames it had buffered.
    ///
    /// # Errors
    /// [`ClientError::BadRequest`] for unknown/already-closed sessions.
    pub fn close_session(&mut self, session: u64) -> Result<u64, ClientError> {
        let value = self.call(&Request::CloseSession { session })?;
        protocol::response_u64(&value, "frames").map_err(ClientError::Protocol)
    }

    /// Sends raw bytes as one frame and reads back one response — the
    /// fuzzing hook: malformed payloads must come back as typed protocol
    /// errors, never hang or kill the connection unannounced.
    ///
    /// # Errors
    /// Typed [`ClientError`]; see the variants.
    pub fn send_raw_frame(&mut self, payload: &[u8]) -> Result<Value, ClientError> {
        protocol::write_frame(&mut self.stream, payload, self.max_frame_bytes)?;
        self.read_response()
    }

    /// Writes raw bytes verbatim — no framing, no length fixup — then
    /// reads one response. For wire-level fuzzing (bit flips in the
    /// prefix, truncated frames, garbage headers).
    ///
    /// # Errors
    /// Typed [`ClientError`]; see the variants.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> Result<Value, ClientError> {
        use std::io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Half-closes the write side (the server sees EOF), then drains and
    /// discards whatever the server still sends. For truncation tests.
    ///
    /// # Errors
    /// Any socket error from the half-close.
    pub fn finish_writes(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)?;
        let mut sink = [0u8; 1024];
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) => return Ok(()),
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Ok(()),
            }
        }
    }
}
