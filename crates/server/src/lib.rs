//! `hum-server`: the query-serving subsystem.
//!
//! A std-only threaded TCP server exposing the query-by-humming system's
//! range/k-NN API (plus live insert/remove) over a length-prefixed JSON
//! protocol, built from four pieces:
//!
//! - [`protocol`] — the wire format: 4-byte big-endian length prefix +
//!   compact JSON, with allocation-safe reads, typed error codes, and an
//!   explicit protocol version ([`PROTOCOL_VERSION`]) negotiated via the
//!   `hello` op.
//! - [`queue`] — the bounded admission queue: overload is an immediate
//!   typed `overloaded` rejection, never a silent drop or unbounded wait.
//! - [`session`] — per-server state for streaming (v2) query sessions:
//!   buffered frames under hard caps, idle-LRU eviction with typed
//!   `session_evicted` answers, bounded tombstones.
//! - [`server`] — listener, per-connection threads, and a fixed worker
//!   pool with per-worker scratch; request deadlines propagate into the
//!   engine as a cooperative [`hum_core::engine::QueryBudget`]; graceful
//!   shutdown drains every admitted request before handing the served
//!   system back. Session refinements run through the same pool.
//! - [`client`] — a small blocking client, also used by the CLI, the
//!   integration tests, and the `serve` benchmark's load generator.
//!
//! The transport is generic over [`QbhService`] rather than depending on
//! `hum-qbh` (which links this crate into the `qbh serve` subcommand), so
//! the dependency arrow points from the application to the server.
//!
//! Served queries are **bit-identical** to in-process calls at any worker
//! count: workers share the system behind a read lock without mutating it,
//! and the JSON layer round-trips every finite `f64` exactly (shortest
//! round-trip printing, correctly rounded parsing).

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod service;
pub mod session;

pub use client::{Client, ClientError, HelloReply, QueryOptions, QueryReply, RefineReply};
pub use protocol::{
    ErrorKind, ParseError, Request, Response, MAX_FRAME_BYTES, MAX_WIRE_K, PROTOCOL_VERSION,
};
pub use queue::{BoundedQueue, PushError};
pub use server::{Server, ServerConfig};
pub use service::{
    MaintenanceReport, QbhService, ServiceError, ServiceMatch, ServiceOutcome, ServiceQuery,
};
pub use session::{SessionConfig, SessionError, SessionStore};
