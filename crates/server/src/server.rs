//! The threaded TCP server: listener, connection handlers, worker pool.
//!
//! # Threading model
//!
//! ```text
//! listener thread ──accept──► connection thread (one per client)
//!                                  │  read frame, parse, admit
//!                                  ▼
//!                         BoundedQueue<Job>  ── try_push, reject when full
//!                                  │
//!                                  ▼
//!                     worker pool (fixed, owns QueryScratch each)
//!                                  │  execute against RwLock<service>
//!                                  ▼
//!                         mpsc reply ──► connection thread writes frame
//! ```
//!
//! Queries take the service read lock and run concurrently across workers;
//! live mutations take the write lock. Each connection handles one request
//! at a time (the protocol is strictly request/response), so per-request
//! state never outlives its frame.
//!
//! # Deadlines
//!
//! A request's `deadline_ms` (or the server default) becomes a
//! [`QueryBudget`] stamped at *admission* — queue wait counts against the
//! deadline, which is the honest accounting under overload. Workers check
//! the budget before starting; the engine checks it between candidates.
//! Either way the client gets a typed `deadline_exceeded` response carrying
//! the partial work counters.
//!
//! # Graceful shutdown
//!
//! Triggered by [`Server::shutdown`] or — when
//! [`ServerConfig::allow_remote_shutdown`] is enabled — a wire `shutdown`
//! request (disabled by default: the protocol is unauthenticated). The
//! sequence:
//! stop admitting (new work answered `shutting_down`), close the listener,
//! close the queue (workers drain every admitted job — each one still gets
//! its reply), join workers, join connection threads, hand the service
//! back. No accepted request is ever dropped without a response.

use std::io::{self, Write};
use std::net::{Shutdown as SocketShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hum_core::engine::{EngineError, EngineStats, QueryBudget, QueryScratch};
use hum_core::obs::{Metric, MetricsSink, Timer};
use serde::Serialize;
use serde_json::Value;

use crate::protocol::{
    self, error_response, ok_response, ErrorKind, FrameRead, Request, PROTOCOL_VERSION,
};
use crate::queue::{BoundedQueue, PushError};
use crate::service::{QbhService, ServiceError, ServiceQuery};
use crate::session::{SessionConfig, SessionError, SessionStore};

/// How many consecutive read timeouts a connection tolerates *mid-frame*
/// before declaring the frame truncated (a stalled sender cannot pin its
/// connection thread past `poll_interval * MID_FRAME_POLL_BUDGET`).
const MID_FRAME_POLL_BUDGET: usize = 200;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing admitted requests.
    pub workers: usize,
    /// Admission queue capacity; pushes beyond it are rejected with a
    /// typed `overloaded` response.
    pub queue_depth: usize,
    /// Deadline applied to queries that do not carry their own
    /// `deadline_ms` (`None` = unlimited).
    pub default_deadline: Option<Duration>,
    /// Maximum accepted frame payload size.
    pub max_frame_bytes: usize,
    /// How often blocking points (accept, idle reads) wake to check the
    /// shutdown flag; also bounds shutdown latency.
    pub poll_interval: Duration,
    /// Where server and engine counters go. Share one enabled sink between
    /// this config and the served system to get a unified registry.
    pub metrics: MetricsSink,
    /// Whether the wire `shutdown` op is honored. Off by default: the
    /// protocol is unauthenticated, so any client that can connect could
    /// otherwise kill the server with one frame. When disabled, `shutdown`
    /// requests are answered with a typed `bad_request`; in-process
    /// shutdown ([`Server::shutdown`]) always works.
    pub allow_remote_shutdown: bool,
    /// Most streaming sessions open at once; opens past the cap evict the
    /// LRU *idle* session or are refused with a typed `overloaded`.
    pub max_sessions: usize,
    /// Most buffered bytes per streaming session; appends past the cap
    /// are refused whole with a typed `overloaded` (the session survives).
    pub max_session_bytes: usize,
    /// How long a session must idle before the LRU sweep may evict it to
    /// admit a new one (the evicted owner gets a typed `session_evicted`).
    pub session_idle_timeout: Duration,
    /// When set, a background thread calls [`QbhService::maintain`] behind
    /// the write lock at this interval — store-backed services flush their
    /// memtable and compact segments here. `None` (the default) spawns no
    /// thread; in-memory services have nothing to maintain.
    pub maintenance_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            default_deadline: None,
            max_frame_bytes: protocol::MAX_FRAME_BYTES,
            poll_interval: Duration::from_millis(25),
            metrics: MetricsSink::Disabled,
            allow_remote_shutdown: false,
            max_sessions: 64,
            max_session_bytes: 256 * 1024,
            session_idle_timeout: Duration::from_secs(60),
            maintenance_interval: None,
        }
    }
}

/// Work admitted to the queue.
enum JobOp {
    Query { query: ServiceQuery, pitch: Vec<f64>, band: Option<usize>, trace: bool },
    /// A session refinement: the frames were snapshotted out of the
    /// session store at admission, so it executes exactly like `Query`
    /// (same service call, same budget discipline) and only the response
    /// carries extra session bookkeeping.
    Refine { session: u64, query: ServiceQuery, pitch: Vec<f64>, band: Option<usize>, trace: bool },
    Insert { id: u64, song: usize, phrase: usize, pitch: Vec<f64> },
    Remove { id: u64 },
}

struct Job {
    op: JobOp,
    budget: QueryBudget,
    /// Queue-wait timer start ([`None`] when metrics are disabled).
    enqueued: Option<Instant>,
    reply: mpsc::Sender<Value>,
}

struct Shared<S> {
    service: RwLock<S>,
    sessions: Mutex<SessionStore>,
    queue: BoundedQueue<Job>,
    shutting_down: AtomicBool,
    shutdown_flag: Mutex<bool>,
    shutdown_signal: Condvar,
    metrics: MetricsSink,
    default_deadline: Option<Duration>,
    max_frame_bytes: usize,
    poll_interval: Duration,
    allow_remote_shutdown: bool,
}

impl<S> Shared<S> {
    fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let mut flag = match self.shutdown_flag.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *flag = true;
        drop(flag);
        self.shutdown_signal.notify_all();
    }

    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn read_service(&self) -> std::sync::RwLockReadGuard<'_, S> {
        match self.service.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write_service(&self) -> std::sync::RwLockWriteGuard<'_, S> {
        match self.service.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn sessions(&self) -> std::sync::MutexGuard<'_, SessionStore> {
        match self.sessions.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A running server; dropping it without calling [`Server::shutdown`]
/// leaves the background threads detached (the process can still exit).
pub struct Server<S: QbhService> {
    shared: Arc<Shared<S>>,
    local_addr: SocketAddr,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    maintenance: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl<S: QbhService> Server<S> {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// listener and worker pool.
    ///
    /// # Errors
    /// Any socket error from bind/configure.
    pub fn start<A: ToSocketAddrs>(
        service: S,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<Server<S>> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            service: RwLock::new(service),
            sessions: Mutex::new(SessionStore::new(SessionConfig {
                max_sessions: config.max_sessions,
                max_session_bytes: config.max_session_bytes,
                idle_timeout: config.session_idle_timeout,
            })),
            queue: BoundedQueue::new(config.queue_depth),
            shutting_down: AtomicBool::new(false),
            shutdown_flag: Mutex::new(false),
            shutdown_signal: Condvar::new(),
            metrics: config.metrics,
            default_deadline: config.default_deadline,
            max_frame_bytes: config.max_frame_bytes,
            poll_interval: config.poll_interval,
            allow_remote_shutdown: config.allow_remote_shutdown,
        });

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let maintenance = config.maintenance_interval.map(|interval| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || maintenance_loop(&shared, interval))
        });

        let conns = Arc::new(Mutex::new(Vec::new()));
        let listener_handle = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || listener_loop(&listener, &shared, &conns))
        };

        Ok(Server {
            shared,
            local_addr,
            listener: Some(listener_handle),
            workers,
            maintenance,
            conns,
        })
    }

    /// The bound address (reports the real port after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metrics sink.
    pub fn metrics(&self) -> &MetricsSink {
        &self.shared.metrics
    }

    /// Blocks until shutdown is requested — by [`Server::shutdown`] or by
    /// a client's `shutdown` request. The CLI parks its main thread here.
    pub fn wait_shutdown_requested(&self) {
        let mut flag = match self.shared.shutdown_flag.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        while !*flag {
            flag = match self.shared.shutdown_signal.wait(flag) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Graceful shutdown: stop admitting, drain every admitted job (each
    /// still gets its reply), join all threads, and hand the service back.
    ///
    /// Returns `None` only if a background thread leaked its `Shared`
    /// reference, which would be a server bug.
    pub fn shutdown(mut self) -> Option<S> {
        self.shared.request_shutdown();
        if let Some(maintenance) = self.maintenance.take() {
            // Wakes immediately via the shutdown condvar; a tick already in
            // flight finishes first (it holds the write lock).
            let _ = maintenance.join();
        }
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        // Listener is gone: no new connections, and existing connections
        // answer `shutting_down` to new work. Close the queue so workers
        // drain what was admitted and exit.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut conns = match self.conns.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            conns.drain(..).collect()
        };
        for conn in handles {
            let _ = conn.join();
        }
        let shared = Arc::try_unwrap(self.shared).ok()?;
        Some(match shared.service.into_inner() {
            Ok(service) => service,
            Err(poisoned) => poisoned.into_inner(),
        })
    }
}

fn listener_loop<S: QbhService>(
    listener: &TcpListener,
    shared: &Arc<Shared<S>>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.is_shutting_down() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.add(Metric::ServerConnections, 1);
                let shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || connection_loop(stream, &shared));
                let mut conns = match conns.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                conns.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.poll_interval);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                // Accept failures are transient (e.g. fd pressure); back off
                // rather than spin, and keep serving existing connections.
                std::thread::sleep(shared.poll_interval);
            }
        }
    }
}

fn connection_loop<S: QbhService>(mut stream: TcpStream, shared: &Arc<Shared<S>>) {
    // Blocking reads with a timeout double as the shutdown poll point.
    if stream.set_read_timeout(Some(shared.poll_interval)).is_err() {
        return;
    }
    loop {
        match protocol::read_frame(&mut stream, shared.max_frame_bytes, MID_FRAME_POLL_BUDGET) {
            Ok(FrameRead::Frame(payload)) => {
                shared.metrics.add(Metric::ServerBytesIn, payload.len() as u64 + 4);
                let response = handle_frame(shared, &payload);
                if write_response(&mut stream, shared, &response).is_err() {
                    return;
                }
            }
            Ok(FrameRead::Idle) => {
                if shared.is_shutting_down() {
                    let _ = stream.shutdown(SocketShutdown::Both);
                    return;
                }
            }
            Ok(FrameRead::Eof) => return,
            Ok(FrameRead::Truncated) => {
                shared.metrics.add(Metric::ServerProtocolErrors, 1);
                let response =
                    error_response(ErrorKind::Protocol, "truncated frame", None);
                let _ = write_response(&mut stream, shared, &response);
                return;
            }
            Ok(FrameRead::Oversized(len)) => {
                shared.metrics.add(Metric::ServerProtocolErrors, 1);
                let message = format!(
                    "frame length {len} exceeds maximum {}",
                    shared.max_frame_bytes
                );
                let response = error_response(ErrorKind::Protocol, &message, None);
                let _ = write_response(&mut stream, shared, &response);
                return;
            }
            Err(_) => return,
        }
    }
}

fn write_response<S: QbhService>(
    stream: &mut TcpStream,
    shared: &Shared<S>,
    response: &Value,
) -> io::Result<()> {
    let payload = serde_json::to_string(response).map_err(io::Error::other)?;
    let written =
        protocol::write_frame(stream, payload.as_bytes(), shared.max_frame_bytes)?;
    stream.flush()?;
    shared.metrics.add(Metric::ServerBytesOut, written);
    Ok(())
}

/// Decodes and answers one frame. Never panics: every failure mode maps to
/// a typed error response.
fn handle_frame<S: QbhService>(shared: &Arc<Shared<S>>, payload: &[u8]) -> Value {
    let text = match std::str::from_utf8(payload) {
        Ok(text) => text,
        Err(_) => {
            shared.metrics.add(Metric::ServerProtocolErrors, 1);
            return error_response(ErrorKind::Protocol, "payload is not UTF-8", None);
        }
    };
    let value = match serde_json::from_str(text) {
        Ok(value) => value,
        Err(e) => {
            shared.metrics.add(Metric::ServerProtocolErrors, 1);
            return error_response(ErrorKind::Protocol, &format!("invalid JSON: {e}"), None);
        }
    };
    let request = match protocol::parse_request(&value) {
        Ok(request) => request,
        Err(e) => {
            shared.metrics.add(Metric::ServerProtocolErrors, 1);
            return error_response(e.kind, &e.message, None);
        }
    };

    let (op, deadline_ms) = match request {
        Request::Hello { version } => {
            // Capability negotiation: agree on the highest version both
            // sides speak and enumerate the op table so scripted clients
            // can feature-detect instead of probing with trial requests.
            let negotiated = version.min(PROTOCOL_VERSION);
            let ops = [
                "hello", "knn", "range", "insert", "remove", "ping", "stats", "shutdown",
                "open_session", "append_frames", "refine", "close_session",
            ];
            return ok_response(vec![
                ("version", Value::Number(negotiated as f64)),
                ("server_version", Value::Number(PROTOCOL_VERSION as f64)),
                (
                    "ops",
                    Value::Array(
                        ops.iter().map(|op| Value::String((*op).to_string())).collect(),
                    ),
                ),
            ]);
        }
        Request::OpenSession { query, band, trace } => {
            if shared.is_shutting_down() {
                return error_response(
                    ErrorKind::ShuttingDown,
                    "server is shutting down; no new work accepted",
                    None,
                );
            }
            return match shared.sessions().open(query, band, trace, Instant::now()) {
                Ok(session) => ok_response(vec![
                    ("session", Value::Number(session as f64)),
                    ("frames", Value::Number(0.0)),
                ]),
                Err(e) => session_error_response(&shared.metrics, &e),
            };
        }
        Request::AppendFrames { session, frames } => {
            if shared.is_shutting_down() {
                return error_response(
                    ErrorKind::ShuttingDown,
                    "server is shutting down; no new work accepted",
                    None,
                );
            }
            // Reject non-finite samples at the boundary (whole batch, no
            // partial landing) so a refine never sees a poisoned buffer.
            if let Err(e) = hum_core::session::validate_frames(&frames) {
                return error_response(ErrorKind::BadRequest, &e.to_string(), None);
            }
            return match shared.sessions().append(session, &frames, Instant::now()) {
                Ok(total) => ok_response(vec![
                    ("session", Value::Number(session as f64)),
                    ("frames", Value::Number(total as f64)),
                ]),
                Err(e) => session_error_response(&shared.metrics, &e),
            };
        }
        Request::CloseSession { session } => {
            // Allowed even while draining: closing releases resources.
            return match shared.sessions().close(session) {
                Ok(frames) => ok_response(vec![
                    ("session", Value::Number(session as f64)),
                    ("frames", Value::Number(frames as f64)),
                    ("closed", Value::Bool(true)),
                ]),
                Err(e) => session_error_response(&shared.metrics, &e),
            };
        }
        Request::Refine { session, deadline_ms } => {
            // Snapshot under the store lock, then run through the same
            // admission queue and budget discipline as a one-shot query —
            // the lock is never held while the engine works.
            let snapshot = match shared.sessions().snapshot(session, Instant::now()) {
                Ok(snapshot) => snapshot,
                Err(e) => return session_error_response(&shared.metrics, &e),
            };
            (
                JobOp::Refine {
                    session,
                    query: snapshot.query,
                    pitch: snapshot.frames,
                    band: snapshot.band,
                    trace: snapshot.trace,
                },
                deadline_ms,
            )
        }
        Request::Ping => {
            let len = shared.read_service().len();
            return ok_response(vec![("len", Value::Number(len as f64))]);
        }
        Request::Stats => {
            let metrics = match shared.metrics.registry() {
                Some(registry) => registry.snapshot().to_value(),
                None => Value::Null,
            };
            return ok_response(vec![("metrics", metrics)]);
        }
        Request::Shutdown => {
            // Gated: the protocol is unauthenticated, so remote shutdown is
            // opt-in (`ServerConfig::allow_remote_shutdown`); otherwise any
            // client that can connect could kill the server with one frame.
            if !shared.allow_remote_shutdown {
                shared.metrics.add(Metric::ServerProtocolErrors, 1);
                return error_response(
                    ErrorKind::BadRequest,
                    "remote shutdown is disabled on this server",
                    None,
                );
            }
            shared.request_shutdown();
            return ok_response(vec![]);
        }
        Request::Knn { pitch, k, band, deadline_ms, trace } => (
            JobOp::Query { query: ServiceQuery::Knn { k }, pitch, band, trace },
            deadline_ms,
        ),
        Request::Range { pitch, radius, band, deadline_ms, trace } => (
            JobOp::Query { query: ServiceQuery::Range { radius }, pitch, band, trace },
            deadline_ms,
        ),
        Request::Insert { id, song, phrase, pitch } => {
            (JobOp::Insert { id, song, phrase, pitch }, None)
        }
        Request::Remove { id } => (JobOp::Remove { id }, None),
    };

    if shared.is_shutting_down() {
        return error_response(
            ErrorKind::ShuttingDown,
            "server is shutting down; no new work accepted",
            None,
        );
    }

    // The deadline clock starts at admission: queue wait spends budget.
    let timeout = match op {
        JobOp::Query { .. } | JobOp::Refine { .. } => {
            deadline_ms.map(Duration::from_millis).or(shared.default_deadline)
        }
        // Mutations are never abandoned half-applied.
        _ => None,
    };
    let budget = timeout.map_or(QueryBudget::unlimited(), QueryBudget::within);

    let started = shared.metrics.start_timer();
    let (reply, inbox) = mpsc::channel();
    let job = Job { op, budget, enqueued: started, reply };
    match shared.queue.try_push(job) {
        Ok(depth) => {
            shared.metrics.add(Metric::ServerRequestsAccepted, 1);
            shared.metrics.record_max(Metric::ServerQueueHighWater, depth as u64);
            match inbox.recv() {
                Ok(response) => {
                    shared.metrics.observe_since(Timer::ServerRequest, started);
                    response
                }
                // Unreachable by construction (workers always reply), but a
                // dead worker must not strand the client without an answer.
                Err(_) => error_response(
                    ErrorKind::Internal,
                    "worker dropped the request without replying",
                    None,
                ),
            }
        }
        Err(PushError::Full(_)) => {
            shared.metrics.add(Metric::ServerRequestsRejectedOverload, 1);
            error_response(
                ErrorKind::Overloaded,
                "admission queue is full; retry later",
                None,
            )
        }
        Err(PushError::Closed(_)) => error_response(
            ErrorKind::ShuttingDown,
            "server is shutting down; no new work accepted",
            None,
        ),
    }
}

/// Maps a session-store refusal to its typed wire response.
fn session_error_response(metrics: &MetricsSink, e: &SessionError) -> Value {
    match e {
        SessionError::Overloaded(m) => {
            metrics.add(Metric::ServerRequestsRejectedOverload, 1);
            error_response(ErrorKind::Overloaded, m, None)
        }
        SessionError::Evicted(m) => error_response(ErrorKind::SessionEvicted, m, None),
        SessionError::Unknown(m) => error_response(ErrorKind::BadRequest, m, None),
    }
}

/// Periodic service maintenance: waits on the shutdown condvar with a
/// timeout, so shutdown interrupts a sleeping tick immediately. Each tick
/// takes the service write lock (flushes and compactions mutate it);
/// failures are counted and the loop keeps going — a broken disk must not
/// take queries down with it.
fn maintenance_loop<S: QbhService>(shared: &Arc<Shared<S>>, interval: Duration) {
    let mut flag = match shared.shutdown_flag.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    loop {
        if *flag {
            return;
        }
        let (guard, timeout) = match shared.shutdown_signal.wait_timeout(flag, interval) {
            Ok(woken) => woken,
            Err(poisoned) => poisoned.into_inner(),
        };
        flag = guard;
        if *flag {
            return;
        }
        if timeout.timed_out() {
            // Never hold the shutdown lock across a tick: request_shutdown
            // must stay responsive while a compaction runs.
            drop(flag);
            let result = shared.write_service().maintain();
            shared.metrics.add(Metric::ServerMaintenanceTicks, 1);
            if result.is_err() {
                shared.metrics.add(Metric::ServerMaintenanceErrors, 1);
            }
            flag = match shared.shutdown_flag.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

fn worker_loop<S: QbhService>(shared: &Arc<Shared<S>>) {
    let mut scratch = QueryScratch::new();
    while let Some(job) = shared.queue.pop() {
        shared.metrics.observe_since(Timer::ServerQueueWait, job.enqueued);
        let response = execute(shared, job.op, job.budget, &mut scratch);
        // A client that hung up mid-request is the only way this send
        // fails; the work is already done either way.
        let _ = job.reply.send(response);
    }
}

fn execute<S: QbhService>(
    shared: &Shared<S>,
    op: JobOp,
    budget: QueryBudget,
    scratch: &mut QueryScratch,
) -> Value {
    match op {
        JobOp::Query { query, pitch, band, trace } => {
            run_query(shared, &query, &pitch, band, trace, budget, scratch, vec![])
        }
        JobOp::Refine { session, query, pitch, band, trace } => {
            // Same execution as a one-shot query over the snapshotted
            // frames; the response additionally says which session it
            // refined and how many frames that covered, so a streaming
            // client can line results up with what it had sent.
            let extra = vec![
                ("session", Value::Number(session as f64)),
                ("frames", Value::Number(pitch.len() as f64)),
            ];
            run_query(shared, &query, &pitch, band, trace, budget, scratch, extra)
        }
        JobOp::Insert { id, song, phrase, pitch } => {
            let result = shared.write_service().insert(id, song, phrase, &pitch);
            match result {
                Ok(()) => {
                    let len = shared.read_service().len();
                    ok_response(vec![("len", Value::Number(len as f64))])
                }
                Err(e) => service_error_response(&e),
            }
        }
        JobOp::Remove { id } => {
            let mut service = shared.write_service();
            let result = service.remove(id);
            let len = service.len();
            drop(service);
            match result {
                Ok(removed) => ok_response(vec![
                    ("removed", Value::Bool(removed)),
                    ("len", Value::Number(len as f64)),
                ]),
                Err(e) => service_error_response(&e),
            }
        }
    }
}

/// Maps a mutation failure to its wire response: an engine rejection is the
/// client's fault (`bad_request`), a storage failure is the server's
/// (`internal`) — the client sent a perfectly good melody.
fn service_error_response(e: &ServiceError) -> Value {
    match e {
        ServiceError::Engine(engine) => {
            error_response(ErrorKind::BadRequest, &engine.to_string(), None)
        }
        ServiceError::Storage(_) => error_response(ErrorKind::Internal, &e.to_string(), None),
    }
}

/// Runs one budgeted query against the service and shapes the response;
/// `extra` fields (session bookkeeping) ride along on success.
#[allow(clippy::too_many_arguments)]
fn run_query<S: QbhService>(
    shared: &Shared<S>,
    query: &ServiceQuery,
    pitch: &[f64],
    band: Option<usize>,
    trace: bool,
    budget: QueryBudget,
    scratch: &mut QueryScratch,
    extra: Vec<(&str, Value)>,
) -> Value {
    if budget.expired() {
        // Spent its whole deadline in the queue: same typed answer
        // as a mid-run abort, with all-zero work counters.
        shared.metrics.add(Metric::ServerDeadlineExceeded, 1);
        return error_response(
            ErrorKind::DeadlineExceeded,
            "deadline expired before execution began",
            Some(&EngineStats::default()),
        );
    }
    let outcome = {
        let service = shared.read_service();
        service.query(query, pitch, band, budget, trace, scratch)
    };
    match outcome {
        Ok(outcome) => {
            let matches = Value::Array(
                outcome.matches.iter().map(protocol::match_to_value).collect(),
            );
            let mut fields = vec![
                ("matches", matches),
                ("stats", protocol::stats_to_value(&outcome.stats)),
            ];
            if let Some(trace) = &outcome.trace {
                fields.push(("trace", trace.to_value()));
            }
            fields.extend(extra);
            ok_response(fields)
        }
        Err(EngineError::DeadlineExceeded { stats }) => {
            shared.metrics.add(Metric::ServerDeadlineExceeded, 1);
            let message = EngineError::DeadlineExceeded { stats }.to_string();
            error_response(ErrorKind::DeadlineExceeded, &message, Some(&stats))
        }
        Err(e) => error_response(ErrorKind::BadRequest, &e.to_string(), None),
    }
}
