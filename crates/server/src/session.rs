//! Server-side session bookkeeping for the streaming (v2) protocol.
//!
//! A [`SessionStore`] owns every open session's buffered raw frames plus
//! the query shape fixed at `open_session`. It is deliberately dumb about
//! the engine: refinement snapshots the frames and runs through the same
//! worker pool as one-shot queries, so the store only has to answer "what
//! has this session accumulated so far" under a plain mutex.
//!
//! # Resource policy — never a silent drop
//!
//! Three hard caps keep a session-hoarding client from pinning server
//! memory, and every one of them surfaces as a *typed* error:
//!
//! - **Session cap** ([`SessionConfig::max_sessions`]): opening past the
//!   cap evicts the least-recently-used session *only if* it has idled
//!   past [`SessionConfig::idle_timeout`]; otherwise the open is refused
//!   with [`SessionError::Overloaded`]. An evicted session's id is
//!   remembered in a bounded tombstone list so its owner's next request
//!   gets [`SessionError::Evicted`] (wire code `session_evicted`), not a
//!   confusing "unknown session".
//! - **Byte cap** ([`SessionConfig::max_session_bytes`]): an append that
//!   would push the session's buffered frames past the cap is refused
//!   whole with [`SessionError::Overloaded`]; the session itself stays
//!   open and intact.
//! - **Tombstone bound**: the closed/evicted memory is a FIFO of at most
//!   [`TOMBSTONE_CAP`] entries, so the store's footprint is bounded even
//!   against an open/close churn attack. A tombstone that has been pushed
//!   out degrades to the generic "unknown session" answer.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use crate::service::ServiceQuery;

/// Most closed/evicted session ids remembered for precise error answers.
pub const TOMBSTONE_CAP: usize = 1024;

/// Caps and timeouts governing the session store.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Most sessions open at once.
    pub max_sessions: usize,
    /// Most buffered bytes per session (frames × 8).
    pub max_session_bytes: usize,
    /// How long a session must sit idle before the LRU eviction sweep may
    /// reclaim it to admit a new `open_session`.
    pub idle_timeout: Duration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_sessions: 64,
            max_session_bytes: 256 * 1024,
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Why a session operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// No capacity (session cap with no evictable idle session, or a
    /// per-session byte cap hit). Retry later or close something.
    Overloaded(String),
    /// The session was evicted by the idle-LRU policy; open a new one.
    Evicted(String),
    /// The id was never open, or was explicitly closed.
    Unknown(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Overloaded(m) | SessionError::Evicted(m) | SessionError::Unknown(m) => {
                f.write_str(m)
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Everything a refine needs from a session, snapshotted at admission so
/// the store's lock is never held while the engine runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The query shape fixed at `open_session`.
    pub query: ServiceQuery,
    /// Warping-band override fixed at `open_session`.
    pub band: Option<usize>,
    /// Whether refine responses carry the cascade trace.
    pub trace: bool,
    /// Every frame appended so far, in order.
    pub frames: Vec<f64>,
}

struct SessionState {
    query: ServiceQuery,
    band: Option<usize>,
    trace: bool,
    frames: Vec<f64>,
    last_used: Instant,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Tombstone {
    Closed,
    Evicted,
}

/// The per-server table of open streaming sessions.
pub struct SessionStore {
    config: SessionConfig,
    next_id: u64,
    sessions: HashMap<u64, SessionState>,
    tombstones: VecDeque<(u64, Tombstone)>,
}

impl SessionStore {
    /// An empty store under `config`.
    pub fn new(config: SessionConfig) -> SessionStore {
        SessionStore {
            config,
            next_id: 1,
            sessions: HashMap::new(),
            tombstones: VecDeque::new(),
        }
    }

    /// Open sessions right now.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no session is open.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    fn bury(&mut self, id: u64, reason: Tombstone) {
        if self.tombstones.len() == TOMBSTONE_CAP {
            self.tombstones.pop_front();
        }
        self.tombstones.push_back((id, reason));
    }

    /// The typed answer for an id that is not currently open.
    fn missing(&self, id: u64) -> SessionError {
        match self.tombstones.iter().rev().find(|(t, _)| *t == id) {
            Some((_, Tombstone::Closed)) => {
                SessionError::Unknown(format!("session {id} is closed"))
            }
            Some((_, Tombstone::Evicted)) => SessionError::Evicted(format!(
                "session {id} was evicted after idling past the session cap; open a new session"
            )),
            None => SessionError::Unknown(format!("unknown session {id}")),
        }
    }

    /// Opens a session, evicting the LRU *idle* session if at capacity.
    ///
    /// # Errors
    /// [`SessionError::Overloaded`] when at capacity with nothing idle
    /// enough to evict.
    pub fn open(
        &mut self,
        query: ServiceQuery,
        band: Option<usize>,
        trace: bool,
        now: Instant,
    ) -> Result<u64, SessionError> {
        if self.sessions.len() >= self.config.max_sessions.max(1) {
            let lru = self
                .sessions
                .iter()
                .min_by_key(|(id, s)| (s.last_used, **id))
                .map(|(id, s)| (*id, s.last_used));
            match lru {
                Some((id, last_used))
                    if now.saturating_duration_since(last_used) >= self.config.idle_timeout =>
                {
                    self.sessions.remove(&id);
                    self.bury(id, Tombstone::Evicted);
                }
                _ => {
                    return Err(SessionError::Overloaded(format!(
                        "session cap ({}) reached and no session has idled past {:?}",
                        self.config.max_sessions, self.config.idle_timeout
                    )));
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(
            id,
            SessionState { query, band, trace, frames: Vec::new(), last_used: now },
        );
        Ok(id)
    }

    /// Appends frames; returns the session's new total frame count.
    ///
    /// # Errors
    /// [`SessionError::Overloaded`] when the append would cross the byte
    /// cap (the session stays intact), else the typed missing-id answer.
    pub fn append(
        &mut self,
        id: u64,
        frames: &[f64],
        now: Instant,
    ) -> Result<usize, SessionError> {
        let Some(state) = self.sessions.get_mut(&id) else {
            return Err(self.missing(id));
        };
        let bytes_after = (state.frames.len() + frames.len()) * std::mem::size_of::<f64>();
        if bytes_after > self.config.max_session_bytes {
            return Err(SessionError::Overloaded(format!(
                "appending {} frames would hold {bytes_after} bytes, past the per-session cap {}",
                frames.len(),
                self.config.max_session_bytes
            )));
        }
        state.frames.extend_from_slice(frames);
        state.last_used = now;
        Ok(state.frames.len())
    }

    /// Snapshots everything a refine needs and marks the session used.
    ///
    /// # Errors
    /// The typed missing-id answer.
    pub fn snapshot(&mut self, id: u64, now: Instant) -> Result<SessionSnapshot, SessionError> {
        let Some(state) = self.sessions.get_mut(&id) else {
            return Err(self.missing(id));
        };
        state.last_used = now;
        Ok(SessionSnapshot {
            query: state.query,
            band: state.band,
            trace: state.trace,
            frames: state.frames.clone(),
        })
    }

    /// Closes a session; returns how many frames it had buffered.
    ///
    /// # Errors
    /// The typed missing-id answer.
    pub fn close(&mut self, id: u64) -> Result<usize, SessionError> {
        match self.sessions.remove(&id) {
            Some(state) => {
                self.bury(id, Tombstone::Closed);
                Ok(state.frames.len())
            }
            None => Err(self.missing(id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(max_sessions: usize, max_bytes: usize, idle: Duration) -> SessionStore {
        SessionStore::new(SessionConfig {
            max_sessions,
            max_session_bytes: max_bytes,
            idle_timeout: idle,
        })
    }

    const KNN: ServiceQuery = ServiceQuery::Knn { k: 3 };

    #[test]
    fn lifecycle_open_append_snapshot_close() {
        let mut s = store(4, 1024, Duration::from_secs(60));
        let t0 = Instant::now();
        let id = s.open(KNN, Some(5), true, t0).unwrap();
        assert_eq!(s.append(id, &[60.0, 61.0], t0).unwrap(), 2);
        assert_eq!(s.append(id, &[62.0], t0).unwrap(), 3);
        let snap = s.snapshot(id, t0).unwrap();
        assert_eq!(snap.frames, vec![60.0, 61.0, 62.0]);
        assert_eq!(snap.band, Some(5));
        assert!(snap.trace);
        assert_eq!(s.close(id).unwrap(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn closed_and_unknown_and_evicted_ids_get_distinct_answers() {
        let mut s = store(1, 1024, Duration::from_secs(0));
        let t0 = Instant::now();
        let a = s.open(KNN, None, false, t0).unwrap();
        s.close(a).unwrap();
        match s.append(a, &[1.0], t0) {
            Err(SessionError::Unknown(m)) => assert!(m.contains("closed"), "{m}"),
            other => panic!("expected closed answer, got {other:?}"),
        }
        match s.snapshot(777, t0) {
            Err(SessionError::Unknown(m)) => assert!(m.contains("unknown"), "{m}"),
            other => panic!("expected unknown answer, got {other:?}"),
        }
        // Zero idle timeout: the next open may evict immediately.
        let b = s.open(KNN, None, false, t0).unwrap();
        let _c = s.open(KNN, None, false, t0).unwrap();
        match s.append(b, &[1.0], t0) {
            Err(SessionError::Evicted(m)) => assert!(m.contains("evicted"), "{m}"),
            other => panic!("expected evicted answer, got {other:?}"),
        }
    }

    #[test]
    fn cap_with_busy_sessions_is_overloaded_not_eviction() {
        let mut s = store(2, 1024, Duration::from_secs(60));
        let t0 = Instant::now();
        s.open(KNN, None, false, t0).unwrap();
        s.open(KNN, None, false, t0).unwrap();
        // Nothing has idled 60s, so the third open must be refused and
        // both existing sessions must survive.
        match s.open(KNN, None, false, t0) {
            Err(SessionError::Overloaded(m)) => assert!(m.contains("cap"), "{m}"),
            other => panic!("expected overloaded, got {other:?}"),
        }
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn lru_idle_session_is_the_one_evicted() {
        let mut s = store(2, 1024, Duration::from_millis(10));
        let t0 = Instant::now();
        let old = s.open(KNN, None, false, t0).unwrap();
        let young = s.open(KNN, None, false, t0).unwrap();
        let later = t0 + Duration::from_millis(50);
        s.append(young, &[1.0], later).unwrap();
        let id = s.open(KNN, None, false, later + Duration::from_millis(50)).unwrap();
        assert!(matches!(s.append(old, &[1.0], later), Err(SessionError::Evicted(_))));
        assert_eq!(s.append(young, &[2.0], later).unwrap(), 2);
        assert_eq!(s.append(id, &[3.0], later).unwrap(), 1);
    }

    #[test]
    fn byte_cap_refuses_the_whole_append_and_keeps_the_session() {
        // Cap of 4 frames worth of bytes.
        let mut s = store(2, 4 * std::mem::size_of::<f64>(), Duration::from_secs(60));
        let t0 = Instant::now();
        let id = s.open(KNN, None, false, t0).unwrap();
        assert_eq!(s.append(id, &[1.0, 2.0, 3.0], t0).unwrap(), 3);
        assert!(matches!(s.append(id, &[4.0, 5.0], t0), Err(SessionError::Overloaded(_))));
        // Refused whole: nothing from the oversized batch landed.
        assert_eq!(s.snapshot(id, t0).unwrap().frames, vec![1.0, 2.0, 3.0]);
        // A batch that fits still lands afterwards.
        assert_eq!(s.append(id, &[4.0], t0).unwrap(), 4);
    }

    #[test]
    fn tombstones_are_bounded_fifo() {
        let mut s = store(4, 1024, Duration::from_secs(60));
        let t0 = Instant::now();
        let first = s.open(KNN, None, false, t0).unwrap();
        s.close(first).unwrap();
        for _ in 0..TOMBSTONE_CAP {
            let id = s.open(KNN, None, false, t0).unwrap();
            s.close(id).unwrap();
        }
        // `first`'s tombstone has been pushed out: it degrades to the
        // generic unknown answer instead of growing memory forever.
        match s.append(first, &[1.0], t0) {
            Err(SessionError::Unknown(m)) => assert!(m.contains("unknown"), "{m}"),
            other => panic!("expected unknown, got {other:?}"),
        }
    }
}
