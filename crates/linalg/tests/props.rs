//! Property-based tests for the linear-algebra substrate.

use hum_linalg::fft::{dft_real, idft_real, spectrum_energy};
use hum_linalg::haar::{haar_forward, haar_inverse};
use hum_linalg::matrix::Matrix;
use hum_linalg::svd::Svd;
use hum_linalg::vec_ops::{euclidean, norm};
use proptest::prelude::*;

fn signal(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len..=len)
}

fn pow2_len() -> impl Strategy<Value = usize> {
    prop_oneof![Just(8usize), Just(16), Just(32), Just(64), Just(128)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_roundtrip_any_length(x in (1usize..90).prop_flat_map(signal)) {
        let back = idft_real(&dft_real(&x));
        prop_assert_eq!(back.len(), x.len());
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-7, "{} vs {}", a, b);
        }
    }

    #[test]
    fn parseval_any_length(x in (1usize..90).prop_flat_map(signal)) {
        let time: f64 = x.iter().map(|v| v * v).sum();
        let freq = spectrum_energy(&dft_real(&x));
        prop_assert!((time - freq).abs() <= 1e-7 * time.max(1.0));
    }

    #[test]
    fn haar_is_isometric(len in pow2_len(), seed in 0u64..1000) {
        let x: Vec<f64> = (0..len)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 97) as f64 - 48.0)
            .collect();
        let c = haar_forward(&x);
        prop_assert!((norm(&x) - norm(&c)).abs() < 1e-8);
        let back = haar_inverse(&c);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn truncated_haar_lower_bounds_distance(
        len in pow2_len(),
        keep_frac in 1u32..8,
        sa in 0u64..500,
        sb in 500u64..1000,
    ) {
        let gen = |seed: u64| -> Vec<f64> {
            (0..len).map(|i| (((i as u64 + 3) * (seed + 7)) % 101) as f64 / 10.0).collect()
        };
        let (x, y) = (gen(sa), gen(sb));
        let keep = ((len as u32 * keep_frac / 8).max(1) as usize).min(len);
        let cx = &haar_forward(&x)[..keep];
        let cy = &haar_forward(&y)[..keep];
        prop_assert!(euclidean(cx, cy) <= euclidean(&x, &y) + 1e-9);
    }

    #[test]
    fn svd_projection_is_contractive(rows in 3usize..10, cols in 2usize..8, seed in 0u64..100) {
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| ((((r * cols + c) as u64 + 1) * (seed + 13)) % 199) as f64 / 20.0)
                    .collect()
            })
            .collect();
        let m = Matrix::from_row_slices(&data);
        let k = (cols / 2).max(1);
        let svd = Svd::compute_truncated(&m, k);
        for i in 0..rows {
            for j in (i + 1)..rows {
                let d_feat = euclidean(&svd.project(&data[i]), &svd.project(&data[j]));
                let d_orig = euclidean(&data[i], &data[j]);
                prop_assert!(d_feat <= d_orig + 1e-8);
            }
        }
    }

    #[test]
    fn matmul_is_associative(seed in 0u64..200) {
        let gen = |s: u64| {
            Matrix::from_rows(
                3,
                3,
                (0..9).map(|i| (((i as u64 + 2) * (s + 3)) % 23) as f64 - 11.0).collect(),
            )
        };
        let (a, b, c) = (gen(seed), gen(seed + 77), gen(seed + 154));
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-6);
            }
        }
    }
}
