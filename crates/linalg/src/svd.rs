//! Singular value decomposition via the Gram matrix.
//!
//! The SVD reduction transform of §4.3 projects length-`n` time series onto
//! the top `N` right-singular vectors of a (sample of the) database matrix.
//! Since `n` is small (≤ a few hundred) while the sample may have many rows,
//! we compute the eigendecomposition of the `n × n` Gram matrix `AᵀA` with
//! the Jacobi solver; its eigenvectors are the right-singular vectors and its
//! eigenvalues are the squared singular values.

use crate::jacobi::symmetric_eigen;
use crate::matrix::Matrix;

/// A truncated singular value decomposition.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Singular values, descending. Tiny negative eigenvalues from roundoff
    /// are clamped to zero.
    pub singular_values: Vec<f64>,
    /// `right_vectors.row(k)` is the k-th right-singular vector (length =
    /// `a.cols()`); rows are orthonormal.
    pub right_vectors: Matrix,
}

impl Svd {
    /// Computes the top-`k` singular pairs of `a` (right side only).
    ///
    /// `k` is clamped to `a.cols()`.
    pub fn compute_truncated(a: &Matrix, k: usize) -> Svd {
        let n = a.cols();
        let k = k.min(n);
        let gram = a.gram();
        let eig = symmetric_eigen(&gram, 1e-13, 50);
        let singular_values: Vec<f64> =
            eig.values.iter().take(k).map(|&l| l.max(0.0).sqrt()).collect();
        let mut right_vectors = Matrix::zeros(k, n);
        for i in 0..k {
            right_vectors.row_mut(i).copy_from_slice(eig.vectors.row(i));
        }
        Svd { singular_values, right_vectors }
    }

    /// Projects a row vector onto the retained right-singular basis,
    /// producing its `k`-dimensional feature vector.
    ///
    /// Projection onto an orthonormal basis is contractive, so Euclidean
    /// distances between projections lower-bound the original distances —
    /// exactly the GEMINI lower-bounding requirement.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        self.right_vectors.matvec(x)
    }

    /// Reconstructs a row vector from its projection (the best rank-`k`
    /// approximation of `x` within the retained subspace).
    pub fn reconstruct(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.right_vectors.rows(), "feature length mismatch");
        let n = self.right_vectors.cols();
        let mut out = vec![0.0; n];
        for (k, &f) in features.iter().enumerate() {
            crate::vec_ops::axpy(f, self.right_vectors.row(k), &mut out);
        }
        out
    }

    /// Number of retained components.
    pub fn rank(&self) -> usize {
        self.right_vectors.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec_ops::{dot, euclidean, norm};

    fn sample_matrix() -> Matrix {
        // 8 rows living (mostly) in a 2-D subspace of R^4, plus noise.
        let basis1 = [1.0, 1.0, 1.0, 1.0];
        let basis2 = [1.0, -1.0, 1.0, -1.0];
        let mut rows = Vec::new();
        for i in 0..8 {
            let a = (i as f64 * 0.7).sin() * 3.0;
            let b = (i as f64 * 0.3).cos() * 2.0;
            let row: Vec<f64> = (0..4)
                .map(|j| a * basis1[j] + b * basis2[j] + 0.001 * ((i * 4 + j) as f64).sin())
                .collect();
            rows.push(row);
        }
        Matrix::from_row_slices(&rows)
    }

    #[test]
    fn singular_values_are_descending_and_nonnegative() {
        let svd = Svd::compute_truncated(&sample_matrix(), 4);
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn right_vectors_are_orthonormal() {
        let svd = Svd::compute_truncated(&sample_matrix(), 3);
        for i in 0..3 {
            for j in 0..3 {
                let d = dot(svd.right_vectors.row(i), svd.right_vectors.row(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-8, "({i},{j}) -> {d}");
            }
        }
    }

    #[test]
    fn rank2_capture_of_rank2_data() {
        let a = sample_matrix();
        let svd = Svd::compute_truncated(&a, 4);
        // Data is essentially rank 2: tail singular values are tiny.
        assert!(svd.singular_values[2] < 1e-2 * svd.singular_values[0]);
    }

    #[test]
    fn projection_is_contractive() {
        let a = sample_matrix();
        let svd = Svd::compute_truncated(&a, 2);
        let x = a.row(0);
        let y = a.row(5);
        let dx = svd.project(x);
        let dy = svd.project(y);
        assert!(euclidean(&dx, &dy) <= euclidean(x, y) + 1e-10);
        assert!(norm(&dx) <= norm(x) + 1e-10);
    }

    #[test]
    fn projection_preserves_distances_within_subspace() {
        // For data exactly inside the retained subspace, projection is an
        // isometry.
        let rows = vec![
            vec![1.0, 1.0, 1.0, 1.0],
            vec![2.0, -2.0, 2.0, -2.0],
            vec![3.0, -1.0, 3.0, -1.0],
        ];
        let a = Matrix::from_row_slices(&rows);
        let svd = Svd::compute_truncated(&a, 2);
        let d_orig = euclidean(&rows[0], &rows[2]);
        let d_proj = euclidean(&svd.project(&rows[0]), &svd.project(&rows[2]));
        assert!((d_orig - d_proj).abs() < 1e-8);
    }

    #[test]
    fn reconstruct_roundtrips_in_subspace_data() {
        let rows =
            vec![vec![1.0, 1.0, 1.0, 1.0], vec![1.0, -1.0, 1.0, -1.0], vec![5.0, 3.0, 5.0, 3.0]];
        let a = Matrix::from_row_slices(&rows);
        let svd = Svd::compute_truncated(&a, 2);
        for row in &rows {
            let back = svd.reconstruct(&svd.project(row));
            for (x, y) in row.iter().zip(&back) {
                assert!((x - y).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn truncation_clamps_to_column_count() {
        let svd = Svd::compute_truncated(&sample_matrix(), 99);
        assert_eq!(svd.rank(), 4);
    }
}
