//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! Used to fit the SVD reduction transform: the top right-singular vectors of
//! a data matrix `A` are the top eigenvectors of the Gram matrix `AᵀA`, which
//! is symmetric positive semi-definite. The classic Jacobi rotation method is
//! simple, numerically robust, and fast enough for the Gram matrices in this
//! workspace (order ≤ a few hundred).

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition, sorted by descending eigenvalue.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// `vectors.row(k)` is the unit eigenvector for `values[k]`.
    pub vectors: Matrix,
}

/// Computes all eigenpairs of a symmetric matrix with the cyclic Jacobi
/// method.
///
/// Convergence is declared when the off-diagonal Frobenius mass falls below
/// `tol * ‖A‖_F` or after `max_sweeps` full sweeps (whichever comes first; 30
/// sweeps is far more than Jacobi ever needs in practice).
///
/// # Panics
/// Panics if the matrix is not square.
pub fn symmetric_eigen(a: &Matrix, tol: f64, max_sweeps: usize) -> EigenDecomposition {
    assert_eq!(a.rows(), a.cols(), "eigendecomposition requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    if n == 0 {
        return EigenDecomposition { values: Vec::new(), vectors: v };
    }

    let norm = m.frobenius_norm().max(f64::MIN_POSITIVE);
    let threshold = tol * norm;

    for _sweep in 0..max_sweeps {
        let off = off_diagonal_norm(&m);
        if off <= threshold {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= threshold / (n as f64 * n as f64).max(1.0) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Stable computation of the rotation (Golub & Van Loan 8.4).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                apply_rotation(&mut m, p, q, c, s);
                // Accumulate the rotation into the eigenvector matrix: rows of
                // `v` hold the current basis, so rotate rows p and q.
                rotate_rows(&mut v, p, q, c, s);
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).expect("eigenvalues are finite"));

    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (k, &i) in order.iter().enumerate() {
        vectors.row_mut(k).copy_from_slice(v.row(i));
    }
    EigenDecomposition { values, vectors }
}

/// Frobenius norm of the strictly upper triangle (×√2 would give the full
/// off-diagonal mass; the constant does not matter for a threshold test).
fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += m[(i, j)] * m[(i, j)];
        }
    }
    s.sqrt()
}

/// Applies the two-sided Jacobi rotation J(p,q,θ)ᵀ · M · J(p,q,θ) in place.
fn apply_rotation(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let apq = m[(p, q)];

    m[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    m[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;

    for i in 0..n {
        if i == p || i == q {
            continue;
        }
        let aip = m[(i, p)];
        let aiq = m[(i, q)];
        m[(i, p)] = c * aip - s * aiq;
        m[(p, i)] = m[(i, p)];
        m[(i, q)] = s * aip + c * aiq;
        m[(q, i)] = m[(i, q)];
    }
}

/// Rotates rows `p` and `q` of `v` by the Givens rotation (c, s).
fn rotate_rows(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.cols();
    for j in 0..n {
        let vp = v[(p, j)];
        let vq = v[(q, j)];
        v[(p, j)] = c * vp - s * vq;
        v[(q, j)] = s * vp + c * vq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec_ops::dot;

    fn eigen(a: &Matrix) -> EigenDecomposition {
        symmetric_eigen(a, 1e-14, 50)
    }

    #[test]
    fn diagonal_matrix_is_already_solved() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 5.0;
        a[(2, 2)] = 3.0;
        let e = eigen(&a);
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v = e.vectors.row(0);
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v[0] - v[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction_from_eigenpairs() {
        // A = Σ λ_k v_k v_kᵀ must reproduce the input.
        let a = Matrix::from_rows(
            4,
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, //
                1.0, 3.0, 0.2, 0.1, //
                0.5, 0.2, 2.0, 0.3, //
                0.0, 0.1, 0.3, 1.0,
            ],
        );
        let e = eigen(&a);
        let mut recon = Matrix::zeros(4, 4);
        for k in 0..4 {
            let v = e.vectors.row(k);
            for i in 0..4 {
                for j in 0..4 {
                    recon[(i, j)] += e.values[k] * v[i] * v[j];
                }
            }
        }
        for i in 0..4 {
            for j in 0..4 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(
            3,
            3,
            vec![2.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 2.0],
        );
        let e = eigen(&a);
        for i in 0..3 {
            for j in 0..3 {
                let d = dot(e.vectors.row(i), e.vectors.row(j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn eigenvalue_equation_holds() {
        let a = Matrix::from_rows(
            3,
            3,
            vec![6.0, 2.0, 1.0, 2.0, 3.0, 1.0, 1.0, 1.0, 1.0],
        );
        let e = eigen(&a);
        for k in 0..3 {
            let v = e.vectors.row(k).to_vec();
            let av = a.matvec(&v);
            for i in 0..3 {
                assert!((av[i] - e.values[k] * v[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn trace_equals_sum_of_eigenvalues() {
        let a = Matrix::from_rows(
            5,
            5,
            (0..25)
                .map(|k| {
                    let (i, j) = (k / 5, k % 5);
                    // symmetric pattern
                    1.0 / (1.0 + (i as f64 - j as f64).abs())
                })
                .collect(),
        );
        let e = eigen(&a);
        let trace: f64 = (0..5).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_is_ok() {
        let e = eigen(&Matrix::zeros(0, 0));
        assert!(e.values.is_empty());
    }
}
