//! A small row-major dense matrix.
//!
//! Sized for this workspace's needs: Gram matrices of a few hundred columns
//! (SVD fitting) and transform coefficient matrices with a handful of rows.

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape {rows}x{cols} needs {} values", rows * cols);
        Matrix { rows, cols, data }
    }

    /// Creates a matrix whose rows are the given vectors.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_row_slices(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows).map(|i| crate::vec_ops::dot(self.row(i), v)).collect()
    }

    /// The Gram matrix `selfᵀ · self` (cols × cols), computed symmetrically.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i3 = Matrix::identity(3);
        let i2 = Matrix::identity(2);
        assert_eq!(a.matmul(&i3), a);
        assert_eq!(i2.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(2, 2, vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = Matrix::from_rows(3, 2, vec![1.0, -1.0, 2.0, 0.5, 0.0, 3.0]);
        let v = vec![2.0, 4.0];
        assert_eq!(a.matvec(&v), vec![-2.0, 6.0, 12.0]);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_rows(3, 2, vec![1.0, 2.0, 0.0, -1.0, 3.0, 1.0]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
        // Gram matrices are symmetric PSD; check symmetry explicitly.
        assert_eq!(g[(0, 1)], g[(1, 0)]);
    }

    #[test]
    fn from_row_slices_builds_expected_layout() {
        let m = Matrix::from_row_slices(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(9).frobenius_norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
