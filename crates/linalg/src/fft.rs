//! Discrete Fourier transforms.
//!
//! The DFT reduction transform of the paper (§4.3, Fig 7) needs the first few
//! Fourier coefficients of length-`n` time series. For power-of-two lengths
//! (the lengths used throughout the paper's experiments: 128 and 256) we use
//! an iterative radix-2 Cooley-Tukey FFT; other lengths fall back to the
//! naive O(n²) DFT, which is still fast for the short series involved.
//!
//! All transforms here use the *unitary* convention with scale factor
//! `1/sqrt(n)` applied on the forward transform and `1/sqrt(n)` on the
//! inverse, so the transform is an isometry: `‖F(x)‖₂ = ‖x‖₂` (Parseval).
//! That property is what makes truncated-DFT feature distances lower-bound
//! the true Euclidean distance in the GEMINI framework.

use crate::complex::Complex;

/// Returns `true` if `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// In-place iterative radix-2 FFT without normalization.
///
/// `invert` selects the inverse transform (conjugate twiddles). Panics if the
/// length is not a power of two.
fn fft_radix2(buf: &mut [Complex], invert: bool) {
    let n = buf.len();
    assert!(is_power_of_two(n), "radix-2 FFT requires a power-of-two length, got {n}");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }

    let sign = if invert { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let half = len / 2;
        let mut start = 0;
        while start < n {
            let mut w = Complex::ONE;
            for k in 0..half {
                let u = buf[start + k];
                let v = buf[start + k + half] * w;
                buf[start + k] = u + v;
                buf[start + k + half] = u - v;
                w = w * wlen;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Naive O(n²) DFT without normalization, for arbitrary lengths.
fn dft_naive(input: &[Complex], invert: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if invert { 1.0 } else { -1.0 };
    let base = sign * 2.0 * std::f64::consts::PI / n as f64;
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (t, &x) in input.iter().enumerate() {
                acc += x * Complex::cis(base * (k as f64) * (t as f64));
            }
            acc
        })
        .collect()
}

/// Unitary forward DFT of a complex signal.
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let mut out = if is_power_of_two(n) {
        let mut buf = input.to_vec();
        fft_radix2(&mut buf, false);
        buf
    } else {
        dft_naive(input, false)
    };
    for z in &mut out {
        *z = z.scale(scale);
    }
    out
}

/// Unitary inverse DFT of a complex spectrum.
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (n as f64).sqrt();
    let mut out = if is_power_of_two(n) {
        let mut buf = input.to_vec();
        fft_radix2(&mut buf, true);
        buf
    } else {
        dft_naive(input, true)
    };
    for z in &mut out {
        *z = z.scale(scale);
    }
    out
}

/// Unitary forward DFT of a real signal.
pub fn dft_real(input: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::from_real(x)).collect();
    dft(&buf)
}

/// Reconstructs a real signal from its unitary spectrum, discarding the
/// (numerically tiny) imaginary residue.
pub fn idft_real(spectrum: &[Complex]) -> Vec<f64> {
    idft(spectrum).into_iter().map(|z| z.re).collect()
}

/// Squared L2 norm of a complex vector.
pub fn spectrum_energy(spectrum: &[Complex]) -> f64 {
    spectrum.iter().map(|z| z.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn dft_of_constant_is_dc_only() {
        let x = vec![2.0; 8];
        let spec = dft_real(&x);
        // Unitary DC coefficient = sum / sqrt(n) = 16 / sqrt(8).
        assert_close(spec[0].re, 16.0 / 8f64.sqrt(), 1e-12);
        for z in &spec[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_pure_tone_concentrates_energy() {
        let n = 64;
        let freq = 5;
        let x: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * freq as f64 * t as f64 / n as f64).cos())
            .collect();
        let spec = dft_real(&x);
        let total = spectrum_energy(&spec);
        let at_tone = spec[freq].norm_sqr() + spec[n - freq].norm_sqr();
        assert_close(at_tone / total, 1.0, 1e-10);
    }

    #[test]
    fn roundtrip_power_of_two() {
        let x: Vec<f64> = (0..128).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let back = idft_real(&dft_real(&x));
        for (a, b) in x.iter().zip(&back) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn roundtrip_arbitrary_length() {
        let x: Vec<f64> = (0..37).map(|i| (i as f64 * 0.7).sin() + 0.1 * i as f64).collect();
        let back = idft_real(&dft_real(&x));
        for (a, b) in x.iter().zip(&back) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<f64> = (0..256).map(|i| ((i as f64) * 0.13).sin() * (i as f64 % 7.0)).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy = spectrum_energy(&dft_real(&x));
        assert_close(time_energy, freq_energy, 1e-8 * time_energy.max(1.0));
    }

    #[test]
    fn naive_and_fft_agree_on_power_of_two() {
        let x: Vec<Complex> =
            (0..32).map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.11).cos())).collect();
        let fast = dft(&x);
        let slow: Vec<Complex> =
            dft_naive(&x, false).into_iter().map(|z| z.scale(1.0 / 32f64.sqrt())).collect();
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn conjugate_symmetry_for_real_input() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64).sqrt() - 3.0).collect();
        let spec = dft_real(&x);
        for k in 1..32 {
            let a = spec[k];
            let b = spec[64 - k].conj();
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(dft_real(&[]).is_empty());
        let spec = dft_real(&[5.0]);
        assert_eq!(spec.len(), 1);
        assert_close(spec[0].re, 5.0, 1e-12);
    }
}
