//! Vector operations and summary statistics shared across the workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// `y += alpha * x`.
///
/// # Panics
/// Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Arithmetic mean; zero for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance; zero for slices shorter than two elements.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Population standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Subtracts the mean in place, making the series shift-invariant
/// ("normal form" step of §3.3, item 1).
pub fn center(a: &mut [f64]) {
    let m = mean(a);
    for x in a.iter_mut() {
        *x -= m;
    }
}

/// Normalizes to unit L2 norm in place. No-op for the zero vector.
pub fn normalize_l2(a: &mut [f64]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// Minimum and maximum of a nonempty slice.
///
/// # Panics
/// Panics if the slice is empty.
pub fn min_max(a: &[f64]) -> (f64, f64) {
    assert!(!a.is_empty(), "min_max of empty slice");
    let mut lo = a[0];
    let mut hi = a[0];
    for &x in &a[1..] {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    (lo, hi)
}

/// Linear interpolation between `a` and `b` at parameter `t ∈ [0, 1]`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Pearson correlation of two equal-length slices; zero when either side is
/// constant.
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation requires equal lengths");
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_basics() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn euclidean_distance_known_value() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(sq_euclidean(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn mean_variance_of_known_data() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&a), 5.0);
        assert_eq!(variance(&a), 4.0);
        assert_eq!(std_dev(&a), 2.0);
    }

    #[test]
    fn center_makes_zero_mean() {
        let mut a = vec![1.0, 2.0, 3.0, 10.0];
        center(&mut a);
        assert!(mean(&a).abs() < 1e-12);
    }

    #[test]
    fn normalize_l2_unit_norm_and_zero_vector() {
        let mut a = vec![3.0, 4.0];
        normalize_l2(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize_l2(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn min_max_of_mixed_slice() {
        assert_eq!(min_max(&[3.0, -1.0, 7.0, 2.0]), (-1.0, 7.0));
    }

    #[test]
    fn correlation_of_linear_relation() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 3.0 * x - 2.0).collect();
        let c: Vec<f64> = a.iter().map(|x| -0.5 * x + 1.0).collect();
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&a, &vec![5.0; 50]), 0.0);
    }

    #[test]
    fn empty_slices_are_handled() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[7.0]), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        assert_eq!(lerp(2.0, 6.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 6.0, 1.0), 6.0);
        assert_eq!(lerp(2.0, 6.0, 0.5), 4.0);
    }
}
