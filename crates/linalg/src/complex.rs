//! A minimal complex number type, sufficient for the FFT and DFT transforms.

use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn magnitude_of_three_four() {
        let z = Complex::new(3.0, 4.0);
        assert!(close(z.abs(), 5.0));
        assert!(close(z.norm_sqr(), 25.0));
    }

    #[test]
    fn multiplication_matches_polar_form() {
        let a = Complex::cis(0.3).scale(2.0);
        let b = Complex::cis(0.5).scale(1.5);
        let p = a * b;
        assert!(close(p.abs(), 3.0));
        assert!(close(p.im.atan2(p.re), 0.8));
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex::new(1.0, -2.0));
        // z * conj(z) = |z|^2
        let m = z * z.conj();
        assert!(close(m.re, z.norm_sqr()));
        assert!(close(m.im, 0.0));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.4;
            assert!(close(Complex::cis(theta).abs(), 1.0));
        }
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(2.0, -3.0);
        assert_eq!(z, Complex::new(3.0, -2.0));
        z -= Complex::new(3.0, -2.0);
        assert_eq!(z, Complex::ZERO);
    }
}
