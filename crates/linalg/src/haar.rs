//! Orthonormal Haar wavelet transform.
//!
//! The DWT reduction transform keeps the first `N` Haar coefficients (the
//! coarse approximation plus the coarsest details). With the orthonormal
//! normalization used here the full transform is an isometry, so truncated
//! coefficient distances lower-bound Euclidean distances — the GEMINI
//! requirement. Lengths must be powers of two (the experiments use 128/256);
//! callers pad or resample otherwise.

use std::f64::consts::SQRT_2;

/// Full orthonormal Haar decomposition.
///
/// Output layout is the standard pyramid: `[approx | d_coarse | ... | d_fine]`
/// where the single approximation coefficient comes first and detail bands
/// follow from coarsest to finest.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn haar_forward(input: &[f64]) -> Vec<f64> {
    let n = input.len();
    assert!(crate::fft::is_power_of_two(n.max(1)), "Haar transform requires a power-of-two length");
    let mut out = input.to_vec();
    let mut scratch = vec![0.0; n];
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            let a = out[2 * i];
            let b = out[2 * i + 1];
            scratch[i] = (a + b) / SQRT_2;
            scratch[half + i] = (a - b) / SQRT_2;
        }
        out[..len].copy_from_slice(&scratch[..len]);
        len = half;
    }
    out
}

/// Inverse of [`haar_forward`].
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn haar_inverse(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    assert!(crate::fft::is_power_of_two(n.max(1)), "Haar transform requires a power-of-two length");
    let mut out = coeffs.to_vec();
    let mut scratch = vec![0.0; n];
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for i in 0..half {
            let s = out[i];
            let d = out[half + i];
            scratch[2 * i] = (s + d) / SQRT_2;
            scratch[2 * i + 1] = (s - d) / SQRT_2;
        }
        out[..len].copy_from_slice(&scratch[..len]);
        len <<= 1;
    }
    out
}

/// The `j`-th row of the orthonormal Haar analysis matrix for length `n`,
/// i.e. the linear functional whose dot product with a signal yields Haar
/// coefficient `j`.
///
/// This explicit coefficient view is what the envelope-transform construction
/// (paper Lemma 3) consumes: it splits each row by coefficient sign.
///
/// # Panics
/// Panics if `n` is not a power of two or `j >= n`.
pub fn haar_row(n: usize, j: usize) -> Vec<f64> {
    assert!(crate::fft::is_power_of_two(n.max(1)), "Haar transform requires a power-of-two length");
    assert!(j < n, "row index out of range");
    // Apply the forward transform to each basis vector once would be O(n^2
    // log n); instead exploit that the analysis matrix rows are scaled,
    // shifted square waves. Row 0 is the overall average; row j for
    // j = 2^l + k (0 ≤ k < 2^l) is the detail at level l, block k.
    let mut row = vec![0.0; n];
    if j == 0 {
        let v = 1.0 / (n as f64).sqrt();
        row.iter_mut().for_each(|x| *x = v);
        return row;
    }
    let l = usize::BITS - 1 - j.leading_zeros(); // floor(log2 j)
    let blocks = 1usize << l;
    let k = j - blocks;
    let block_len = n / blocks;
    let half = block_len / 2;
    let v = 1.0 / (block_len as f64).sqrt();
    let start = k * block_len;
    for x in &mut row[start..start + half] {
        *x = v;
    }
    for x in &mut row[start + half..start + block_len] {
        *x = -v;
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec_ops::{dot, norm, sq_euclidean};

    #[test]
    fn roundtrip_recovers_signal() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin() * (1.0 + i as f64 / 10.0)).collect();
        let back = haar_inverse(&haar_forward(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn constant_signal_has_single_coefficient() {
        let x = vec![3.0; 16];
        let c = haar_forward(&x);
        assert!((c[0] - 3.0 * 4.0).abs() < 1e-12); // 3 * sqrt(16)
        for v in &c[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn transform_is_an_isometry() {
        let x: Vec<f64> = (0..128).map(|i| ((i * i) % 13) as f64 - 6.0).collect();
        let y: Vec<f64> = (0..128).map(|i| ((i * 7) % 17) as f64).collect();
        let cx = haar_forward(&x);
        let cy = haar_forward(&y);
        assert!((norm(&x) - norm(&cx)).abs() < 1e-9);
        assert!((sq_euclidean(&x, &y) - sq_euclidean(&cx, &cy)).abs() < 1e-8);
    }

    #[test]
    fn rows_match_forward_transform() {
        let n = 32;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos() + 0.05 * i as f64).collect();
        let c = haar_forward(&x);
        for (j, coeff) in c.iter().enumerate() {
            let row = haar_row(n, j);
            assert!((dot(&row, &x) - coeff).abs() < 1e-10, "row {j}");
        }
    }

    #[test]
    fn rows_are_orthonormal() {
        let n = 16;
        for i in 0..n {
            for j in 0..n {
                let d = dot(&haar_row(n, i), &haar_row(n, j));
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn step_signal_concentrates_in_coarse_coefficients() {
        let mut x = vec![1.0; 32];
        for v in &mut x[16..] {
            *v = -1.0;
        }
        let c = haar_forward(&x);
        // A half-step is exactly the level-0 detail basis function.
        assert!(c[1].abs() > 5.0);
        let tail: f64 = c[2..].iter().map(|v| v * v).sum();
        assert!(tail < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let _ = haar_forward(&[1.0, 2.0, 3.0]);
    }
}
