//! Dense linear-algebra substrate for the warping-index workspace.
//!
//! The paper's envelope-transform framework (Zhu & Shasha, SIGMOD 2003, §4.3)
//! instantiates dimensionality reduction with PAA, DFT, DWT and SVD. This
//! crate provides the numerical machinery those transforms need, implemented
//! from scratch:
//!
//! * [`Complex`] — a minimal complex number type.
//! * [`fft`] — an iterative radix-2 FFT with a naive-DFT fallback for
//!   non-power-of-two lengths.
//! * [`Matrix`] — a small row-major dense matrix.
//! * [`jacobi`] — a cyclic Jacobi eigensolver for symmetric matrices.
//! * [`svd`] — singular value decomposition of a data matrix via the Gram
//!   matrix, used to fit the SVD reduction transform on a database sample.
//! * [`haar`] — the orthonormal Haar wavelet transform used by the DWT
//!   reduction.
//! * [`vec_ops`] — dot products, norms and summary statistics shared across
//!   the workspace.

pub mod complex;
pub mod fft;
pub mod haar;
pub mod jacobi;
pub mod matrix;
pub mod svd;
pub mod vec_ops;

pub use complex::Complex;
pub use matrix::Matrix;
