//! Dynamic Time Warping (paper §4).
//!
//! [`dtw_distance`] implements the unconstrained Definition 1 for arbitrary
//! lengths; [`ldtw_distance`] implements the `k`-local variant of
//! Definition 4 (a Sakoe-Chiba band of half-width `k`) on equal-length
//! series, computed in O(nk) time and O(k) space. Definition 5 — LDTW after
//! both series are brought to a common length by Uniform Time Warping — is
//! what the rest of the workspace calls "the DTW distance"; the common
//! length is established by [`crate::normal`].

use crate::kernel::soa::AlignedF64;
use crate::kernel::KernelMode;

/// Converts the paper's *warping width* `δ = (2k+1)/n` into the band
/// half-width `k` for series of length `n` (§4.2).
///
/// ```
/// use hum_core::band_for_warping_width;
/// assert_eq!(band_for_warping_width(0.1, 256), 12);
/// assert_eq!(band_for_warping_width(0.0, 256), 0); // Euclidean
/// ```
///
/// `δ = 0` (or any value giving `k = 0`) degenerates to Euclidean distance.
/// `δ = 1` gives `k ≈ n/2`, which the paper calls the degeneration of local
/// DTW to global DTW; pass `k = n − 1` to [`ldtw_distance`] directly for the
/// fully unconstrained band.
pub fn band_for_warping_width(delta: f64, n: usize) -> usize {
    assert!((0.0..=1.0).contains(&delta), "warping width must lie in [0,1]");
    let k = ((delta * n as f64 - 1.0) / 2.0).round();
    (k.max(0.0) as usize).min(n.saturating_sub(1))
}

/// Reusable scratch space for the banded DTW kernel.
///
/// The kernel needs two DP rows of width `2k + 1`; allocating them per call
/// dominates the cost of verifying short series. A workspace amortizes the
/// allocation across an entire query (the engine keeps one per query) and
/// doubles as the profiler for the cascade: [`DtwWorkspace::cells`] counts
/// every DP cell evaluated through it, which is the "verification work" the
/// cascade exists to reduce.
///
/// Rows live in cache-line-aligned, sentinel-padded buffers (slot `s` at
/// raw index `s + 1`, permanent `+∞` at both ends) in the layout
/// [`crate::kernel::dtw_row`] expects, alongside the two elementwise
/// scratch rows of its vectorizable phase.
#[derive(Debug, Clone, Default)]
pub struct DtwWorkspace {
    prev: AlignedF64,
    curr: AlignedF64,
    dd: AlignedF64,
    pm: AlignedF64,
    cells: u64,
}

impl DtwWorkspace {
    /// An empty workspace; rows grow on first use.
    pub fn new() -> Self {
        DtwWorkspace::default()
    }

    /// Total DP cells evaluated through this workspace since construction
    /// (or the last [`DtwWorkspace::reset_cells`]).
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// Resets the DP-cell counter to zero.
    pub fn reset_cells(&mut self) {
        self.cells = 0;
    }
}

/// Squared `k`-Local DTW distance between equal-length series
/// (Definition 4).
///
/// ```
/// use hum_core::dtw::ldtw_distance_sq;
/// // A one-step shift costs nothing once the band admits it.
/// let x = [0.0, 0.0, 1.0, 0.0, 0.0];
/// let y = [0.0, 0.0, 0.0, 1.0, 0.0];
/// assert!(ldtw_distance_sq(&x, &y, 0) > 0.0);
/// assert_eq!(ldtw_distance_sq(&x, &y, 1), 0.0);
/// ```
///
/// Cell `(i, j)` is admissible only when `|i − j| ≤ k`. With `k ≥ n − 1` this
/// equals unconstrained DTW on equal lengths; with `k = 0` it equals the
/// squared Euclidean distance.
///
/// # Panics
/// Panics if the series lengths differ or are zero.
pub fn ldtw_distance_sq(x: &[f64], y: &[f64], k: usize) -> f64 {
    ldtw_distance_sq_bounded_with(&mut DtwWorkspace::new(), x, y, k, f64::INFINITY)
}

/// Early-abandoning variant of [`ldtw_distance_sq`].
///
/// Returns exactly `ldtw_distance_sq(x, y, k)` — same floating-point
/// operations in the same order — whenever that value is `≤ threshold_sq`.
/// When every admissible cell of some DP row exceeds `threshold_sq`, no
/// warping path can finish below it (path costs are sums of non-negative
/// terms and every path crosses every row), so the kernel abandons the
/// remaining rows and returns `f64::INFINITY`. The result is therefore
/// `> threshold_sq` exactly when the true distance is, which is all a
/// threshold-aware caller inspects.
///
/// # Panics
/// Panics if the series lengths differ or are zero.
pub fn ldtw_distance_sq_bounded(x: &[f64], y: &[f64], k: usize, threshold_sq: f64) -> f64 {
    ldtw_distance_sq_bounded_with(&mut DtwWorkspace::new(), x, y, k, threshold_sq)
}

/// [`ldtw_distance_sq_bounded`] computing in a caller-provided
/// [`DtwWorkspace`], avoiding the two per-call row allocations.
///
/// # Panics
/// Panics if the series lengths differ or are zero.
pub fn ldtw_distance_sq_bounded_with(
    ws: &mut DtwWorkspace,
    x: &[f64],
    y: &[f64],
    k: usize,
    threshold_sq: f64,
) -> f64 {
    ldtw_distance_sq_bounded_with_mode(ws, x, y, k, threshold_sq, KernelMode::default())
}

/// [`ldtw_distance_sq_bounded_with`] with an explicit [`KernelMode`] for
/// the row kernel. Every mode computes identical bits (see
/// [`crate::kernel::dtw_row`]).
///
/// # Panics
/// Panics if the series lengths differ or are zero.
#[allow(clippy::needless_range_loop)] // explicit i index drives the band geometry
pub fn ldtw_distance_sq_bounded_with_mode(
    ws: &mut DtwWorkspace,
    x: &[f64],
    y: &[f64],
    k: usize,
    threshold_sq: f64,
    mode: KernelMode,
) -> f64 {
    let n = x.len();
    assert_eq!(n, y.len(), "LDTW requires equal lengths (apply the UTW normal form first)");
    assert!(n > 0, "LDTW of empty series");
    let k = k.min(n - 1);

    // Banded DP over rows; each row stores the window [i-k, i+k] in the
    // sentinel-padded layout of `kernel::dtw_row` (slot s at raw s + 1).
    let width = 2 * k + 1;
    let inf = f64::INFINITY;
    ws.prev.reset(width + 2, inf);
    ws.curr.reset(width + 2, inf);
    ws.dd.reset(width, inf);
    ws.pm.reset(width, inf);

    // Row 0: j in [0, k]. Prefix sums are non-decreasing, so the row minimum
    // is the first cell, (0, 0).
    {
        let prev = ws.prev.as_mut_slice();
        let mut acc = 0.0;
        for j in 0..=k.min(n - 1) {
            let d = x[0] - y[j];
            acc += d * d;
            prev[j + k + 1] = acc; // column j maps to slot j - i + k, raw slot + 1
        }
        ws.cells += (k.min(n - 1) + 1) as u64;
        if prev[k + 1] > threshold_sq {
            return inf;
        }
    }

    for i in 1..n {
        let j_lo = i.saturating_sub(k);
        let j_hi = (i + k).min(n - 1);
        let slot_lo = j_lo + k - i;
        let slot_hi = j_hi + k - i;
        let curr = ws.curr.as_mut_slice();
        // Clear the one stale cell on each side of this row's span (band
        // spans move at most one slot per row, so this replaces the full
        // O(width) row reset; see kernel::dtw_row's layout notes).
        curr[slot_lo] = inf;
        curr[slot_hi + 2] = inf;
        let row_min = crate::kernel::dtw_row::band_row(
            mode,
            ws.prev.as_slice(),
            curr,
            ws.dd.as_mut_slice(),
            ws.pm.as_mut_slice(),
            x[i],
            &y[j_lo..=j_hi],
            slot_lo,
        );
        ws.cells += (j_hi - j_lo + 1) as u64;
        if row_min > threshold_sq {
            return inf;
        }
        std::mem::swap(&mut ws.prev, &mut ws.curr);
    }
    // Cell (n-1, n-1) sits at slot k.
    ws.prev.as_slice()[k + 1]
}

/// Root of [`ldtw_distance_sq`].
pub fn ldtw_distance(x: &[f64], y: &[f64], k: usize) -> f64 {
    ldtw_distance_sq(x, y, k).sqrt()
}

/// Squared unconstrained DTW distance (Definition 1) between series of
/// arbitrary positive lengths. O(nm) time, O(m) space.
///
/// # Panics
/// Panics if either series is empty.
#[allow(clippy::needless_range_loop)] // explicit i/j indices mirror the DP recurrence
pub fn dtw_distance_sq(x: &[f64], y: &[f64]) -> f64 {
    let (n, m) = (x.len(), y.len());
    assert!(n > 0 && m > 0, "DTW of empty series");
    let inf = f64::INFINITY;
    let mut prev = vec![inf; m];
    let mut curr = vec![inf; m];

    for j in 0..m {
        let d = x[0] - y[j];
        prev[j] = d * d + if j == 0 { 0.0 } else { prev[j - 1] };
    }
    for i in 1..n {
        for j in 0..m {
            let d = x[i] - y[j];
            let best = if j == 0 {
                prev[0]
            } else {
                prev[j].min(prev[j - 1]).min(curr[j - 1])
            };
            curr[j] = d * d + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m - 1]
}

/// Root of [`dtw_distance_sq`].
pub fn dtw_distance(x: &[f64], y: &[f64]) -> f64 {
    dtw_distance_sq(x, y).sqrt()
}

/// One step of a warping path (paired 0-based positions in `x` and `y`).
pub type PathStep = (usize, usize);

/// Unconstrained DTW with full matrix and warping-path recovery; O(nm)
/// space. Intended for analysis and tests rather than bulk search.
///
/// Returns the squared distance and the optimal path from `(0,0)` to
/// `(n−1,m−1)`.
pub fn dtw_with_path(x: &[f64], y: &[f64]) -> (f64, Vec<PathStep>) {
    let (n, m) = (x.len(), y.len());
    assert!(n > 0 && m > 0, "DTW of empty series");
    let inf = f64::INFINITY;
    let mut cost = vec![inf; n * m];
    let at = |i: usize, j: usize| i * m + j;

    for i in 0..n {
        for j in 0..m {
            let d = x[i] - y[j];
            let base = match (i, j) {
                (0, 0) => 0.0,
                (0, _) => cost[at(0, j - 1)],
                (_, 0) => cost[at(i - 1, 0)],
                _ => cost[at(i - 1, j)].min(cost[at(i, j - 1)]).min(cost[at(i - 1, j - 1)]),
            };
            cost[at(i, j)] = d * d + base;
        }
    }

    // Backtrack greedily over the three predecessors.
    let mut path = vec![(n - 1, m - 1)];
    let (mut i, mut j) = (n - 1, m - 1);
    while i > 0 || j > 0 {
        let (pi, pj) = match (i, j) {
            (0, _) => (0, j - 1),
            (_, 0) => (i - 1, 0),
            _ => {
                let diag = cost[at(i - 1, j - 1)];
                let up = cost[at(i - 1, j)];
                let left = cost[at(i, j - 1)];
                if diag <= up && diag <= left {
                    (i - 1, j - 1)
                } else if up <= left {
                    (i - 1, j)
                } else {
                    (i, j - 1)
                }
            }
        };
        path.push((pi, pj));
        i = pi;
        j = pj;
    }
    path.reverse();
    (cost[at(n - 1, m - 1)], path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hum_linalg::vec_ops::sq_euclidean;

    #[test]
    fn band_conversion_matches_paper_formula() {
        // δ = (2k+1)/n: for n = 100, δ = 0.05 → k = 2, δ = 0.1 → k ≈ 4.5 → 5.
        assert_eq!(band_for_warping_width(0.05, 100), 2);
        assert_eq!(band_for_warping_width(0.1, 100), 5);
        assert_eq!(band_for_warping_width(0.0, 100), 0);
        assert_eq!(band_for_warping_width(1.0, 100), 50);
        // n = 256, δ = 0.1 → k = floor/round((25.6-1)/2) = 12.
        assert_eq!(band_for_warping_width(0.1, 256), 12);
    }

    #[test]
    fn zero_band_equals_euclidean() {
        let x = vec![1.0, 3.0, 2.0, 5.0];
        let y = vec![0.0, 3.5, 1.0, 4.0];
        assert!((ldtw_distance_sq(&x, &y, 0) - sq_euclidean(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn full_band_equals_unconstrained_dtw() {
        let x = vec![0.0, 1.0, 2.0, 3.0, 2.0, 1.0];
        let y = vec![0.0, 0.0, 1.0, 2.0, 3.0, 1.0];
        assert!((ldtw_distance_sq(&x, &y, 5) - dtw_distance_sq(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn dtw_absorbs_time_shifts_that_euclidean_cannot() {
        // A bump shifted by one step: DTW realigns it, Euclidean pays.
        let x = vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0];
        let y = vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        assert!(dtw_distance_sq(&x, &y) < 1e-12);
        assert!(sq_euclidean(&x, &y) > 1.0);
        // And a band of 1 suffices for a 1-step shift.
        assert!(ldtw_distance_sq(&x, &y, 1) < 1e-12);
    }

    #[test]
    fn ldtw_is_monotone_decreasing_in_band() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5).sin()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5 + 0.8).sin()).collect();
        let mut last = f64::INFINITY;
        for k in 0..8 {
            let d = ldtw_distance_sq(&x, &y, k);
            assert!(d <= last + 1e-12, "k={k}");
            last = d;
        }
    }

    #[test]
    fn ldtw_lower_bounds_euclidean() {
        let x: Vec<f64> = (0..50).map(|i| ((i * i) % 17) as f64).collect();
        let y: Vec<f64> = (0..50).map(|i| ((i * 3) % 13) as f64).collect();
        for k in [0, 1, 3, 10] {
            assert!(ldtw_distance_sq(&x, &y, k) <= sq_euclidean(&x, &y) + 1e-9);
        }
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64).cos()).collect();
        assert_eq!(dtw_distance(&x, &x), 0.0);
        assert_eq!(ldtw_distance(&x, &x, 3), 0.0);
    }

    #[test]
    fn dtw_is_symmetric() {
        let x = vec![1.0, 5.0, 2.0, 0.0];
        let y = vec![0.5, 4.0, 4.0, 1.0, 0.0];
        assert!((dtw_distance_sq(&x, &y) - dtw_distance_sq(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn dtw_known_small_example() {
        // x = [0,1], y = [0,0,1]: path aligns the two zeros, cost 0.
        assert_eq!(dtw_distance_sq(&[0.0, 1.0], &[0.0, 0.0, 1.0]), 0.0);
        // x = [0,2], y = [1]: every element pairs with 1 → 1 + 1 = 2.
        assert_eq!(dtw_distance_sq(&[0.0, 2.0], &[1.0]), 2.0);
    }

    #[test]
    fn path_is_monotone_continuous_and_anchored() {
        let x: Vec<f64> = (0..12).map(|i| (i as f64 * 0.8).sin()).collect();
        let y: Vec<f64> = (0..9).map(|i| (i as f64 * 1.1).sin()).collect();
        let (d, path) = dtw_with_path(&x, &y);
        assert!((d - dtw_distance_sq(&x, &y)).abs() < 1e-12);
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (11, 8));
        for w in path.windows(2) {
            let (di, dj) = (w[1].0 - w[0].0, w[1].1 - w[0].1);
            assert!(di <= 1 && dj <= 1, "continuity");
            assert!(di + dj >= 1, "monotonicity");
        }
        // Path length bounds: max(n,m) ≤ L ≤ n+m−1.
        assert!(path.len() >= 12 && path.len() <= 20);
    }

    #[test]
    fn path_cost_equals_distance() {
        let x = vec![0.0, 1.0, 3.0, 1.0];
        let y = vec![0.0, 2.0, 3.0, 0.0, 1.0];
        let (d, path) = dtw_with_path(&x, &y);
        let path_cost: f64 = path.iter().map(|&(i, j)| (x[i] - y[j]) * (x[i] - y[j])).sum();
        assert!((d - path_cost).abs() < 1e-12);
    }

    #[test]
    fn band_larger_than_series_is_clamped() {
        let x = vec![1.0, 2.0];
        let y = vec![2.0, 1.0];
        assert_eq!(ldtw_distance_sq(&x, &y, 100), dtw_distance_sq(&x, &y));
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn ldtw_rejects_unequal_lengths() {
        let _ = ldtw_distance_sq(&[1.0], &[1.0, 2.0], 1);
    }
}
