//! Time-series envelopes (paper Definitions 6 and 7).
//!
//! The `k`-envelope of a series brackets every point by the minimum and
//! maximum over a `±k` window. Keogh's lemma (Lemma 2 in the paper) states
//! that the distance from a series `x` to the envelope of `y` lower-bounds
//! the band-`k` DTW distance between `x` and `y` — the foundation of every
//! index transform in [`crate::transform`].

use crate::kernel::KernelMode;

/// The `k`-envelope of a time series: pointwise window minima and maxima.
///
/// ```
/// use hum_core::Envelope;
/// let y = [1.0, 5.0, 2.0, 8.0];
/// let env = Envelope::compute(&y, 1);
/// assert_eq!(env.upper(), &[5.0, 5.0, 8.0, 8.0]);
/// assert_eq!(env.lower(), &[1.0, 1.0, 2.0, 2.0]);
/// assert!(env.contains(&y));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Envelope {
    /// Computes `Env_k(x)` with sliding-window minima/maxima via monotonic
    /// deques — O(n) regardless of `k`.
    ///
    /// # Panics
    /// Panics if `x` is empty.
    pub fn compute(x: &[f64], k: usize) -> Self {
        assert!(!x.is_empty(), "envelope of empty series");
        Envelope { lower: sliding_extreme(x, k, false), upper: sliding_extreme(x, k, true) }
    }

    /// Builds an envelope from explicit bounds.
    ///
    /// # Panics
    /// Panics if lengths differ, bounds are empty, or any `lower > upper`.
    pub fn from_bounds(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bound lengths must agree");
        assert!(!lower.is_empty(), "empty envelope");
        for (l, u) in lower.iter().zip(&upper) {
            assert!(l <= u, "lower bound exceeds upper bound");
        }
        Envelope { lower, upper }
    }

    /// The degenerate envelope equal to the series itself (`k = 0`).
    pub fn degenerate(x: &[f64]) -> Self {
        Envelope { lower: x.to_vec(), upper: x.to_vec() }
    }

    /// Series length.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// `true` if the envelope is empty (never constructible via the public
    /// API; kept for completeness).
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Lower bound series.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bound series.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// `true` if `z` lies within the envelope pointwise (`z ∈ e`).
    pub fn contains(&self, z: &[f64]) -> bool {
        z.len() == self.len()
            && z.iter()
                .zip(self.lower.iter().zip(&self.upper))
                .all(|(v, (l, u))| l <= v && v <= u)
    }

    /// Squared distance from a series to this envelope (Definition 7):
    /// `min_{z ∈ e} D²(x, z)`, which accumulates only the excursions of `x`
    /// outside the band. This is the LB lower bound of Lemma 2.
    ///
    /// Computed by the blocked accumulation kernel ([`crate::kernel::lb`]):
    /// four lane partial sums combined pairwise, the same bits in every
    /// [`KernelMode`].
    ///
    /// # Panics
    /// Panics if `x.len() != self.len()`.
    pub fn distance_sq(&self, x: &[f64]) -> f64 {
        self.distance_sq_mode(x, KernelMode::default())
    }

    /// [`Envelope::distance_sq`] with an explicit [`KernelMode`].
    ///
    /// # Panics
    /// Panics if `x.len() != self.len()`.
    pub fn distance_sq_mode(&self, x: &[f64], mode: KernelMode) -> f64 {
        assert_eq!(x.len(), self.len(), "length mismatch");
        crate::kernel::lb::env_lb_sq(mode, &self.lower, &self.upper, x)
    }

    /// Root of [`Envelope::distance_sq`].
    pub fn distance(&self, x: &[f64]) -> f64 {
        self.distance_sq(x).sqrt()
    }

    /// Early-abandoning variant of [`Envelope::distance_sq`]: identical
    /// accumulation, but returns `f64::INFINITY` once the running sum
    /// exceeds `threshold_sq` (checked at lane-block granularity — squared
    /// excursions are non-negative, so the block check abandons exactly
    /// when the full sum exceeds the threshold). The result is
    /// `> threshold_sq` exactly when the full distance is, and equals it
    /// whenever it is `≤ threshold_sq`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.len()`.
    pub fn distance_sq_bounded(&self, x: &[f64], threshold_sq: f64) -> f64 {
        self.distance_sq_bounded_mode(x, threshold_sq, KernelMode::default())
    }

    /// [`Envelope::distance_sq_bounded`] with an explicit [`KernelMode`].
    ///
    /// # Panics
    /// Panics if `x.len() != self.len()`.
    pub fn distance_sq_bounded_mode(&self, x: &[f64], threshold_sq: f64, mode: KernelMode) -> f64 {
        assert_eq!(x.len(), self.len(), "length mismatch");
        crate::kernel::lb::env_lb_sq_bounded(mode, &self.lower, &self.upper, x, threshold_sq)
    }

    /// Writes the pointwise projection (clamp) of `x` onto this envelope into
    /// `out`: the member of the envelope closest to `x` in any `L_p` norm.
    ///
    /// # Panics
    /// Panics if `x.len() != self.len()`.
    pub fn clamp_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.len(), "length mismatch");
        out.clear();
        out.extend(
            x.iter()
                .zip(self.lower.iter().zip(&self.upper))
                .map(|(v, (l, u))| v.clamp(*l, *u)),
        );
    }

    /// Recomputes this envelope in place as `Env_k(x)`, reusing the bound
    /// vectors' allocations (the per-candidate path of [`lb_improved_sq`]).
    ///
    /// # Panics
    /// Panics if `x` is empty.
    pub fn recompute(&mut self, x: &[f64], k: usize) {
        assert!(!x.is_empty(), "envelope of empty series");
        sliding_extreme_into(x, k, false, &mut self.lower);
        sliding_extreme_into(x, k, true, &mut self.upper);
    }
}

/// Reusable buffers for [`lb_improved_sq`] / [`lb_improved_tail_sq`]: the
/// projection of a candidate onto the query envelope and that projection's
/// own envelope.
#[derive(Debug, Clone)]
pub struct LbScratch {
    projection: Vec<f64>,
    env: Envelope,
}

impl LbScratch {
    /// Fresh scratch space; buffers grow on first use.
    pub fn new() -> Self {
        LbScratch { projection: Vec::new(), env: Envelope::degenerate(&[0.0]) }
    }
}

impl Default for LbScratch {
    fn default() -> Self {
        LbScratch::new()
    }
}

/// The second pass of Lemire's two-pass `LB_Improved` (squared): the distance
/// from `query` to the `k`-envelope of the projection of `candidate` onto
/// `query_env = Env_k(query)`.
///
/// Adding this to `query_env.distance_sq(candidate)` (the classic Keogh
/// bound, Lemma 2) still lower-bounds the squared band-`k` DTW distance
/// between `query` and `candidate`: the projection `h` absorbs exactly the
/// excursions the first pass already charged for, and any warping path must
/// additionally pay for the query's excursions outside `Env_k(h)`.
///
/// Early-abandons against `budget_sq` (what is left of the caller's
/// threshold after the first pass), returning `f64::INFINITY` once exceeded.
///
/// # Panics
/// Panics on length mismatches between `query`, `query_env` and `candidate`.
pub fn lb_improved_tail_sq(
    query: &[f64],
    query_env: &Envelope,
    candidate: &[f64],
    k: usize,
    budget_sq: f64,
    scratch: &mut LbScratch,
) -> f64 {
    lb_improved_tail_sq_mode(query, query_env, candidate, k, budget_sq, scratch, KernelMode::default())
}

/// [`lb_improved_tail_sq`] with an explicit [`KernelMode`] for the
/// second-pass accumulation.
///
/// # Panics
/// Panics on length mismatches between `query`, `query_env` and `candidate`.
#[allow(clippy::too_many_arguments)]
pub fn lb_improved_tail_sq_mode(
    query: &[f64],
    query_env: &Envelope,
    candidate: &[f64],
    k: usize,
    budget_sq: f64,
    scratch: &mut LbScratch,
    mode: KernelMode,
) -> f64 {
    query_env.clamp_into(candidate, &mut scratch.projection);
    scratch.env.recompute(&scratch.projection, k);
    scratch.env.distance_sq_bounded_mode(query, budget_sq, mode)
}

/// Lemire's two-pass `LB_Improved` (squared): `LB_Keogh²(candidate, query)`
/// plus the [`lb_improved_tail_sq`] second pass. Sandwiched between the
/// classic envelope bound and the true distance:
///
/// ```text
/// Env_k(q).distance_sq(s)  ≤  lb_improved_sq(q, s, k)  ≤  ldtw_distance_sq(q, s, k)
/// ```
///
/// # Panics
/// Panics if the series lengths differ or are zero.
pub fn lb_improved_sq(query: &[f64], candidate: &[f64], k: usize) -> f64 {
    let env = Envelope::compute(query, k);
    let lb1 = env.distance_sq(candidate);
    lb1 + lb_improved_tail_sq(query, &env, candidate, k, f64::INFINITY, &mut LbScratch::new())
}

/// Sliding-window maximum (or minimum) with window `[i−k, i+k]`, using a
/// monotonic deque of indices.
fn sliding_extreme(x: &[f64], k: usize, want_max: bool) -> Vec<f64> {
    let mut out = Vec::with_capacity(x.len());
    sliding_extreme_into(x, k, want_max, &mut out);
    out
}

/// [`sliding_extreme`] writing into a caller-provided buffer.
fn sliding_extreme_into(x: &[f64], k: usize, want_max: bool, out: &mut Vec<f64>) {
    let n = x.len();
    out.clear();
    out.reserve(n);
    let mut deque: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let better = |a: f64, b: f64| if want_max { a >= b } else { a <= b };

    // Pre-fill the first window [0, k].
    for j in 0..=k.min(n - 1) {
        while let Some(&back) = deque.back() {
            if better(x[j], x[back]) {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back(j);
    }
    for i in 0..n {
        // Window for i is [i-k, i+k]; add the incoming right edge.
        let incoming = i + k;
        if i > 0 && incoming < n {
            while let Some(&back) = deque.back() {
                if better(x[incoming], x[back]) {
                    deque.pop_back();
                } else {
                    break;
                }
            }
            deque.push_back(incoming);
        }
        // Expire the left edge.
        while let Some(&front) = deque.front() {
            if front + k < i {
                deque.pop_front();
            } else {
                break;
            }
        }
        out.push(x[*deque.front().expect("window is never empty")]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::ldtw_distance_sq;

    /// Reference O(nk) envelope for cross-checking the deque version.
    fn naive_envelope(x: &[f64], k: usize) -> Envelope {
        let n = x.len();
        let mut lower = Vec::with_capacity(n);
        let mut upper = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(k);
            let hi = (i + k).min(n - 1);
            let window = &x[lo..=hi];
            lower.push(window.iter().cloned().fold(f64::INFINITY, f64::min));
            upper.push(window.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
        }
        Envelope::from_bounds(lower, upper)
    }

    fn wiggly(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.9).sin() * ((i % 5) as f64 + 1.0)).collect()
    }

    #[test]
    fn deque_envelope_matches_naive() {
        let x = wiggly(200);
        for k in [0, 1, 2, 5, 17, 199, 500] {
            assert_eq!(Envelope::compute(&x, k), naive_envelope(&x, k), "k={k}");
        }
    }

    #[test]
    fn zero_k_envelope_is_the_series() {
        let x = wiggly(30);
        let e = Envelope::compute(&x, 0);
        assert_eq!(e.lower(), &x[..]);
        assert_eq!(e.upper(), &x[..]);
        assert_eq!(e, Envelope::degenerate(&x));
    }

    #[test]
    fn envelope_contains_the_series() {
        let x = wiggly(64);
        for k in [0, 1, 4, 9] {
            assert!(Envelope::compute(&x, k).contains(&x));
        }
    }

    #[test]
    fn envelope_contains_all_banded_warps() {
        // Any y[i±j] with |j| ≤ k lies inside Env_k(y) at position i; check
        // via shifted copies.
        let y = wiggly(50);
        let k = 3;
        let e = Envelope::compute(&y, k);
        for shift in 1..=k {
            let shifted: Vec<f64> =
                (0..y.len()).map(|i| y[(i + shift).min(y.len() - 1)]).collect();
            assert!(e.contains(&shifted), "shift {shift}");
        }
    }

    #[test]
    fn distance_is_zero_inside_positive_outside() {
        let x = wiggly(40);
        let e = Envelope::compute(&x, 2);
        assert_eq!(e.distance_sq(&x), 0.0);
        let mut far = x.clone();
        far[10] += 100.0;
        assert!(e.distance_sq(&far) > 0.0);
    }

    #[test]
    fn lemma2_envelope_distance_lower_bounds_ldtw() {
        let x = wiggly(128);
        let y: Vec<f64> = (0..128).map(|i| (i as f64 * 0.7).cos() * 2.0).collect();
        for k in [0, 1, 3, 8, 20] {
            let lb = Envelope::compute(&y, k).distance_sq(&x);
            let d = ldtw_distance_sq(&x, &y, k);
            assert!(lb <= d + 1e-9, "k={k}: {lb} > {d}");
        }
    }

    #[test]
    fn envelope_widens_with_k() {
        let x = wiggly(60);
        let mut prev = Envelope::compute(&x, 0);
        for k in 1..10 {
            let e = Envelope::compute(&x, k);
            for i in 0..x.len() {
                assert!(e.lower()[i] <= prev.lower()[i]);
                assert!(e.upper()[i] >= prev.upper()[i]);
            }
            prev = e;
        }
    }

    #[test]
    fn distance_decreases_as_envelope_widens() {
        let x = wiggly(80);
        let q: Vec<f64> = (0..80).map(|i| (i as f64 * 0.3).cos() * 3.0).collect();
        let mut last = f64::INFINITY;
        for k in 0..10 {
            let d = Envelope::compute(&x, k).distance_sq(&q);
            assert!(d <= last + 1e-12);
            last = d;
        }
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn inverted_bounds_rejected() {
        let _ = Envelope::from_bounds(vec![2.0], vec![1.0]);
    }
}
