//! Build-time transform planning: pick the envelope transform empirically
//! per corpus instead of hard-coding one.
//!
//! The paper's Figure 7 shows that New_PAA, Keogh_PAA, DFT, and DWT trade
//! lower-bound tightness differently by workload; at large corpus sizes
//! that choice dominates the candidate ratio and therefore throughput. The
//! planner here makes the choice measurable and deterministic: it draws a
//! seeded sample of corpus series, measures each candidate `(family,
//! dimension)` pair's mean feature-space tightness (§5.2, reusing
//! [`crate::tightness`]) and an estimated candidate ratio on the same
//! sample, scores everything under a simple cost model (tightness vs.
//! index width vs. projection cost), and emits a [`TransformPlan`]
//! carrying both the decision and the evidence that justified it.
//!
//! Selection is **tightness-first**: the chosen candidate's measured mean
//! tightness is ≥ that of every candidate it rejected on the same sample;
//! exact ties are broken by the cost-model score, and any remaining ties
//! by the deterministic family/dimension enumeration order. Given the same
//! series, band, grid, and [`PlannerOptions`] the planner always returns
//! the same plan — callers persist the plan next to the index so a
//! reopened store can never silently re-plan.
//!
//! SVD is deliberately **not** a candidate: its basis is fitted to a
//! corpus snapshot, so the resulting transform cannot be reconstructed
//! from a `(family, dimension)` plan alone, and the segmented store
//! rejects it for the same reason.

use crate::envelope::Envelope;
use crate::tightness::{sampled_pairs, splitmix64, tightness};
use crate::transform::dft::Dft;
use crate::transform::dwt::Dwt;
use crate::transform::paa::{KeoghPaa, NewPaa};
use crate::transform::{feature_lower_bound, EnvelopeTransform};

/// Relative weight of index width (`dims / input_len`) in the cost-model
/// score. Small on purpose: the score only decides exact-tightness ties.
const WIDTH_WEIGHT: f64 = 0.05;

/// Relative weight of normalized projection cost in the cost-model score.
const PROJECTION_WEIGHT: f64 = 0.05;

/// Salt mixed into the seed for pair sampling so the series sample and the
/// pair sample draw from independent streams.
const PAIR_SALT: u64 = 0x70_61_69_72; // "pair"

/// The plannable transform families. Each can be rebuilt from
/// `(family, input_len, dims)` alone, which is what makes a persisted
/// [`TransformPlan`] sufficient to reopen an index bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanFamily {
    /// The paper's container-invariant PAA variant (its best performer).
    NewPaa,
    /// Keogh's original PAA lower bound.
    KeoghPaa,
    /// Truncated Fourier coefficients.
    Dft,
    /// Truncated Haar wavelet coefficients (needs a power-of-two length).
    Dwt,
}

impl PlanFamily {
    /// Every plannable family, in deterministic enumeration (and
    /// tie-breaking) order.
    pub const ALL: [PlanFamily; 4] =
        [PlanFamily::NewPaa, PlanFamily::KeoghPaa, PlanFamily::Dft, PlanFamily::Dwt];

    /// Stable lowercase name, used in reports and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            PlanFamily::NewPaa => "new_paa",
            PlanFamily::KeoghPaa => "keogh_paa",
            PlanFamily::Dft => "dft",
            PlanFamily::Dwt => "dwt",
        }
    }

    /// Whether this family's constructor accepts `(input_len, dims)`:
    /// the PAA variants need `dims` to divide the length, DWT needs a
    /// power-of-two length, and nothing may expand dimensionality.
    pub fn supports(self, input_len: usize, dims: usize) -> bool {
        if dims == 0 || input_len == 0 || dims > input_len {
            return false;
        }
        match self {
            PlanFamily::NewPaa | PlanFamily::KeoghPaa => input_len.is_multiple_of(dims),
            PlanFamily::Dft => true,
            PlanFamily::Dwt => input_len.is_power_of_two(),
        }
    }

    /// Builds the transform, or `None` when [`PlanFamily::supports`] says
    /// the shape is invalid (the constructors themselves panic on invalid
    /// shapes; this wrapper is the non-panicking gate the planner uses).
    pub fn build(
        self,
        input_len: usize,
        dims: usize,
    ) -> Option<Box<dyn EnvelopeTransform + Send + Sync>> {
        if !self.supports(input_len, dims) {
            return None;
        }
        Some(match self {
            PlanFamily::NewPaa => Box::new(NewPaa::new(input_len, dims)),
            PlanFamily::KeoghPaa => Box::new(KeoghPaa::new(input_len, dims)),
            PlanFamily::Dft => Box::new(Dft::new(input_len, dims)),
            PlanFamily::Dwt => Box::new(Dwt::new(input_len, dims)),
        })
    }

    /// Analytic cost of projecting one series, in floating-point
    /// operations, normalized by `input_len²` so families are comparable
    /// across dimension grids. Both PAA variants are frame sums (`O(n)`);
    /// DFT and DWT are dense row products (`O(n·d)`).
    pub fn projection_cost(self, input_len: usize, dims: usize) -> f64 {
        let n = input_len as f64;
        let flops = match self {
            PlanFamily::NewPaa | PlanFamily::KeoghPaa => n,
            PlanFamily::Dft | PlanFamily::Dwt => n * dims as f64,
        };
        flops / (n * n).max(1.0)
    }
}

/// Knobs for the planner's seeded sampling. All fields are plain scalars
/// so the options can ride in a `Copy` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerOptions {
    /// Maximum number of corpus series drawn (seeded) into the measurement
    /// sample.
    pub sample: usize,
    /// Maximum number of ordered series pairs measured per candidate (see
    /// [`crate::tightness::sampled_pairs`]).
    pub pair_cap: usize,
    /// Seed for both the series and the pair sample.
    pub seed: u64,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        // 64 series / 2048 pairs keeps the planner a sub-second step even
        // at a 10^6-melody build while measuring every ordered pair of the
        // default sample (64·63 = 4032 > 2048 draws a representative half).
        PlannerOptions { sample: 64, pair_cap: 2048, seed: 2003 }
    }
}

/// One measured `(family, dims)` candidate: the evidence a plan keeps for
/// every option it considered, chosen or rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEvidence {
    /// Transform family measured.
    pub family: PlanFamily,
    /// Reduced dimension measured.
    pub dims: usize,
    /// Mean feature-space tightness over the pair sample (§5.2).
    pub mean_tightness: f64,
    /// Estimated 1-NN candidate ratio on the sample: for each sampled
    /// query, the fraction of sampled partners whose feature lower bound
    /// does not exceed the query's true nearest-neighbor distance (the
    /// fraction of the corpus a k-NN search at that radius must verify).
    pub est_candidate_ratio: f64,
    /// Normalized projection cost ([`PlanFamily::projection_cost`]).
    pub projection_cost: f64,
    /// Cost-model score: `tightness − 0.05·width − 0.05·projection_cost`.
    /// Only consulted to break exact tightness ties.
    pub score: f64,
}

/// The planner's decision plus the evidence that justified it. Persisted
/// verbatim next to the index (snapshot section / store manifest) so a
/// reopened index can be checked against the plan instead of re-planned.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformPlan {
    /// Chosen family.
    pub family: PlanFamily,
    /// Chosen reduced dimension.
    pub dims: usize,
    /// Series length the plan was measured at (and is only valid for).
    pub input_len: usize,
    /// DTW band the tightness was measured at.
    pub band: usize,
    /// Seed the sample was drawn with.
    pub seed: u64,
    /// Number of series actually measured.
    pub sample_len: usize,
    /// Number of ordered pairs actually measured.
    pub pairs: usize,
    /// The chosen candidate's mean tightness (copied out of `candidates`
    /// for direct access).
    pub mean_tightness: f64,
    /// The chosen candidate's estimated candidate ratio.
    pub est_candidate_ratio: f64,
    /// The chosen candidate's cost-model score.
    pub score: f64,
    /// Every measured candidate, in deterministic enumeration order.
    pub candidates: Vec<CandidateEvidence>,
}

impl TransformPlan {
    /// The evidence row of the chosen `(family, dims)` pair, if present
    /// (always present for planner-produced plans; a deserialized plan is
    /// validated for it on read).
    pub fn chosen(&self) -> Option<&CandidateEvidence> {
        self.candidates.iter().find(|c| c.family == self.family && c.dims == self.dims)
    }

    /// One-line human rendering of the decision, used by the CLI.
    pub fn summary(&self) -> String {
        format!(
            "{} d={} (tightness {:.4}, est. candidate ratio {:.4}, score {:.4}; \
             {} series / {} pairs, band {}, seed {})",
            self.family.name(),
            self.dims,
            self.mean_tightness,
            self.est_candidate_ratio,
            self.score,
            self.sample_len,
            self.pairs,
            self.band,
            self.seed
        )
    }
}

/// Why the planner could not produce a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No corpus series were provided to measure.
    EmptySample,
    /// No `(family, dims)` candidate in the grid is valid for the series
    /// length (e.g. an empty grid, or every dimension exceeds the length).
    EmptyGrid,
    /// The sampled series do not all share one length.
    MismatchedLength {
        /// Length of the first series.
        expected: usize,
        /// The offending length.
        got: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EmptySample => write!(f, "transform planning needs at least one series"),
            PlanError::EmptyGrid => {
                write!(f, "no transform family supports any dimension in the planner grid")
            }
            PlanError::MismatchedLength { expected, got } => write!(
                f,
                "transform planning needs equal-length series (saw {expected} and {got})"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans the transform for a corpus: draws a seeded sample of at most
/// `options.sample` series, measures every valid `(family, dims ∈ grid)`
/// candidate's mean tightness and estimated candidate ratio on a shared
/// pair sample, and returns the tightness-maximizing candidate (cost-model
/// score breaks exact ties) together with all the evidence.
///
/// The true banded DTW distance of each sampled pair is computed **once**
/// and reused across every candidate — only the cheap feature lower bound
/// is per-candidate — so adding grid points stays inexpensive.
///
/// Deterministic: equal `(series, band, grid, options)` always produce an
/// identical plan, regardless of platform or thread count.
///
/// # Errors
/// [`PlanError::EmptySample`] when `series` is empty,
/// [`PlanError::MismatchedLength`] when the series disagree on length, and
/// [`PlanError::EmptyGrid`] when no family supports any grid dimension at
/// that length.
pub fn plan_transform(
    series: &[Vec<f64>],
    band: usize,
    dims_grid: &[usize],
    options: &PlannerOptions,
) -> Result<TransformPlan, PlanError> {
    let Some(first) = series.first() else {
        return Err(PlanError::EmptySample);
    };
    let input_len = first.len();
    for s in series {
        if s.len() != input_len {
            return Err(PlanError::MismatchedLength { expected: input_len, got: s.len() });
        }
    }

    let mut grid: Vec<usize> = dims_grid.to_vec();
    grid.sort_unstable();
    grid.dedup();

    let sample = sample_indices(series.len(), options.sample.max(1), options.seed);
    let sampled: Vec<&[f64]> = sample.iter().map(|&i| series[i].as_slice()).collect();
    let pairs = sampled_pairs(sampled.len(), options.pair_cap, options.seed ^ PAIR_SALT);

    // The expensive, transform-independent groundwork: envelopes per
    // sampled series and the true banded DTW distance per sampled pair.
    let envelopes: Vec<Envelope> =
        sampled.iter().map(|s| Envelope::compute(s, band)).collect();
    let true_distances: Vec<f64> = pairs
        .iter()
        .map(|&(i, j)| crate::dtw::ldtw_distance(sampled[i], sampled[j], band))
        .collect();
    // Per query index, its smallest true distance over the pair sample —
    // the 1-NN radius the candidate-ratio estimate prunes against.
    let mut nn_radius = vec![f64::INFINITY; sampled.len()];
    for (&(i, _), &d) in pairs.iter().zip(&true_distances) {
        if d < nn_radius[i] {
            nn_radius[i] = d;
        }
    }

    let mut candidates = Vec::new();
    for family in PlanFamily::ALL {
        for &dims in &grid {
            let Some(transform) = family.build(input_len, dims) else {
                continue;
            };
            let features: Vec<Vec<f64>> =
                sampled.iter().map(|s| transform.project(s)).collect();
            let rects: Vec<_> = envelopes.iter().map(|e| transform.project_envelope(e)).collect();

            let mut tightness_sum = 0.0;
            let mut admitted = vec![0usize; sampled.len()];
            let mut partners = vec![0usize; sampled.len()];
            for (&(i, j), &true_d) in pairs.iter().zip(&true_distances) {
                // Same orientation as `transform_tightness`: envelope on
                // the partner `j`, features of the query `i`.
                let lb = feature_lower_bound(&rects[j], &features[i]);
                tightness_sum += tightness(lb, true_d);
                partners[i] += 1;
                if lb <= nn_radius[i] {
                    admitted[i] += 1;
                }
            }
            let mean_tightness = if pairs.is_empty() {
                0.0
            } else {
                tightness_sum / pairs.len() as f64
            };
            let mut ratio_sum = 0.0;
            let mut queries = 0usize;
            for (&a, &p) in admitted.iter().zip(&partners) {
                if p > 0 {
                    ratio_sum += a as f64 / p as f64;
                    queries += 1;
                }
            }
            // With no measurable pairs every candidate scans everything.
            let est_candidate_ratio =
                if queries == 0 { 1.0 } else { ratio_sum / queries as f64 };

            let projection_cost = family.projection_cost(input_len, dims);
            let score = mean_tightness
                - WIDTH_WEIGHT * dims as f64 / input_len as f64
                - PROJECTION_WEIGHT * projection_cost;
            candidates.push(CandidateEvidence {
                family,
                dims,
                mean_tightness,
                est_candidate_ratio,
                projection_cost,
                score,
            });
        }
    }

    // Tightness-first selection; the cost model only breaks exact ties,
    // and enumeration order breaks anything left, so the choice is total
    // and deterministic.
    let mut best: Option<&CandidateEvidence> = None;
    for c in &candidates {
        let better = match best {
            None => true,
            Some(b) => {
                c.mean_tightness > b.mean_tightness
                    || (c.mean_tightness == b.mean_tightness && c.score > b.score)
            }
        };
        if better {
            best = Some(c);
        }
    }
    let Some(chosen) = best else {
        return Err(PlanError::EmptyGrid);
    };

    Ok(TransformPlan {
        family: chosen.family,
        dims: chosen.dims,
        input_len,
        band,
        seed: options.seed,
        sample_len: sampled.len(),
        pairs: pairs.len(),
        mean_tightness: chosen.mean_tightness,
        est_candidate_ratio: chosen.est_candidate_ratio,
        score: chosen.score,
        candidates: candidates.clone(),
    })
}

/// Seeded sample of `min(cap, n)` distinct indices from `0..n`, in draw
/// order: a partial Fisher–Yates shuffle over a splitmix64 stream, so the
/// same `(n, cap, seed)` always selects the same series.
fn sample_indices(n: usize, cap: usize, seed: u64) -> Vec<usize> {
    if cap >= n {
        return (0..n).collect();
    }
    let mut indices: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for slot in 0..cap {
        let pick = slot + (splitmix64(&mut state) % (n - slot) as u64) as usize;
        indices.swap(slot, pick);
    }
    indices.truncate(cap);
    indices
}

/// Records a plan's decision into the observability registry: one run, the
/// sample and pair counts it measured, and the chosen family / dimension /
/// tightness as high-water gauges (see [`crate::obs::Metric`]).
pub fn record_plan(metrics: &crate::obs::MetricsSink, plan: &TransformPlan) {
    use crate::obs::Metric;
    metrics.add(Metric::PlannerRuns, 1);
    metrics.add(Metric::PlannerSampledSeries, plan.sample_len as u64);
    metrics.add(Metric::PlannerSampledPairs, plan.pairs as u64);
    metrics.record_max(Metric::PlannerChosenFamilyTag, plan.family as u64 + 1);
    metrics.record_max(Metric::PlannerChosenDims, plan.dims as u64);
    metrics.record_max(
        Metric::PlannerTightnessPpm,
        (plan.mean_tightness.clamp(0.0, 1.0) * 1e6).round() as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tightness::mean_transform_tightness_sampled;

    fn corpus(n: usize, len: usize) -> Vec<Vec<f64>> {
        let mut state = 0xC0FFEEu64;
        (0..n)
            .map(|s| {
                let drift = (splitmix64(&mut state) % 7) as f64 * 0.1;
                (0..len)
                    .map(|t| {
                        (t as f64 * (0.07 + 0.015 * (s % 5) as f64)).sin() * 2.0
                            + drift * t as f64 / len as f64
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn planner_is_deterministic_and_tightness_first() {
        let series = corpus(40, 64);
        let grid = [4usize, 8, 16];
        let options = PlannerOptions { sample: 24, pair_cap: 300, seed: 11 };
        let a = plan_transform(&series, 4, &grid, &options).unwrap();
        let b = plan_transform(&series, 4, &grid, &options).unwrap();
        assert_eq!(a, b, "same inputs must give the identical plan");
        assert!(!a.candidates.is_empty());
        let chosen = a.chosen().expect("chosen candidate must be in the evidence");
        assert_eq!(chosen.mean_tightness, a.mean_tightness);
        for c in &a.candidates {
            assert!(
                a.mean_tightness >= c.mean_tightness,
                "rejected {}/d{} is tighter: {} > {}",
                c.family.name(),
                c.dims,
                c.mean_tightness,
                a.mean_tightness
            );
            assert!((0.0..=1.0).contains(&c.mean_tightness));
            assert!((0.0..=1.0).contains(&c.est_candidate_ratio));
            assert!(c.score.is_finite());
        }
    }

    #[test]
    fn tightness_matches_the_sampled_estimator() {
        // The planner's per-candidate tightness must agree with the public
        // capped estimator when fed the same sample, pairs, and seed.
        let series = corpus(20, 64);
        let options = PlannerOptions { sample: 20, pair_cap: 150, seed: 77 };
        let plan = plan_transform(&series, 3, &[8], &options).unwrap();
        for c in &plan.candidates {
            let Some(t) = c.family.build(64, c.dims) else { continue };
            let direct = mean_transform_tightness_sampled(
                &*t,
                &series,
                3,
                options.pair_cap,
                options.seed ^ super::PAIR_SALT,
            );
            assert!(
                (direct - c.mean_tightness).abs() < 1e-12,
                "{}: planner {} vs estimator {direct}",
                c.family.name(),
                c.mean_tightness
            );
        }
    }

    #[test]
    fn seed_changes_the_sample_but_not_validity() {
        let series = corpus(60, 64);
        let grid = [8usize];
        let a = plan_transform(&series, 4, &grid, &PlannerOptions { seed: 1, ..Default::default() })
            .unwrap();
        let b = plan_transform(&series, 4, &grid, &PlannerOptions { seed: 2, ..Default::default() })
            .unwrap();
        // Different seeds measure different pairs; the evidence shifts even
        // if the winner usually does not.
        assert!(a.candidates.len() == b.candidates.len());
        assert!(a.sample_len == 60 && b.sample_len == 60, "cap 64 covers all 60 series");
    }

    #[test]
    fn grid_is_filtered_per_family() {
        // length 60: not a power of two (no DWT), 8 does not divide it (no
        // PAA at 8), DFT takes anything ≤ length.
        let series = corpus(10, 60);
        let plan = plan_transform(&series, 2, &[6, 8], &PlannerOptions::default()).unwrap();
        for c in &plan.candidates {
            assert!(c.family.supports(60, c.dims));
            assert_ne!(c.family, PlanFamily::Dwt);
        }
        assert!(plan.candidates.iter().any(|c| c.family == PlanFamily::Dft && c.dims == 8));
        assert!(!plan
            .candidates
            .iter()
            .any(|c| c.family == PlanFamily::NewPaa && c.dims == 8));
    }

    #[test]
    fn typed_errors_never_panics() {
        assert_eq!(
            plan_transform(&[], 2, &[4], &PlannerOptions::default()),
            Err(PlanError::EmptySample)
        );
        let series = corpus(5, 64);
        assert_eq!(
            plan_transform(&series, 2, &[], &PlannerOptions::default()),
            Err(PlanError::EmptyGrid)
        );
        assert_eq!(
            plan_transform(&series, 2, &[1000], &PlannerOptions::default()),
            Err(PlanError::EmptyGrid)
        );
        let mut ragged = corpus(3, 64);
        ragged.push(vec![0.0; 32]);
        assert_eq!(
            plan_transform(&ragged, 2, &[4], &PlannerOptions::default()),
            Err(PlanError::MismatchedLength { expected: 64, got: 32 })
        );
        // A single series has no pairs: every candidate ties at zero
        // tightness and the cost model must still pick deterministically.
        let one = corpus(1, 64);
        let plan = plan_transform(&one, 2, &[4, 8], &PlannerOptions::default()).unwrap();
        assert_eq!(plan.pairs, 0);
        assert_eq!(plan.mean_tightness, 0.0);
        // Cheapest width wins on an all-zero tie: smallest dims, PAA first.
        assert_eq!((plan.family, plan.dims), (PlanFamily::NewPaa, 4));
    }

    #[test]
    fn sample_indices_are_distinct_and_seeded() {
        let a = sample_indices(100, 10, 5);
        let b = sample_indices(100, 10, 5);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "sampled indices must be distinct");
        assert!(a.iter().all(|&i| i < 100));
        assert_eq!(sample_indices(5, 64, 9), vec![0, 1, 2, 3, 4]);
        assert_ne!(sample_indices(100, 10, 5), sample_indices(100, 10, 6));
    }

    #[test]
    fn record_plan_populates_the_registry() {
        use crate::obs::{Metric, MetricsRegistry, MetricsSink};
        let series = corpus(12, 64);
        let plan = plan_transform(&series, 3, &[8], &PlannerOptions::default()).unwrap();
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        record_plan(&MetricsSink::Enabled(registry.clone()), &plan);
        assert_eq!(registry.get(Metric::PlannerRuns), 1);
        assert_eq!(registry.get(Metric::PlannerSampledSeries), 12);
        assert!(registry.get(Metric::PlannerSampledPairs) > 0);
        assert_eq!(registry.get(Metric::PlannerChosenDims), 8);
        assert!(registry.get(Metric::PlannerChosenFamilyTag) >= 1);
        let ppm = registry.get(Metric::PlannerTightnessPpm);
        assert!(ppm <= 1_000_000);
    }
}
