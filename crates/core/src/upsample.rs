//! `w`-upsampling and Uniform Time Warping (paper §4.1).
//!
//! Uniform Time Warping compares two series of different lengths by
//! stretching both to a common length — the generalization of *time scaling*
//! that makes the similarity measure tempo-invariant.

/// The `w`-upsampling of a series (Definition 3): each value repeated `w`
/// times.
pub fn upsample(x: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "upsampling factor must be positive");
    let mut out = Vec::with_capacity(x.len() * w);
    for &v in x {
        out.extend(std::iter::repeat_n(v, w));
    }
    out
}

/// Squared Uniform Time Warping distance between series of lengths `n`, `m`
/// (Definition 2): both axes are stretched to `n·m` and compared pointwise,
/// normalized by `n·m`.
pub fn utw_distance_sq(x: &[f64], y: &[f64]) -> f64 {
    let (n, m) = (x.len(), y.len());
    assert!(n > 0 && m > 0, "UTW distance of empty series");
    let mut acc = 0.0;
    // Per Definition 2 with 1-based indices: element i of the stretched axis
    // reads x[ceil(i/m)] and y[ceil(i/n)]; equivalently, with 0-based t,
    // x[t / m] and y[t / n].
    for t in 0..n * m {
        let d = x[t / m] - y[t / n];
        acc += d * d;
    }
    acc / (n * m) as f64
}

/// Root of [`utw_distance_sq`].
pub fn utw_distance(x: &[f64], y: &[f64]) -> f64 {
    utw_distance_sq(x, y).sqrt()
}

/// Resamples a series to `target` points.
///
/// This is the UTW normal form (§4.1) in resampled rather than fully
/// upsampled storage: sample `t` of the output reads the input value whose
/// stretched interval covers it (`x[⌊t·n/target⌋]`). When `target` is a
/// multiple of `n` this is exactly the `(target/n)`-upsampling `U_w(x)`;
/// otherwise it is the nearest-previous-value resampling of the upsampled
/// series, introducing no new values.
pub fn resample(x: &[f64], target: usize) -> Vec<f64> {
    assert!(!x.is_empty(), "cannot resample an empty series");
    assert!(target > 0, "target length must be positive");
    let n = x.len();
    (0..target).map(|t| x[(t * n) / target]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hum_linalg::vec_ops::sq_euclidean;

    #[test]
    fn upsample_repeats_values() {
        assert_eq!(upsample(&[1.0, 2.0], 3), vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        assert_eq!(upsample(&[5.0], 1), vec![5.0]);
    }

    #[test]
    fn utw_distance_of_identical_shapes_at_different_tempi_is_zero() {
        // y is x at double tempo.
        let x = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let y = vec![1.0, 2.0, 3.0];
        assert!(utw_distance(&x, &y) < 1e-12);
    }

    #[test]
    fn utw_matches_euclidean_for_equal_lengths() {
        let x = vec![0.0, 1.0, 4.0, 2.0];
        let y = vec![1.0, 1.0, 3.0, 0.0];
        // Same length: D_UTW² = D²/n per Lemma 1 with m = n.
        let expect = sq_euclidean(&x, &y) / 4.0;
        assert!((utw_distance_sq(&x, &y) - expect).abs() < 1e-12);
    }

    #[test]
    fn utw_lemma1_upsampled_euclidean() {
        // Lemma 1: D²_UTW(x,y) = D²(U_m(x), U_n(y)) / (m n).
        let x = vec![2.0, -1.0, 0.5];
        let y = vec![1.0, 1.0, 0.0, -2.0, 3.0];
        let lhs = utw_distance_sq(&x, &y);
        let rhs = sq_euclidean(&upsample(&x, y.len()), &upsample(&y, x.len())) / (15.0);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn utw_is_symmetric() {
        let x = vec![0.3, 0.9, -0.2, 0.0, 1.5];
        let y = vec![1.0, -1.0, 2.0];
        assert!((utw_distance(&x, &y) - utw_distance(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn resample_is_upsample_for_integer_factor() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(resample(&x, 6), upsample(&x, 2));
        assert_eq!(resample(&x, 3), x);
    }

    #[test]
    fn resample_downsamples_without_new_values() {
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let r = resample(&x, 4);
        assert_eq!(r.len(), 4);
        for v in &r {
            assert!(x.contains(v));
        }
        // Order preserved.
        for w in r.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn resample_handles_non_divisible_lengths() {
        let x = vec![1.0, 2.0, 3.0];
        let r = resample(&x, 7);
        assert_eq!(r.len(), 7);
        assert_eq!(r[0], 1.0);
        assert_eq!(r[6], 3.0);
    }
}
