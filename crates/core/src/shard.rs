//! Corpus sharding: scatter-gather query serving over independent engine
//! shards.
//!
//! A [`ShardedEngine`] partitions the corpus into `N` independent
//! [`DtwIndexEngine`]s — each with its own R\*-tree (or other
//! [`hum_index::SpatialIndex`] backend), series store, and per-worker
//! [`QueryScratch`] — and fans every query out across them, merging hits in
//! a deterministic order. Sharding exists for the serving layer: `N` shards
//! turn one big tree into `N` small ones that `N` workers can walk
//! concurrently for a *single* query, cutting tail latency without touching
//! the per-shard engine code.
//!
//! # Shard assignment
//!
//! An item's shard is a pure function of its id:
//! [`shard_for`]`(id, N)` = `splitmix64(id) % N`. The hash step keeps the
//! shards balanced under clustered id ranges (per-song contiguous blocks,
//! for instance) while staying reproducible across processes — a persisted
//! database reloads into exactly the shards it was built with, and two
//! builds of the same corpus at the same shard count are identical.
//!
//! # Determinism contract
//!
//! * **Matches are bit-identical to the monolithic engine** at every shard
//!   count and every fan-out width. Range queries merge per-shard sorted
//!   hits with a k-way heap in fixed shard order; k-NN propagates the
//!   best-so-far radius across shards in the deterministic two-phase
//!   schedule below. Both produce exactly the `(id, distance)` pairs — same
//!   `f64` bits, same order — as a single engine holding the whole corpus.
//! * **Stats and traces are functions of `(query, corpus, shard count)`**:
//!   per-shard counters are absorbed in fixed shard order, so they never
//!   vary with the fan-out thread count or timing. They *do* vary with the
//!   shard count for `N > 1` — `N` trees have different node structure than
//!   one tree, and the k-NN probe phase touches up to `N·k` probes — which
//!   is inherent to scatter-gather, not an accounting bug. At `N = 1` the
//!   sharded engine delegates to its only shard and everything (matches,
//!   stats, traces, metrics) is trivially identical to the monolithic
//!   engine.
//!
//! # Two-phase k-NN
//!
//! The monolithic k-NN is the optimal multi-step scheme: probe the index
//! for `k` candidates, take the worst exact probe distance as a provisional
//! radius, and close with a range query under a shrinking best-so-far
//! threshold. Sharding splits it at the natural barrier:
//!
//! 1. **Probe phase (scatter):** every shard runs
//!    `knn_probe_phase` — its own `k` index probes with exact distances.
//! 2. **Radius barrier (gather):** the global closing radius is the k-th
//!    smallest `(d², id)` pair of the probe union. At least `k` real items
//!    sit within it (the `k` best probes), so the true k-th neighbor does
//!    too — the closing range query keeps the no-false-negative guarantee.
//!    With one shard the union *is* the shard's probe set and the radius
//!    reduces to the monolithic provisional radius.
//! 3. **Close phase (scatter):** every shard runs `knn_close_phase` at the
//!    global radius, its best-so-far heap *seeded with the global best
//!    probes* — so every shard prunes against the globally tightest known
//!    threshold from the first candidate on — and its own probes as the
//!    skip set (their exact distances are already in hand).
//! 4. **Assembly (gather):** probe pools and close survivors merge through
//!    the same `(d², id)`-ordered, id-deduplicated, top-`k` assembly the
//!    monolithic path uses.
//!
//! The merged result is exact: any true k-th-or-better neighbor survives
//! its shard's close phase because the shard's shrinking threshold is
//! always at least the true global k-th `(d², id)` pair (the heap holds at
//! most `k` *real* exact distances, so its worst entry can never be
//! strictly better than the true k-th item).

use std::collections::HashSet;

use hum_index::{ItemId, SpatialIndex};

use crate::batch::{parallel_map_chunked, BatchOptions};
use crate::engine::{
    assemble_knn_matches, BatchOutcome, BatchQuery, BatchResult, DtwIndexEngine, EngineError,
    EngineStats, QueryOutcome, QueryRequest, QueryResult, QueryScratch, RequestKind,
};
use crate::obs::{
    debug_assert_trace_consistent, Metric, MetricsSink, QueryKind, QueryTrace, Timer,
};
use crate::transform::EnvelopeTransform;

/// Maps an item id to its shard: `splitmix64(id) % shard_count`.
///
/// The splitmix64 finalizer decorrelates clustered id ranges so shards stay
/// balanced, while remaining a pure function — the same id lands on the
/// same shard in every process, which is what lets a persisted database
/// validate its shard membership on load.
///
/// # Panics
/// Panics if `shard_count` is zero.
#[must_use]
pub fn shard_for(id: ItemId, shard_count: usize) -> usize {
    assert!(shard_count > 0, "shard_count must be positive");
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shard_count as u64) as usize
}

/// A corpus partitioned across independent [`DtwIndexEngine`] shards with
/// scatter-gather query execution. See the [module docs](self) for the
/// assignment function, the determinism contract, and the two-phase k-NN
/// schedule.
#[derive(Debug, Clone)]
pub struct ShardedEngine<T, I> {
    shards: Vec<DtwIndexEngine<T, I>>,
    metrics: MetricsSink,
    fanout: usize,
}

impl<T: EnvelopeTransform, I: SpatialIndex> ShardedEngine<T, I> {
    /// Wraps pre-built, *empty* engine shards. All shards must share the
    /// same normal-form length (they answer the same queries); per-shard
    /// metrics sinks are forced to [`MetricsSink::Disabled`] — the sharded
    /// engine records each merged query exactly once into its own sink.
    ///
    /// # Panics
    /// Panics if `shards` is empty, any shard is non-empty, or the shards
    /// disagree on the normal-form length.
    pub fn new(mut shards: Vec<DtwIndexEngine<T, I>>) -> Self {
        assert!(!shards.is_empty(), "at least one shard is required");
        let series_len = shards[0].series_len();
        for (i, shard) in shards.iter_mut().enumerate() {
            assert!(shard.is_empty(), "shard {i} must start empty");
            assert_eq!(
                shard.series_len(),
                series_len,
                "shard {i} disagrees on the normal-form length"
            );
            shard.set_metrics(MetricsSink::Disabled);
        }
        let fanout = BatchOptions::default().threads;
        ShardedEngine { shards, metrics: MetricsSink::Disabled, fanout }
    }

    /// Builds `shard_count` shards from a factory (index backends are not
    /// `Clone`-able in general, so each shard gets a freshly made engine).
    ///
    /// # Panics
    /// Panics if `shard_count` is zero or the factory's engines disagree on
    /// the normal-form length.
    pub fn build(shard_count: usize, mut make: impl FnMut(usize) -> DtwIndexEngine<T, I>) -> Self {
        assert!(shard_count > 0, "shard_count must be positive");
        ShardedEngine::new((0..shard_count).map(&mut make).collect())
    }

    /// Builder form of [`ShardedEngine::set_fanout`].
    #[must_use]
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.set_fanout(fanout);
        self
    }

    /// Sets how many threads a *single* query may fan out across (clamped
    /// to at least 1; capped by the shard count at execution time). Fan-out
    /// width never changes matches, stats, or traces — only wall-clock
    /// time. Defaults to [`BatchOptions::default`]'s thread count.
    pub fn set_fanout(&mut self, fanout: usize) {
        self.fanout = fanout.max(1);
    }

    /// The configured per-query fan-out width.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Builder form of [`ShardedEngine::set_metrics`].
    #[must_use]
    pub fn with_metrics(mut self, sink: MetricsSink) -> Self {
        self.metrics = sink;
        self
    }

    /// Points the sharded engine at a metrics sink. Each merged query is
    /// recorded exactly once (the per-shard sinks stay disabled), so the
    /// registry's totals match what a monolithic engine would record.
    pub fn set_metrics(&mut self, sink: MetricsSink) {
        self.metrics = sink;
    }

    /// The metrics sink in use (disabled by default).
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in fixed shard order (for persistence and inspection).
    pub fn shards(&self) -> &[DtwIndexEngine<T, I>] {
        &self.shards
    }

    /// The envelope transform the shards share (every shard is built from
    /// the same configuration, so shard 0's transform speaks for all).
    pub fn transform(&self) -> &T {
        self.shards[0].transform()
    }

    /// The shard that does / would store `id`.
    pub fn shard_of(&self, id: ItemId) -> usize {
        shard_for(id, self.shards.len())
    }

    /// Total indexed series across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(DtwIndexEngine::len).sum()
    }

    /// `true` if no series are indexed.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(DtwIndexEngine::is_empty)
    }

    /// Normal-form length every series must have.
    pub fn series_len(&self) -> usize {
        self.shards[0].series_len()
    }

    /// Looks up a stored series (in its home shard).
    pub fn get(&self, id: ItemId) -> Option<&[f64]> {
        self.shards[self.shard_of(id)].get(id)
    }

    /// Inserts a normal-form series into its home shard. Ids are unique
    /// across the whole corpus: an id always hashes to the same shard, so
    /// the per-shard duplicate check is a global one. On error nothing is
    /// changed.
    pub fn try_insert(&mut self, id: ItemId, series: Vec<f64>) -> Result<(), EngineError> {
        let shard = self.shard_of(id);
        self.shards[shard].try_insert(id, series)?;
        self.metrics.add(Metric::Inserts, 1);
        Ok(())
    }

    /// Panicking form of [`ShardedEngine::try_insert`].
    ///
    /// # Panics
    /// Panics if the length is wrong, the id is already present, or any
    /// sample is NaN/infinite.
    pub fn insert(&mut self, id: ItemId, series: Vec<f64>) {
        self.try_insert(id, series).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Removes `id` from its home shard. Returns `true` if it was present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        let shard = self.shard_of(id);
        if self.shards[shard].remove(id) {
            self.metrics.add(Metric::Removals, 1);
            true
        } else {
            false
        }
    }
}

impl<T: EnvelopeTransform + Sync, I: SpatialIndex + Sync> ShardedEngine<T, I> {
    /// Executes a request with scatter-gather across the shards. Semantics
    /// (matches, errors) are identical to [`DtwIndexEngine::try_query`] on
    /// a monolithic engine holding the same corpus; see the
    /// [module docs](self) for what the counters mean at `N > 1`.
    ///
    /// # Errors
    /// The validation errors of [`DtwIndexEngine::try_query`], plus
    /// [`EngineError::DeadlineExceeded`] carrying the partial counters of
    /// *every* shard (absorbed in shard order) when the request's budget
    /// expires mid-query.
    pub fn try_query(&self, request: &QueryRequest) -> Result<QueryOutcome, EngineError> {
        self.try_query_with(request, &mut QueryScratch::new())
    }

    /// [`ShardedEngine::try_query`] computing in caller-provided scratch.
    /// With more than one shard and fan-out above 1, worker threads use
    /// their own scratch; results and counters are identical either way.
    ///
    /// # Errors
    /// As [`ShardedEngine::try_query`].
    pub fn try_query_with(
        &self,
        request: &QueryRequest,
        scratch: &mut QueryScratch,
    ) -> Result<QueryOutcome, EngineError> {
        let started = self.metrics.start_timer();
        let outcome = self.run_sharded(request, scratch, self.fanout)?;
        self.metrics.record_query(query_kind(request), &outcome.result.stats, started);
        Ok(outcome)
    }

    /// Panicking form of [`ShardedEngine::try_query`].
    ///
    /// # Panics
    /// Panics on any [`EngineError`] the `try_` form would return.
    pub fn query(&self, request: &QueryRequest) -> QueryOutcome {
        self.try_query(request).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Panicking form of [`ShardedEngine::try_query_with`].
    ///
    /// # Panics
    /// Panics on any [`EngineError`] the `try_` form would return.
    pub fn query_with(&self, request: &QueryRequest, scratch: &mut QueryScratch) -> QueryOutcome {
        self.try_query_with(request, scratch).unwrap_or_else(|e| panic!("{e}"))
    }

    /// ε-range query across all shards; merged matches are bit-identical
    /// to [`DtwIndexEngine::range_query`] on the whole corpus.
    ///
    /// # Panics
    /// Panics if the query is malformed (wrong length, non-finite samples,
    /// band too wide).
    #[deprecated(
        since = "0.1.0",
        note = "build a QueryRequest::range and use try_query (typed errors) or query"
    )]
    pub fn range_query(&self, query: &[f64], band: usize, radius: f64) -> QueryResult {
        let request = QueryRequest::range(radius).with_series(query).with_band(band);
        self.query(&request).result
    }

    /// k-NN query across all shards via the two-phase radius schedule;
    /// merged matches are bit-identical to [`DtwIndexEngine::knn`] on the
    /// whole corpus.
    ///
    /// # Panics
    /// Panics if the query is malformed (wrong length, non-finite samples,
    /// band too wide).
    #[deprecated(
        since = "0.1.0",
        note = "build a QueryRequest::knn and use try_query (typed errors) or query"
    )]
    pub fn knn(&self, query: &[f64], band: usize, k: usize) -> QueryResult {
        let request = QueryRequest::knn(k).with_series(query).with_band(band);
        self.query(&request).result
    }

    /// Brute-force ε-range scan across all shards (no index); merged
    /// matches are bit-identical to [`DtwIndexEngine::scan_range`] on the
    /// whole corpus.
    ///
    /// # Panics
    /// Panics if the query is malformed (wrong length, non-finite samples,
    /// band too wide).
    pub fn scan_range(&self, query: &[f64], band: usize, radius: f64) -> QueryResult {
        let request =
            QueryRequest::range(radius).with_series(query).with_band(band).with_scan(true);
        self.query(&request).result
    }

    /// Brute-force k-NN scan across all shards (no index); merged matches
    /// are bit-identical to [`DtwIndexEngine::scan_knn`] on the whole
    /// corpus (each shard's scan returns its exact sub-corpus top-k, so the
    /// k best of the union are the global top-k).
    ///
    /// # Panics
    /// Panics if the query is malformed (wrong length, non-finite samples,
    /// band too wide).
    pub fn scan_knn(&self, query: &[f64], band: usize, k: usize) -> QueryResult {
        let request = QueryRequest::knn(k).with_series(query).with_band(band).with_scan(true);
        self.query(&request).result
    }

    /// Executes a batch of requests: the batch fans out across
    /// [`BatchOptions::threads`] workers exactly like
    /// [`DtwIndexEngine::try_query_batch`], and each request walks its
    /// shards *sequentially* on its worker (one level of parallelism, never
    /// nested). Per-request outcomes are bit-identical to
    /// [`ShardedEngine::try_query`] for every thread count.
    ///
    /// # Errors
    /// Validates every request up front and returns the first
    /// [`EngineError`] before running anything. A deadline expiry fails the
    /// whole batch with the [`EngineError::DeadlineExceeded`] of the
    /// earliest such request in submission order.
    pub fn try_query_batch(
        &self,
        requests: &[QueryRequest],
        options: &BatchOptions,
    ) -> Result<BatchOutcome, EngineError> {
        for request in requests {
            self.shards[0].validate_query(request.series(), request.band())?;
        }
        let started = self.metrics.start_timer();
        let runs = parallel_map_chunked(
            requests,
            options,
            QueryScratch::new,
            |scratch, _i, request| {
                let per_query = self.metrics.start_timer();
                let outcome = self.run_sharded(request, scratch, 1)?;
                self.metrics.record_query(query_kind(request), &outcome.result.stats, per_query);
                Ok(outcome)
            },
        );
        let mut outcomes = Vec::with_capacity(runs.len());
        for run in runs {
            outcomes.push(run?);
        }
        let mut stats = EngineStats::default();
        for outcome in &outcomes {
            stats.absorb(&outcome.result.stats);
        }
        self.metrics.add(Metric::Batches, 1);
        self.metrics.observe_since(Timer::Batch, started);
        Ok(BatchOutcome { outcomes, stats })
    }

    /// Executes a batch of [`BatchQuery`]s (panicking form), mirroring
    /// [`DtwIndexEngine::query_batch`].
    ///
    /// # Panics
    /// Panics if any query has the wrong length or non-finite samples.
    #[deprecated(
        since = "0.1.0",
        note = "build QueryRequests and use try_query_batch (typed errors, traces, budgets)"
    )]
    pub fn query_batch(&self, batch: &[BatchQuery], options: &BatchOptions) -> BatchResult {
        let requests: Vec<QueryRequest> = batch.iter().map(BatchQuery::to_request).collect();
        let outcome = self.try_query_batch(&requests, options).unwrap_or_else(|e| panic!("{e}"));
        BatchResult {
            results: outcome.outcomes.into_iter().map(|o| o.result).collect(),
            stats: outcome.stats,
        }
    }

    /// Validates, scatters, and gathers one request. `fanout` bounds the
    /// threads this one query may use (the batch path passes 1 so the only
    /// parallelism is across requests). Crate-visible so the segmented
    /// store view ([`crate::segment`]) can run each storage unit through
    /// the exact same scatter-gather and merge unit results itself.
    pub(crate) fn run_sharded(
        &self,
        request: &QueryRequest,
        scratch: &mut QueryScratch,
        fanout: usize,
    ) -> Result<QueryOutcome, EngineError> {
        self.shards[0].validate_query(request.series(), request.band())?;
        // Single shard: the scatter-gather is the identity; delegate so
        // matches, stats, *and* trace are the monolithic engine's own.
        if self.shards.len() == 1 {
            return self.shards[0].run_request(request, scratch);
        }
        let result = match request.kind() {
            RequestKind::Knn { k } if !request.scan_enabled() => {
                self.run_sharded_knn(request, k, scratch, fanout)?
            }
            _ => self.run_sharded_merge(request, scratch, fanout)?,
        };
        let trace = request.trace_enabled().then(|| {
            let kind = query_kind(request);
            let candidates_in = match kind {
                // Indexed paths: the cascade saw the merged candidate sets.
                QueryKind::Range | QueryKind::Knn => result.stats.index.candidates,
                // Scan paths: the cascade saw the whole corpus.
                QueryKind::ScanRange | QueryKind::ScanKnn => self.len() as u64,
            };
            let trace =
                QueryTrace::from_stats(kind, request.band(), candidates_in, &result.stats);
            debug_assert_trace_consistent(&trace, &result.stats);
            trace
        });
        Ok(QueryOutcome { result, trace })
    }

    /// Scatter-gather for every path whose per-shard results merge
    /// directly: range queries (indexed and scan) and scan k-NN. Each
    /// shard's matches over its sub-corpus are exact, so the k-way merge of
    /// the sorted per-shard lists — truncated to `k` for k-NN — is exactly
    /// the monolithic result.
    fn run_sharded_merge(
        &self,
        request: &QueryRequest,
        scratch: &mut QueryScratch,
        fanout: usize,
    ) -> Result<QueryResult, EngineError> {
        // Same request, trace off: the merged trace is built once at the top.
        let sub = request.clone().with_trace(false);
        let runs = self.scatter(fanout, scratch, |shard, scratch| {
            shard.run_request(&sub, scratch)
        });
        let mut stats = EngineStats::default();
        let mut pools = Vec::with_capacity(runs.len());
        let mut expired = false;
        for run in runs {
            match run {
                Ok(outcome) => {
                    stats.absorb(&outcome.result.stats);
                    pools.push(outcome.result.matches);
                }
                Err(EngineError::DeadlineExceeded { stats: partial }) => {
                    stats.absorb(&partial);
                    expired = true;
                }
                // Validation already passed for every shard (same normal
                // form); run_request has no other error.
                Err(other) => return Err(other),
            }
        }
        if expired {
            stats.matches = 0;
            return Err(EngineError::DeadlineExceeded { stats });
        }
        let mut matches = merge_sorted_matches(pools);
        if let RequestKind::Knn { k } = request.kind() {
            matches.truncate(k);
        }
        stats.matches = matches.len() as u64;
        Ok(QueryResult { matches, stats })
    }

    /// The two-phase sharded k-NN (see the [module docs](self)): scatter
    /// the probe phase, gather the global radius and seed, scatter the
    /// close phase, and assemble.
    fn run_sharded_knn(
        &self,
        request: &QueryRequest,
        k: usize,
        scratch: &mut QueryScratch,
        fanout: usize,
    ) -> Result<QueryResult, EngineError> {
        let query = request.series();
        let band = request.band();
        let budget = request.budget();
        if k == 0 || self.is_empty() {
            return Ok(QueryResult::default());
        }

        // Phase 1: probe every shard.
        let probe_runs = self.scatter(fanout, scratch, |shard, scratch| {
            shard.knn_probe_phase(query, band, k, budget, scratch)
        });
        let mut stats = EngineStats::default();
        let mut probe_pools: Vec<Vec<(ItemId, f64)>> = Vec::with_capacity(self.shards.len());
        let mut expired = false;
        for run in probe_runs {
            match run {
                Ok((probes, probe_stats)) => {
                    stats.absorb(&probe_stats);
                    probe_pools.push(probes);
                }
                Err(partial) => {
                    stats.absorb(&partial);
                    expired = true;
                }
            }
        }
        if expired {
            stats.matches = 0;
            return Err(EngineError::DeadlineExceeded { stats });
        }

        // Radius barrier: the k-th smallest (d², id) probe pair bounds the
        // true k-th neighbor, and the best min(k, total) probes seed every
        // shard's close-phase heap.
        let mut seed: Vec<(ItemId, f64)> =
            probe_pools.iter().flatten().copied().collect();
        seed.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite distances").then_with(|| a.0.cmp(&b.0))
        });
        seed.truncate(k);
        let radius_sq = seed.last().map_or(0.0, |&(_, d_sq)| d_sq);
        let known: Vec<HashSet<ItemId>> = probe_pools
            .iter()
            .map(|probes| probes.iter().map(|&(id, _)| id).collect())
            .collect();

        // Phase 2: close every shard at the global radius.
        let close_runs = self.scatter_indexed(fanout, scratch, |i, shard, scratch| {
            shard.knn_close_phase(query, band, k, radius_sq, &seed, &known[i], budget, scratch)
        });
        let mut pools = probe_pools;
        for run in close_runs {
            match run {
                Ok((survivors, close_stats)) => {
                    stats.absorb(&close_stats);
                    pools.push(survivors);
                }
                Err(partial) => {
                    stats.absorb(&partial);
                    expired = true;
                }
            }
        }
        if expired {
            stats.matches = 0;
            return Err(EngineError::DeadlineExceeded { stats });
        }

        let matches = assemble_knn_matches(pools, k);
        stats.matches = matches.len() as u64;
        Ok(QueryResult { matches, stats })
    }

    /// Runs `f` once per shard, returning results in fixed shard order.
    /// With `fanout > 1` the shards run on scoped worker threads, each
    /// owning a private scratch; with `fanout == 1` they run in-order on
    /// the calling thread reusing the caller's scratch. The results are
    /// identical either way (scratch reuse never changes a counter).
    fn scatter<R: Send>(
        &self,
        fanout: usize,
        scratch: &mut QueryScratch,
        f: impl Fn(&DtwIndexEngine<T, I>, &mut QueryScratch) -> R + Sync,
    ) -> Vec<R> {
        self.scatter_indexed(fanout, scratch, |_i, shard, scratch| f(shard, scratch))
    }

    /// [`ShardedEngine::scatter`] with the shard index passed through.
    fn scatter_indexed<R: Send>(
        &self,
        fanout: usize,
        scratch: &mut QueryScratch,
        f: impl Fn(usize, &DtwIndexEngine<T, I>, &mut QueryScratch) -> R + Sync,
    ) -> Vec<R> {
        let fanout = fanout.min(self.shards.len());
        if fanout <= 1 {
            return self
                .shards
                .iter()
                .enumerate()
                .map(|(i, shard)| f(i, shard, scratch))
                .collect();
        }
        // Chunk size 1: shard i is item i, so work steals at shard
        // granularity and the merge order is the shard order.
        let options = BatchOptions::new(fanout, 1);
        parallel_map_chunked(&self.shards, &options, QueryScratch::new, |scratch, i, shard| {
            f(i, shard, scratch)
        })
    }
}

/// The trace/metrics kind for a request (same mapping as the monolithic
/// dispatch).
pub(crate) fn query_kind(request: &QueryRequest) -> QueryKind {
    match (request.kind(), request.scan_enabled()) {
        (RequestKind::Range { .. }, false) => QueryKind::Range,
        (RequestKind::Knn { .. }, false) => QueryKind::Knn,
        (RequestKind::Range { .. }, true) => QueryKind::ScanRange,
        (RequestKind::Knn { .. }, true) => QueryKind::ScanKnn,
    }
}

/// K-way merge of per-shard match lists, each already sorted by
/// `(distance, id)`, into one list sorted the same way. Heads are compared
/// by `(distance, id, shard)` — ids are unique across shards, so the shard
/// component never decides between *different* items; it only fixes a total
/// order for the heap.
pub(crate) fn merge_sorted_matches(pools: Vec<Vec<(ItemId, f64)>>) -> Vec<(ItemId, f64)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Head {
        distance: f64,
        id: ItemId,
        shard: usize,
        pos: usize,
    }
    impl Eq for Head {}
    impl Ord for Head {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.distance
                .partial_cmp(&other.distance)
                .expect("finite distances")
                .then_with(|| self.id.cmp(&other.id))
                .then_with(|| self.shard.cmp(&other.shard))
        }
    }
    impl PartialOrd for Head {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let total: usize = pools.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    let mut heap: BinaryHeap<Reverse<Head>> = pools
        .iter()
        .enumerate()
        .filter_map(|(shard, pool)| {
            pool.first().map(|&(id, distance)| Reverse(Head { distance, id, shard, pos: 0 }))
        })
        .collect();
    while let Some(Reverse(head)) = heap.pop() {
        merged.push((head.id, head.distance));
        let next = head.pos + 1;
        if let Some(&(id, distance)) = pools[head.shard].get(next) {
            heap.push(Reverse(Head { distance, id, shard: head.shard, pos: next }));
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_for_is_stable_and_in_range() {
        // Pinned values: the assignment function is part of the persistence
        // format (HUMIDX03 validates membership on load), so it must never
        // drift.
        assert_eq!(shard_for(0, 4), shard_for(0, 4));
        for id in 0..1000u64 {
            for n in 1..9usize {
                assert!(shard_for(id, n) < n);
            }
            assert_eq!(shard_for(id, 1), 0);
        }
    }

    #[test]
    fn shard_for_balances_clustered_ids() {
        // Contiguous id blocks (per-song numbering) must spread out.
        let n = 8;
        let mut counts = vec![0usize; n];
        for id in 0..8000u64 {
            counts[shard_for(id, n)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(
            *min * 10 >= *max * 7,
            "shard skew too high: min {min}, max {max} over {counts:?}"
        );
    }

    #[test]
    fn merge_sorted_matches_interleaves_in_order() {
        let pools = vec![
            vec![(0, 0.5), (2, 1.5)],
            vec![],
            vec![(1, 1.0), (3, 1.5)],
        ];
        // Tie at 1.5 resolves by id.
        assert_eq!(
            merge_sorted_matches(pools),
            vec![(0, 0.5), (1, 1.0), (2, 1.5), (3, 1.5)]
        );
    }
}
