//! Text and JSON exporters for traces and metrics.
//!
//! The text renderers produce small aligned tables for logs and terminals;
//! the JSON path goes through the workspace's `serde`/`serde_json` (the
//! same pipeline the `repro` bench persists every experiment with), so
//! EXPERIMENTS.md tables and production telemetry are regenerated from the
//! *same* instrumentation — `serde::Serialize` is implemented here for
//! every observability type.

use std::fmt::Write as _;

use serde::{Serialize, Value};

use crate::obs::registry::{
    CounterSnapshot, HistogramSnapshot, MetricsSnapshot, TimerSnapshot,
};
use crate::obs::trace::{QueryKind, QueryTrace, Stage, StageTrace};

fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl Serialize for QueryKind {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Serialize for Stage {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

impl Serialize for StageTrace {
    fn to_value(&self) -> Value {
        object(vec![
            ("stage", self.stage.to_value()),
            ("entered", self.entered.to_value()),
            ("pruned", self.pruned.to_value()),
        ])
    }
}

impl Serialize for QueryTrace {
    fn to_value(&self) -> Value {
        object(vec![
            ("kind", self.kind.to_value()),
            ("band", self.band.to_value()),
            (
                "index",
                object(vec![
                    ("node_accesses", self.index.node_accesses.to_value()),
                    ("leaf_accesses", self.index.leaf_accesses.to_value()),
                    ("points_examined", self.index.points_examined.to_value()),
                    ("candidates", self.index.candidates.to_value()),
                ]),
            ),
            ("candidates_in", self.candidates_in.to_value()),
            ("lb_pruned", self.lb_pruned.to_value()),
            ("lb_improved_pruned", self.lb_improved_pruned.to_value()),
            ("exact_started", self.exact_started.to_value()),
            ("early_abandoned", self.early_abandoned.to_value()),
            ("verified", self.verified.to_value()),
            ("dp_cells", self.dp_cells.to_value()),
            ("matches", self.matches.to_value()),
            ("stages", self.stages().to_value()),
        ])
    }
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> Value {
        object(vec![
            ("count", self.count.to_value()),
            ("sum_nanos", self.sum_nanos.to_value()),
            ("mean_nanos", self.mean_nanos().to_value()),
            ("p50_upper_nanos", self.quantile_upper_nanos(0.5).to_value()),
            ("p99_upper_nanos", self.quantile_upper_nanos(0.99).to_value()),
            ("buckets", self.buckets.to_value()),
        ])
    }
}

impl Serialize for CounterSnapshot {
    fn to_value(&self) -> Value {
        object(vec![("name", self.name.to_value()), ("value", self.value.to_value())])
    }
}

impl Serialize for TimerSnapshot {
    fn to_value(&self) -> Value {
        object(vec![("name", self.name.to_value()), ("histogram", self.histogram.to_value())])
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        object(vec![
            ("counters", self.counters.to_value()),
            ("timers", self.timers.to_value()),
        ])
    }
}

/// Pretty-printed JSON for any observability value (or anything else
/// implementing the workspace `Serialize`).
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("infallible vendored serializer")
}

/// Renders one trace as an aligned per-stage text table.
pub fn trace_to_text(trace: &QueryTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "query trace [{}] band={} pages={} dp_cells={} matches={}",
        trace.kind.name(),
        trace.band,
        trace.index.node_accesses,
        trace.dp_cells,
        trace.matches
    );
    let _ = writeln!(out, "{:<14}{:>10}{:>10}{:>10}", "stage", "entered", "pruned", "out");
    for s in trace.stages() {
        let _ = writeln!(
            out,
            "{:<14}{:>10}{:>10}{:>10}",
            s.stage.name(),
            s.entered,
            s.pruned,
            s.entered.saturating_sub(s.pruned)
        );
    }
    out
}

/// Renders a metrics snapshot as text: one line per counter, one line per
/// timer with count / mean / bucketed p50 / p99.
pub fn metrics_to_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let name_width = snapshot
        .counters
        .iter()
        .map(|c| c.name.len())
        .chain(snapshot.timers.iter().map(|t| t.name.len()))
        .max()
        .unwrap_or(0)
        .max("counter".len());
    let _ = writeln!(out, "{:<name_width$}  {:>14}", "counter", "value");
    for c in &snapshot.counters {
        let _ = writeln!(out, "{:<name_width$}  {:>14}", c.name, c.value);
    }
    let _ = writeln!(
        out,
        "{:<name_width$}  {:>10}{:>12}{:>12}{:>12}",
        "timer", "count", "mean_us", "p50_us", "p99_us"
    );
    for t in &snapshot.timers {
        let h = &t.histogram;
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>10}{:>12.1}{:>12.1}{:>12.1}",
            t.name,
            h.count,
            h.mean_nanos() / 1_000.0,
            h.quantile_upper_nanos(0.5) as f64 / 1_000.0,
            h.quantile_upper_nanos(0.99) as f64 / 1_000.0,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineStats;
    use crate::obs::registry::MetricsRegistry;
    use crate::obs::registry::Metric;

    fn sample_trace() -> QueryTrace {
        let mut s = EngineStats::default();
        s.index.node_accesses = 5;
        s.index.candidates = 20;
        s.lb_pruned = 12;
        s.lb_improved_pruned = 3;
        s.exact_computations = 5;
        s.early_abandoned = 1;
        s.dp_cells = 777;
        s.matches = 2;
        QueryTrace::from_stats(QueryKind::Range, 4, 20, &s)
    }

    #[test]
    fn trace_text_contains_every_stage() {
        let text = trace_to_text(&sample_trace());
        for needle in ["index_filter", "envelope_lb", "lb_improved", "exact_dtw", "dp_cells=777"] {
            assert!(text.contains(needle), "{needle} missing from:\n{text}");
        }
    }

    #[test]
    fn trace_json_round_trips_counters() {
        let json = to_json_string(&sample_trace());
        for needle in [
            "\"kind\": \"range\"",
            "\"lb_pruned\": 12",
            "\"dp_cells\": 777",
            "\"stages\"",
            "\"node_accesses\": 5",
        ] {
            assert!(json.contains(needle), "{needle} missing from:\n{json}");
        }
    }

    #[test]
    fn metrics_exports_name_every_slot() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::DpCells, 99);
        reg.observe_nanos(crate::obs::registry::Timer::KnnQuery, 2_000);
        let snap = reg.snapshot();
        let text = metrics_to_text(&snap);
        assert!(text.contains("cascade.dp_cells"));
        assert!(text.contains("latency.knn_query"));
        let json = to_json_string(&snap);
        assert!(json.contains("\"cascade.dp_cells\""));
        assert!(json.contains("\"p99_upper_nanos\""));
    }
}
