//! Per-query cascade trajectories.
//!
//! A [`QueryTrace`] is the *per-query* half of the observability layer: it
//! records, for one query, how the candidate set moved through the
//! verification cascade — candidates in → envelope-LB pruned →
//! `LB_Improved` pruned → early-abandoned → DP cells → verified — plus the
//! index-level page/probe accounting ([`QueryStats`]).
//!
//! A trace carries **counters only, never wall-clock time**: it is `Copy`,
//! allocation-free, a pure function of the query and the immutable index,
//! and therefore bit-identical across runs and thread counts (the batch
//! layer's permutation-invariance guarantee extends to traces unchanged).
//! Durations live in the [`MetricsRegistry`](crate::obs::MetricsRegistry)
//! histograms instead.
//!
//! Traces and [`EngineStats`] are two views of the same instrumentation:
//! [`QueryTrace::totals`] maps a trace back onto the stats it came from, and
//! [`debug_assert_trace_consistent`] enforces the equality in debug builds
//! so the two can never drift silently.

use hum_index::QueryStats;

use crate::engine::EngineStats;

/// Which engine code path produced a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Indexed ε-range query.
    Range,
    /// Indexed k-NN query (optimal multi-step).
    Knn,
    /// Brute-force ε-range scan.
    ScanRange,
    /// Brute-force k-NN scan.
    ScanKnn,
}

impl QueryKind {
    /// Exported name.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Range => "range",
            QueryKind::Knn => "knn",
            QueryKind::ScanRange => "scan_range",
            QueryKind::ScanKnn => "scan_knn",
        }
    }
}

/// One verification-cascade stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The spatial-index filter (feature-space box vs stored points).
    IndexFilter,
    /// Full-dimension envelope lower bound.
    EnvelopeLb,
    /// Lemire's two-pass `LB_Improved`.
    LbImproved,
    /// Early-abandoning banded DTW.
    ExactDtw,
}

impl Stage {
    /// Exported name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::IndexFilter => "index_filter",
            Stage::EnvelopeLb => "envelope_lb",
            Stage::LbImproved => "lb_improved",
            Stage::ExactDtw => "exact_dtw",
        }
    }
}

/// One stage of the funnel view: how many candidates entered, how many the
/// stage removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTrace {
    /// The cascade stage.
    pub stage: Stage,
    /// Candidates entering the stage.
    pub entered: u64,
    /// Candidates the stage removed.
    pub pruned: u64,
}

/// The cascade trajectory of one query. Counters only — see the module
/// docs for the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTrace {
    /// The code path that ran.
    pub kind: QueryKind,
    /// Sakoe-Chiba band half-width of the query.
    pub band: usize,
    /// Index-level page/probe accounting (all zero on scan paths).
    pub index: QueryStats,
    /// Candidates entering the verification cascade: the index's candidate
    /// set on indexed paths, the full database on scan paths.
    pub candidates_in: u64,
    /// Removed by the envelope lower bound.
    pub lb_pruned: u64,
    /// Removed by `LB_Improved`.
    pub lb_improved_pruned: u64,
    /// Exact DTW evaluations started.
    pub exact_started: u64,
    /// Exact DTW evaluations abandoned by the threshold.
    pub early_abandoned: u64,
    /// Exact DTW evaluations that ran to completion.
    pub verified: u64,
    /// DTW dynamic-programming cells evaluated.
    pub dp_cells: u64,
    /// Final matches returned.
    pub matches: u64,
}

impl QueryTrace {
    /// Builds the trace for one query from the stats the engine already
    /// collected (so the two *cannot* disagree — same instrumentation, two
    /// shapes).
    pub fn from_stats(
        kind: QueryKind,
        band: usize,
        candidates_in: u64,
        stats: &EngineStats,
    ) -> Self {
        QueryTrace {
            kind,
            band,
            index: stats.index,
            candidates_in,
            lb_pruned: stats.lb_pruned,
            lb_improved_pruned: stats.lb_improved_pruned,
            exact_started: stats.exact_computations,
            early_abandoned: stats.early_abandoned,
            verified: stats.exact_computations - stats.early_abandoned,
            dp_cells: stats.dp_cells,
            matches: stats.matches,
        }
    }

    /// Maps the trace back onto the [`EngineStats`] it was built from.
    /// Exact inverse of [`QueryTrace::from_stats`]; the drift guard
    /// ([`debug_assert_trace_consistent`]) asserts this equality.
    pub fn totals(&self) -> EngineStats {
        EngineStats {
            index: self.index,
            lb_pruned: self.lb_pruned,
            lb_improved_pruned: self.lb_improved_pruned,
            exact_computations: self.exact_started,
            early_abandoned: self.early_abandoned,
            dp_cells: self.dp_cells,
            matches: self.matches,
        }
    }

    /// The funnel view, for rendering: candidates per stage with the count
    /// each stage removed. On the k-NN path the middle stages are an
    /// approximation (probes enter exact DTW directly and the shrinking
    /// radius can re-prune), so arithmetic between rows uses saturating
    /// subtraction; the *fields* of the trace, not this view, are the
    /// consistency contract.
    pub fn stages(&self) -> [StageTrace; 4] {
        [
            StageTrace {
                stage: Stage::IndexFilter,
                entered: self.index.points_examined.max(self.candidates_in),
                pruned: self
                    .index
                    .points_examined
                    .max(self.candidates_in)
                    .saturating_sub(self.candidates_in),
            },
            StageTrace {
                stage: Stage::EnvelopeLb,
                entered: self.candidates_in,
                pruned: self.lb_pruned,
            },
            StageTrace {
                stage: Stage::LbImproved,
                entered: self.candidates_in.saturating_sub(self.lb_pruned),
                pruned: self.lb_improved_pruned,
            },
            StageTrace {
                stage: Stage::ExactDtw,
                entered: self.exact_started,
                pruned: self.early_abandoned,
            },
        ]
    }

    /// Adds another trace's counters into this one (for aggregating a
    /// batch into one trajectory row). `kind` and `band` keep the
    /// receiver's values; aggregate across kinds at your own peril.
    pub fn absorb(&mut self, other: &QueryTrace) {
        self.index.absorb(&other.index);
        self.candidates_in += other.candidates_in;
        self.lb_pruned += other.lb_pruned;
        self.lb_improved_pruned += other.lb_improved_pruned;
        self.exact_started += other.exact_started;
        self.early_abandoned += other.early_abandoned;
        self.verified += other.verified;
        self.dp_cells += other.dp_cells;
        self.matches += other.matches;
    }

    /// An all-zero trace to aggregate into (see [`QueryTrace::absorb`]).
    pub fn zero(kind: QueryKind, band: usize) -> Self {
        QueryTrace::from_stats(kind, band, 0, &EngineStats::default())
    }
}

/// Debug-build guard against counter drift: a query's trace and its
/// [`EngineStats`] are two renderings of the same counters, so
/// [`QueryTrace::totals`] must reproduce the stats exactly. Release builds
/// compile this to nothing.
#[inline]
pub fn debug_assert_trace_consistent(trace: &QueryTrace, stats: &EngineStats) {
    debug_assert_eq!(
        trace.totals(),
        *stats,
        "QueryTrace drifted from EngineStats: instrumentation bug"
    );
    debug_assert_eq!(
        trace.verified,
        stats.exact_computations - stats.early_abandoned,
        "verified must equal completed exact computations"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> EngineStats {
        let mut s = EngineStats::default();
        s.index.node_accesses = 12;
        s.index.leaf_accesses = 9;
        s.index.points_examined = 200;
        s.index.candidates = 40;
        s.lb_pruned = 25;
        s.lb_improved_pruned = 5;
        s.exact_computations = 10;
        s.early_abandoned = 4;
        s.dp_cells = 1234;
        s.matches = 3;
        s
    }

    #[test]
    fn totals_invert_from_stats() {
        let s = stats();
        let trace = QueryTrace::from_stats(QueryKind::Range, 6, s.index.candidates, &s);
        assert_eq!(trace.totals(), s);
        assert_eq!(trace.verified, 6);
        debug_assert_trace_consistent(&trace, &s);
    }

    #[test]
    fn stages_form_a_funnel_on_the_range_path() {
        let s = stats();
        let trace = QueryTrace::from_stats(QueryKind::Range, 6, s.index.candidates, &s);
        let [index, env, lbi, exact] = trace.stages();
        assert_eq!(index.stage, Stage::IndexFilter);
        assert_eq!(index.entered, 200);
        assert_eq!(index.pruned, 160);
        assert_eq!(env.entered, 40);
        assert_eq!(env.pruned, 25);
        assert_eq!(lbi.entered, 15);
        assert_eq!(lbi.pruned, 5);
        assert_eq!(exact.entered, 10);
        assert_eq!(exact.pruned, 4);
        // Range-path funnel closes exactly: every candidate is pruned
        // somewhere or verified.
        assert_eq!(env.pruned + lbi.pruned + exact.entered, trace.candidates_in);
    }

    #[test]
    fn absorb_sums_every_counter() {
        let s = stats();
        let one = QueryTrace::from_stats(QueryKind::Range, 6, s.index.candidates, &s);
        let mut total = QueryTrace::zero(QueryKind::Range, 6);
        total.absorb(&one);
        total.absorb(&one);
        assert_eq!(total.candidates_in, 80);
        assert_eq!(total.dp_cells, 2468);
        assert_eq!(total.verified, 12);
        let mut twice = s;
        twice.absorb(&s);
        assert_eq!(total.totals(), twice);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(QueryKind::ScanKnn.name(), "scan_knn");
        assert_eq!(Stage::LbImproved.name(), "lb_improved");
    }
}
