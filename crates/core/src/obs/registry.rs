//! Named monotonic counters and duration histograms.
//!
//! The registry is the *aggregate* half of the observability layer: every
//! query records its [`EngineStats`] deltas into fixed-slot atomic counters
//! and its wall-clock duration into a log-bucketed histogram. Counter slots
//! are a closed enum ([`Metric`]) rather than a string-keyed map so the hot
//! path never hashes, allocates, or takes a lock — one relaxed atomic add
//! per field.
//!
//! Determinism contract: counters accumulate `u64` deltas, and `u64`
//! addition commutes, so after any batch the counter totals are identical
//! for every thread count and every scheduling. Timers are the one
//! exception — wall-clock durations are inherently run-dependent — which is
//! why durations live *only* here and never in [`EngineStats`],
//! [`QueryTrace`](crate::obs::QueryTrace), or any query result: answers and
//! counters stay bit-identical whether or not metrics are enabled.
//!
//! [`EngineStats`]: crate::engine::EngineStats

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::engine::EngineStats;
use crate::obs::trace::QueryKind;

/// One named monotonic counter slot.
///
/// A closed enum instead of string keys: registration is the enum
/// definition, lookup is an array index, and the set of metrics is
/// documented by the type itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Indexed ε-range queries executed.
    RangeQueries,
    /// Indexed k-NN queries executed.
    KnnQueries,
    /// Brute-force (scan) ε-range queries executed.
    ScanRangeQueries,
    /// Brute-force (scan) k-NN queries executed.
    ScanKnnQueries,
    /// Batch executions (not per-query: one per `query_batch` call).
    Batches,
    /// Series inserted into the engine.
    Inserts,
    /// Series removed from the engine.
    Removals,
    /// Index nodes (= disk pages) read.
    IndexNodeAccesses,
    /// Leaf-level nodes among those accesses.
    IndexLeafAccesses,
    /// Stored points whose exact feature distance was evaluated.
    IndexPointsExamined,
    /// Points that satisfied the index-level predicate.
    IndexCandidates,
    /// Candidates removed by the envelope second filter.
    LbPruned,
    /// Candidates removed by the `LB_Improved` third filter.
    LbImprovedPruned,
    /// Exact DTW evaluations started (including abandoned ones).
    ExactStarted,
    /// Exact DTW evaluations abandoned early by the radius threshold.
    EarlyAbandoned,
    /// DTW dynamic-programming cells evaluated.
    DpCells,
    /// Final matches returned.
    Matches,
    /// Database snapshot saves that committed successfully.
    StorageSaves,
    /// Database snapshot saves that failed (the previous snapshot, if any,
    /// is still intact — saves are atomic).
    StorageSaveErrors,
    /// Database snapshot loads that completed successfully.
    StorageLoads,
    /// Database snapshot loads that failed with a typed `StorageError`.
    StorageLoadErrors,
    /// Bytes written by successful snapshot saves.
    StorageBytesWritten,
    /// Bytes read by successful snapshot loads.
    StorageBytesRead,
    /// TCP connections accepted by the serving layer.
    ServerConnections,
    /// Requests admitted into the server's bounded queue.
    ServerRequestsAccepted,
    /// Requests rejected with a typed `Overloaded` response because the
    /// queue was full (never a silent drop).
    ServerRequestsRejectedOverload,
    /// Requests that answered `DeadlineExceeded` (expired in the queue or
    /// aborted inside the verification cascade).
    ServerDeadlineExceeded,
    /// Frames the server could not parse: bad length prefix, truncation,
    /// non-UTF8, malformed JSON, or an unrecognized request shape.
    ServerProtocolErrors,
    /// Request bytes read off the wire (frame headers included).
    ServerBytesIn,
    /// Response bytes written to the wire (frame headers included).
    ServerBytesOut,
    /// High-water mark of the admission queue depth (recorded with
    /// [`MetricsRegistry::record_max`], not an accumulating counter).
    ServerQueueHighWater,
    /// Background maintenance ticks the server ran against its service
    /// (memtable flushes / segment compactions happen inside these).
    ServerMaintenanceTicks,
    /// Maintenance ticks that failed; the service stays queryable, so
    /// these accumulate instead of killing the server.
    ServerMaintenanceErrors,
    /// Transform-planner executions (one per `TransformChoice::Auto`
    /// resolution; reopening a planned index never re-plans, so this
    /// counts builds, not opens).
    PlannerRuns,
    /// Corpus series drawn into planner measurement samples.
    PlannerSampledSeries,
    /// Ordered series pairs the planner measured tightness over.
    PlannerSampledPairs,
    /// Chosen family of the latest plan, as `PlanFamily as u64 + 1`
    /// (recorded with [`MetricsRegistry::record_max`]; 0 means "never
    /// planned").
    PlannerChosenFamilyTag,
    /// Chosen reduced dimension of the latest plan (recorded with
    /// [`MetricsRegistry::record_max`]).
    PlannerChosenDims,
    /// Measured mean tightness of the chosen candidate, in parts per
    /// million (recorded with [`MetricsRegistry::record_max`]).
    PlannerTightnessPpm,
}

impl Metric {
    /// Every counter slot, in export order.
    pub const ALL: [Metric; 39] = [
        Metric::RangeQueries,
        Metric::KnnQueries,
        Metric::ScanRangeQueries,
        Metric::ScanKnnQueries,
        Metric::Batches,
        Metric::Inserts,
        Metric::Removals,
        Metric::IndexNodeAccesses,
        Metric::IndexLeafAccesses,
        Metric::IndexPointsExamined,
        Metric::IndexCandidates,
        Metric::LbPruned,
        Metric::LbImprovedPruned,
        Metric::ExactStarted,
        Metric::EarlyAbandoned,
        Metric::DpCells,
        Metric::Matches,
        Metric::StorageSaves,
        Metric::StorageSaveErrors,
        Metric::StorageLoads,
        Metric::StorageLoadErrors,
        Metric::StorageBytesWritten,
        Metric::StorageBytesRead,
        Metric::ServerConnections,
        Metric::ServerRequestsAccepted,
        Metric::ServerRequestsRejectedOverload,
        Metric::ServerDeadlineExceeded,
        Metric::ServerProtocolErrors,
        Metric::ServerBytesIn,
        Metric::ServerBytesOut,
        Metric::ServerQueueHighWater,
        Metric::ServerMaintenanceTicks,
        Metric::ServerMaintenanceErrors,
        Metric::PlannerRuns,
        Metric::PlannerSampledSeries,
        Metric::PlannerSampledPairs,
        Metric::PlannerChosenFamilyTag,
        Metric::PlannerChosenDims,
        Metric::PlannerTightnessPpm,
    ];

    /// The counter's exported name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::RangeQueries => "engine.queries.range",
            Metric::KnnQueries => "engine.queries.knn",
            Metric::ScanRangeQueries => "engine.queries.scan_range",
            Metric::ScanKnnQueries => "engine.queries.scan_knn",
            Metric::Batches => "engine.batches",
            Metric::Inserts => "engine.inserts",
            Metric::Removals => "engine.removals",
            Metric::IndexNodeAccesses => "index.node_accesses",
            Metric::IndexLeafAccesses => "index.leaf_accesses",
            Metric::IndexPointsExamined => "index.points_examined",
            Metric::IndexCandidates => "index.candidates",
            Metric::LbPruned => "cascade.lb_pruned",
            Metric::LbImprovedPruned => "cascade.lb_improved_pruned",
            Metric::ExactStarted => "cascade.exact_started",
            Metric::EarlyAbandoned => "cascade.early_abandoned",
            Metric::DpCells => "cascade.dp_cells",
            Metric::Matches => "engine.matches",
            Metric::StorageSaves => "storage.saves",
            Metric::StorageSaveErrors => "storage.save_errors",
            Metric::StorageLoads => "storage.loads",
            Metric::StorageLoadErrors => "storage.load_errors",
            Metric::StorageBytesWritten => "storage.bytes_written",
            Metric::StorageBytesRead => "storage.bytes_read",
            Metric::ServerConnections => "server.connections",
            Metric::ServerRequestsAccepted => "server.requests.accepted",
            Metric::ServerRequestsRejectedOverload => "server.requests.rejected_overload",
            Metric::ServerDeadlineExceeded => "server.requests.deadline_exceeded",
            Metric::ServerProtocolErrors => "server.protocol_errors",
            Metric::ServerBytesIn => "server.bytes_in",
            Metric::ServerBytesOut => "server.bytes_out",
            Metric::ServerQueueHighWater => "server.queue_high_water",
            Metric::ServerMaintenanceTicks => "server.maintenance.ticks",
            Metric::ServerMaintenanceErrors => "server.maintenance.errors",
            Metric::PlannerRuns => "planner.runs",
            Metric::PlannerSampledSeries => "planner.sampled_series",
            Metric::PlannerSampledPairs => "planner.sampled_pairs",
            Metric::PlannerChosenFamilyTag => "planner.chosen_family_tag",
            Metric::PlannerChosenDims => "planner.chosen_dims",
            Metric::PlannerTightnessPpm => "planner.tightness_ppm",
        }
    }
}

/// One named duration-histogram slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Timer {
    /// Wall time of one indexed ε-range query.
    RangeQuery,
    /// Wall time of one indexed k-NN query.
    KnnQuery,
    /// Wall time of one brute-force scan query (range or k-NN).
    ScanQuery,
    /// Wall time of one whole batch execution.
    Batch,
    /// Wall time of one served request, from frame decode to response
    /// enqueue (includes queue wait).
    ServerRequest,
    /// Time a request spent waiting in the server's admission queue.
    ServerQueueWait,
}

impl Timer {
    /// Every histogram slot, in export order.
    pub const ALL: [Timer; 6] = [
        Timer::RangeQuery,
        Timer::KnnQuery,
        Timer::ScanQuery,
        Timer::Batch,
        Timer::ServerRequest,
        Timer::ServerQueueWait,
    ];

    /// The histogram's exported name.
    pub fn name(self) -> &'static str {
        match self {
            Timer::RangeQuery => "latency.range_query",
            Timer::KnnQuery => "latency.knn_query",
            Timer::ScanQuery => "latency.scan_query",
            Timer::Batch => "latency.batch",
            Timer::ServerRequest => "latency.server_request",
            Timer::ServerQueueWait => "latency.server_queue_wait",
        }
    }
}

/// Histogram buckets: bucket `b` counts durations in `[2^(b-1), 2^b)` ns
/// (bucket 0 is `[0, 1)`). 40 buckets reach ≈ 9 minutes — far beyond any
/// single query.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A lock-free log₂-bucketed histogram of durations in nanoseconds.
#[derive(Debug)]
pub struct DurationHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl DurationHistogram {
    fn new() -> Self {
        DurationHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn observe_nanos(&self, nanos: u64) {
        let bucket = (u64::BITS - nanos.leading_zeros()) as usize;
        let bucket = bucket.min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Plain-data histogram state (see [`DurationHistogram::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed durations, in nanoseconds.
    pub sum_nanos: u64,
    /// Per-bucket observation counts (bucket `b` covers `[2^(b-1), 2^b)` ns).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observed duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// Upper bound (in ns) of the bucket containing the `q`-quantile
    /// observation, `0 ≤ q ≤ 1`. Returns 0 for an empty histogram.
    pub fn quantile_upper_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 0 } else { (1u64 << b) - 1 };
            }
        }
        (1u64 << (self.buckets.len() - 1)) - 1
    }
}

/// The registry: one fixed atomic slot per [`Metric`] and [`Timer`].
///
/// Shared across threads behind the [`Arc`] inside [`MetricsSink`]; all
/// operations are `&self` and lock-free.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Metric::ALL.len()],
    timers: [DurationHistogram; Timer::ALL.len()],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An all-zero registry.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            timers: std::array::from_fn(|_| DurationHistogram::new()),
        }
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&self, metric: Metric, delta: u64) {
        self.counters[metric as usize].fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of a counter.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counters[metric as usize].load(Ordering::Relaxed)
    }

    /// Raises a counter to `value` if it is below it (lock-free
    /// `fetch_max`) — for high-water-mark style metrics such as
    /// [`Metric::ServerQueueHighWater`].
    #[inline]
    pub fn record_max(&self, metric: Metric, value: u64) {
        self.counters[metric as usize].fetch_max(value, Ordering::Relaxed);
    }

    /// Records one duration into a histogram.
    #[inline]
    pub fn observe_nanos(&self, timer: Timer, nanos: u64) {
        self.timers[timer as usize].observe_nanos(nanos);
    }

    /// The histogram behind a [`Timer`] slot.
    pub fn timer(&self, timer: Timer) -> &DurationHistogram {
        &self.timers[timer as usize]
    }

    /// Absorbs one query's counters (the exact per-stage deltas a
    /// [`QueryTrace`](crate::obs::QueryTrace) would carry for the same
    /// query — the two can never disagree because both read the same
    /// [`EngineStats`]).
    pub fn absorb_query(&self, kind: QueryKind, stats: &EngineStats) {
        let queries = match kind {
            QueryKind::Range => Metric::RangeQueries,
            QueryKind::Knn => Metric::KnnQueries,
            QueryKind::ScanRange => Metric::ScanRangeQueries,
            QueryKind::ScanKnn => Metric::ScanKnnQueries,
        };
        self.add(queries, 1);
        self.add(Metric::IndexNodeAccesses, stats.index.node_accesses);
        self.add(Metric::IndexLeafAccesses, stats.index.leaf_accesses);
        self.add(Metric::IndexPointsExamined, stats.index.points_examined);
        self.add(Metric::IndexCandidates, stats.index.candidates);
        self.add(Metric::LbPruned, stats.lb_pruned);
        self.add(Metric::LbImprovedPruned, stats.lb_improved_pruned);
        self.add(Metric::ExactStarted, stats.exact_computations);
        self.add(Metric::EarlyAbandoned, stats.early_abandoned);
        self.add(Metric::DpCells, stats.dp_cells);
        self.add(Metric::Matches, stats.matches);
    }

    /// A plain-data copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Metric::ALL.iter().map(|&m| CounterSnapshot { name: m.name(), value: self.get(m) }).collect(),
            timers: Timer::ALL
                .iter()
                .map(|&t| TimerSnapshot { name: t.name(), histogram: self.timer(t).snapshot() })
                .collect(),
        }
    }
}

/// One counter's exported state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Exported counter name.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

/// One timer's exported state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// Exported histogram name.
    pub name: &'static str,
    /// Histogram state.
    pub histogram: HistogramSnapshot,
}

/// Plain-data registry state (see [`MetricsRegistry::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Every counter, in [`Metric::ALL`] order.
    pub counters: Vec<CounterSnapshot>,
    /// Every duration histogram, in [`Timer::ALL`] order.
    pub timers: Vec<TimerSnapshot>,
}

impl MetricsSnapshot {
    /// The value of a counter by its [`Metric`] slot.
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == metric.name())
            .map_or(0, |c| c.value)
    }
}

/// Where the engine sends metrics: nowhere (the default), or a shared
/// registry.
///
/// This is the enum-dispatch no-op sink that keeps disabled observability
/// measurably free: every recording helper is an `#[inline]` match with an
/// empty `Disabled` arm, [`MetricsSink::start_timer`] never reads the clock
/// when disabled, and nothing on the path allocates.
#[derive(Debug, Clone, Default)]
pub enum MetricsSink {
    /// Discard everything (no clock reads, no atomics).
    #[default]
    Disabled,
    /// Record into a shared registry.
    Enabled(Arc<MetricsRegistry>),
}

impl MetricsSink {
    /// A sink backed by a fresh registry.
    pub fn enabled() -> Self {
        MetricsSink::Enabled(Arc::new(MetricsRegistry::new()))
    }

    /// `true` when recording somewhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, MetricsSink::Enabled(_))
    }

    /// The registry behind the sink, if enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        match self {
            MetricsSink::Disabled => None,
            MetricsSink::Enabled(r) => Some(r),
        }
    }

    /// Adds `delta` to a counter (no-op when disabled).
    #[inline]
    pub fn add(&self, metric: Metric, delta: u64) {
        if let MetricsSink::Enabled(r) = self {
            r.add(metric, delta);
        }
    }

    /// Raises a high-water-mark counter to `value` (no-op when disabled).
    #[inline]
    pub fn record_max(&self, metric: Metric, value: u64) {
        if let MetricsSink::Enabled(r) = self {
            r.record_max(metric, value);
        }
    }

    /// Starts a wall-clock timer — `None` (no clock read) when disabled.
    #[inline]
    pub fn start_timer(&self) -> Option<Instant> {
        match self {
            MetricsSink::Disabled => None,
            MetricsSink::Enabled(_) => Some(Instant::now()),
        }
    }

    /// Records one duration measured from [`MetricsSink::start_timer`]
    /// (no-op when disabled or when the timer was started disabled).
    #[inline]
    pub fn observe_since(&self, timer: Timer, started: Option<Instant>) {
        if let (MetricsSink::Enabled(r), Some(t0)) = (self, started) {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            r.observe_nanos(timer, nanos);
        }
    }

    /// Absorbs one query's counters and duration (no-op when disabled).
    #[inline]
    pub fn record_query(&self, kind: QueryKind, stats: &EngineStats, started: Option<Instant>) {
        if let MetricsSink::Enabled(r) = self {
            r.absorb_query(kind, stats);
            let timer = match kind {
                QueryKind::Range => Timer::RangeQuery,
                QueryKind::Knn => Timer::KnnQuery,
                QueryKind::ScanRange | QueryKind::ScanKnn => Timer::ScanQuery,
            };
            if let Some(t0) = started {
                let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                r.observe_nanos(timer, nanos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_slot() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::DpCells, 40);
        reg.add(Metric::DpCells, 2);
        reg.add(Metric::Matches, 1);
        assert_eq!(reg.get(Metric::DpCells), 42);
        assert_eq!(reg.get(Metric::Matches), 1);
        assert_eq!(reg.get(Metric::LbPruned), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = DurationHistogram::new();
        h.observe_nanos(0); // bucket 0
        h.observe_nanos(1); // bucket 1
        h.observe_nanos(3); // bucket 2
        h.observe_nanos(1024); // bucket 11
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum_nanos, 1028);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[11], 1);
    }

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let h = DurationHistogram::new();
        for _ in 0..99 {
            h.observe_nanos(100); // bucket 7, upper bound 127
        }
        h.observe_nanos(1_000_000); // bucket 20
        let snap = h.snapshot();
        assert_eq!(snap.quantile_upper_nanos(0.5), 127);
        assert!(snap.quantile_upper_nanos(1.0) >= 1_000_000);
        assert_eq!(HistogramSnapshot { count: 0, sum_nanos: 0, buckets: vec![] }.quantile_upper_nanos(0.5), 0);
    }

    #[test]
    fn oversized_observation_saturates_last_bucket() {
        let h = DurationHistogram::new();
        h.observe_nanos(u64::MAX);
        assert_eq!(h.snapshot().buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = MetricsSink::Disabled;
        assert!(!sink.is_enabled());
        assert!(sink.registry().is_none());
        assert!(sink.start_timer().is_none());
        sink.add(Metric::Matches, 7); // must not panic (and has nowhere to go)
    }

    #[test]
    fn record_max_keeps_the_high_water_mark() {
        let reg = MetricsRegistry::new();
        reg.record_max(Metric::ServerQueueHighWater, 3);
        reg.record_max(Metric::ServerQueueHighWater, 9);
        reg.record_max(Metric::ServerQueueHighWater, 5);
        assert_eq!(reg.get(Metric::ServerQueueHighWater), 9);
        let sink = MetricsSink::Disabled;
        sink.record_max(Metric::ServerQueueHighWater, 100); // inert
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL.len());
    }

    #[test]
    fn snapshot_reads_back_by_slot() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::IndexCandidates, 9);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Metric::IndexCandidates), 9);
        assert_eq!(snap.counter(Metric::Batches), 0);
        assert_eq!(snap.counters.len(), Metric::ALL.len());
        assert_eq!(snap.timers.len(), Timer::ALL.len());
    }
}
