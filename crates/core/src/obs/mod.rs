//! Observability: metrics registry, per-query cascade traces, exporters.
//!
//! The subsystem has two halves with different determinism contracts:
//!
//! * **Counters** ([`MetricsRegistry`], [`QueryTrace`], `EngineStats`) are
//!   monotone `u64` tallies of work performed — pages probed, candidates
//!   pruned per cascade stage, DP cells evaluated, matches returned. They
//!   are pure functions of the query and the immutable index, so they are
//!   bit-identical across runs and thread counts, and they may appear in
//!   result values.
//! * **Timers** ([`Timer`], [`DurationHistogram`]) read the monotonic
//!   clock and are therefore run-dependent. They live *only* inside the
//!   registry's histograms and are never part of a result value or a
//!   trace, so enabling them cannot perturb answers.
//!
//! Everything is off by default: the engine holds a [`MetricsSink`] which
//! is a two-variant enum (`Disabled` / `Enabled(Arc<MetricsRegistry>)`).
//! The disabled variant compiles to a branch on a discriminant — no
//! allocation, no atomics, no clock read — so production paths that don't
//! opt in pay nothing measurable. Per-query traces are likewise opt-in via
//! `QueryRequest::with_trace` and are built *after* the query from the
//! same `EngineStats` the engine already collects, which is what makes the
//! drift guard [`debug_assert_trace_consistent`] a tautology-checker
//! rather than a second bookkeeping system.
//!
//! The module is self-contained: no dependencies beyond `std` and the
//! workspace's own crates (the vendored `serde` facade used by every other
//! exporter in the repo).

mod export;
mod registry;
mod trace;

pub use export::{metrics_to_text, to_json_string, trace_to_text};
pub use registry::{
    CounterSnapshot, DurationHistogram, HistogramSnapshot, Metric, MetricsRegistry,
    MetricsSink, MetricsSnapshot, Timer, TimerSnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{debug_assert_trace_consistent, QueryKind, QueryTrace, Stage, StageTrace};
