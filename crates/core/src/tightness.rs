//! Tightness of lower bound (paper §5.2).
//!
//! `T = (lower bound based on reduced dimension) / (true DTW distance)`,
//! with `T ∈ [0, 1]`; larger is tighter, and a tighter bound means fewer
//! candidates for the exact-DTW refinement step. Figures 6 and 7 of the
//! paper report the mean tightness of competing methods.

use crate::dtw::ldtw_distance;
use crate::envelope::Envelope;
use crate::transform::{feature_lower_bound, EnvelopeTransform};

/// Tightness of one lower bound against one true distance. Defined as 1 when
/// both are (near) zero, and clamped into `[0, 1]` against roundoff.
pub fn tightness(lower_bound: f64, true_distance: f64) -> f64 {
    debug_assert!(lower_bound.is_finite() && true_distance.is_finite());
    if true_distance <= 1e-12 {
        return 1.0;
    }
    (lower_bound / true_distance).clamp(0.0, 1.0)
}

/// Tightness of a transform's feature-space lower bound for the pair
/// `(x, y)` at band `k`: envelope on `y`, features of `x`.
pub fn transform_tightness<T: EnvelopeTransform>(t: &T, x: &[f64], y: &[f64], k: usize) -> f64 {
    let lb = feature_lower_bound(&t.project_envelope(&Envelope::compute(y, k)), &t.project(x));
    tightness(lb, ldtw_distance(x, y, k))
}

/// Tightness of the full-dimension envelope bound (the paper's "LB" method:
/// no reduction, hence no indexing — a sanity ceiling for the reduced
/// methods).
pub fn envelope_tightness(x: &[f64], y: &[f64], k: usize) -> f64 {
    let lb = Envelope::compute(y, k).distance(x);
    tightness(lb, ldtw_distance(x, y, k))
}

/// Mean tightness of a transform over all ordered pairs of distinct series.
pub fn mean_transform_tightness<T: EnvelopeTransform>(t: &T, series: &[Vec<f64>], k: usize) -> f64 {
    mean_over_pairs(series, |x, y| transform_tightness(t, x, y, k))
}

/// Mean full-envelope tightness over all ordered pairs of distinct series.
pub fn mean_envelope_tightness(series: &[Vec<f64>], k: usize) -> f64 {
    mean_over_pairs(series, |x, y| envelope_tightness(x, y, k))
}

fn mean_over_pairs(series: &[Vec<f64>], mut f: impl FnMut(&[f64], &[f64]) -> f64) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, x) in series.iter().enumerate() {
        for (j, y) in series.iter().enumerate() {
            if i == j {
                continue;
            }
            sum += f(x, y);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::paa::{KeoghPaa, NewPaa};

    fn series_set(n: usize, len: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|s| {
                (0..len)
                    .map(|t| (t as f64 * (0.1 + 0.03 * s as f64)).sin() * (1.0 + s as f64 * 0.2))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn tightness_bounds_and_degenerate_case() {
        assert_eq!(tightness(0.5, 1.0), 0.5);
        assert_eq!(tightness(0.0, 0.0), 1.0);
        assert_eq!(tightness(2.0, 1.0), 1.0); // clamped
        assert_eq!(tightness(-0.1, 1.0), 0.0); // clamped
    }

    #[test]
    fn envelope_tightness_dominates_reduced_tightness() {
        // LB (no reduction) uses strictly more information than any reduced
        // bound derived from the same envelope.
        let s = series_set(6, 64);
        let t = NewPaa::new(64, 4);
        for k in [1usize, 4] {
            let full = mean_envelope_tightness(&s, k);
            let reduced = mean_transform_tightness(&t, &s, k);
            assert!(full + 1e-9 >= reduced, "k={k}: {full} < {reduced}");
        }
    }

    #[test]
    fn new_paa_mean_tightness_beats_keogh_paa() {
        let s = series_set(8, 64);
        let new = NewPaa::new(64, 4);
        let keogh = KeoghPaa::new(64, 4);
        for k in [1usize, 3, 6] {
            let tn = mean_transform_tightness(&new, &s, k);
            let tk = mean_transform_tightness(&keogh, &s, k);
            assert!(tn + 1e-12 >= tk, "k={k}: New_PAA {tn} < Keogh_PAA {tk}");
        }
    }

    #[test]
    fn tightness_values_are_valid_probabilities() {
        let s = series_set(5, 32);
        let t = NewPaa::new(32, 4);
        for k in 0..5 {
            let m = mean_transform_tightness(&t, &s, k);
            assert!((0.0..=1.0).contains(&m), "k={k}: {m}");
        }
    }

    #[test]
    fn identical_pair_counts_as_perfectly_tight() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5).sin()).collect();
        let t = NewPaa::new(32, 4);
        assert_eq!(transform_tightness(&t, &x, &x, 2), 1.0);
    }

    #[test]
    fn empty_or_single_collection_gives_zero_mean() {
        let t = NewPaa::new(32, 4);
        assert_eq!(mean_transform_tightness(&t, &[], 1), 0.0);
        let one = series_set(1, 32);
        assert_eq!(mean_transform_tightness(&t, &one, 1), 0.0);
    }
}
