//! Tightness of lower bound (paper §5.2).
//!
//! `T = (lower bound based on reduced dimension) / (true DTW distance)`,
//! with `T ∈ [0, 1]`; larger is tighter, and a tighter bound means fewer
//! candidates for the exact-DTW refinement step. Figures 6 and 7 of the
//! paper report the mean tightness of competing methods.

use crate::dtw::ldtw_distance;
use crate::envelope::Envelope;
use crate::transform::{feature_lower_bound, EnvelopeTransform};

/// Tightness of one lower bound against one true distance. Defined as 1 when
/// both are (near) zero, and clamped into `[0, 1]` against roundoff.
pub fn tightness(lower_bound: f64, true_distance: f64) -> f64 {
    debug_assert!(lower_bound.is_finite() && true_distance.is_finite());
    if true_distance <= 1e-12 {
        return 1.0;
    }
    (lower_bound / true_distance).clamp(0.0, 1.0)
}

/// Tightness of a transform's feature-space lower bound for the pair
/// `(x, y)` at band `k`: envelope on `y`, features of `x`.
pub fn transform_tightness<T: EnvelopeTransform + ?Sized>(t: &T, x: &[f64], y: &[f64], k: usize) -> f64 {
    let lb = feature_lower_bound(&t.project_envelope(&Envelope::compute(y, k)), &t.project(x));
    tightness(lb, ldtw_distance(x, y, k))
}

/// Tightness of the full-dimension envelope bound (the paper's "LB" method:
/// no reduction, hence no indexing — a sanity ceiling for the reduced
/// methods).
pub fn envelope_tightness(x: &[f64], y: &[f64], k: usize) -> f64 {
    let lb = Envelope::compute(y, k).distance(x);
    tightness(lb, ldtw_distance(x, y, k))
}

/// Mean tightness of a transform over all ordered pairs of distinct series.
pub fn mean_transform_tightness<T: EnvelopeTransform + ?Sized>(t: &T, series: &[Vec<f64>], k: usize) -> f64 {
    mean_over_pairs(series, |x, y| transform_tightness(t, x, y, k))
}

/// Mean full-envelope tightness over all ordered pairs of distinct series.
pub fn mean_envelope_tightness(series: &[Vec<f64>], k: usize) -> f64 {
    mean_over_pairs(series, |x, y| envelope_tightness(x, y, k))
}

fn mean_over_pairs(series: &[Vec<f64>], mut f: impl FnMut(&[f64], &[f64]) -> f64) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, x) in series.iter().enumerate() {
        for (j, y) in series.iter().enumerate() {
            if i == j {
                continue;
            }
            sum += f(x, y);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Seeded, capped variant of [`mean_transform_tightness`]: when the set has
/// more than `pair_cap` ordered pairs, the mean is estimated over a
/// deterministic pseudo-random sample of `pair_cap` pairs instead of all
/// `n·(n-1)` of them, so the build-time planner stays cheap on large
/// samples. When `pair_cap` covers every ordered pair the result equals the
/// exhaustive mean exactly; below that the estimate converges on it as the
/// cap grows (same seed, larger cap ⇒ more pairs measured).
pub fn mean_transform_tightness_sampled<T: EnvelopeTransform + ?Sized>(
    t: &T,
    series: &[Vec<f64>],
    k: usize,
    pair_cap: usize,
    seed: u64,
) -> f64 {
    let pairs = sampled_pairs(series.len(), pair_cap, seed);
    if pairs.is_empty() {
        return 0.0;
    }
    let sum: f64 = pairs
        .iter()
        .map(|&(i, j)| transform_tightness(t, &series[i], &series[j], k))
        .sum();
    sum / pairs.len() as f64
}

/// Deterministic pair sample for the capped tightness estimators and the
/// transform planner: ordered pairs `(i, j)`, `i ≠ j`, drawn from `n`
/// items.
///
/// When `cap` covers all `n·(n-1)` ordered pairs the full set is returned
/// in row-major order (so capped and exhaustive estimates coincide
/// exactly); otherwise `cap` pairs are drawn with replacement from a
/// splitmix64 stream keyed on `seed` — the same `(n, cap, seed)` always
/// yields the same pairs, independent of platform or thread count.
pub fn sampled_pairs(n: usize, cap: usize, seed: u64) -> Vec<(usize, usize)> {
    if n < 2 || cap == 0 {
        return Vec::new();
    }
    let all = n * (n - 1);
    if cap >= all {
        let mut pairs = Vec::with_capacity(all);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    pairs.push((i, j));
                }
            }
        }
        return pairs;
    }
    let mut state = seed;
    let mut pairs = Vec::with_capacity(cap);
    while pairs.len() < cap {
        let i = (splitmix64(&mut state) % n as u64) as usize;
        // Draw j from the n-1 non-i slots so every ordered pair is equally
        // likely and no draw is wasted.
        let mut j = (splitmix64(&mut state) % (n - 1) as u64) as usize;
        if j >= i {
            j += 1;
        }
        pairs.push((i, j));
    }
    pairs
}

/// The splitmix64 step: a tiny, high-quality seeded stream used for the
/// deterministic sampling above (the core crate deliberately has no RNG
/// dependency).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::paa::{KeoghPaa, NewPaa};

    fn series_set(n: usize, len: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|s| {
                (0..len)
                    .map(|t| (t as f64 * (0.1 + 0.03 * s as f64)).sin() * (1.0 + s as f64 * 0.2))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn tightness_bounds_and_degenerate_case() {
        assert_eq!(tightness(0.5, 1.0), 0.5);
        assert_eq!(tightness(0.0, 0.0), 1.0);
        assert_eq!(tightness(2.0, 1.0), 1.0); // clamped
        assert_eq!(tightness(-0.1, 1.0), 0.0); // clamped
    }

    #[test]
    fn envelope_tightness_dominates_reduced_tightness() {
        // LB (no reduction) uses strictly more information than any reduced
        // bound derived from the same envelope.
        let s = series_set(6, 64);
        let t = NewPaa::new(64, 4);
        for k in [1usize, 4] {
            let full = mean_envelope_tightness(&s, k);
            let reduced = mean_transform_tightness(&t, &s, k);
            assert!(full + 1e-9 >= reduced, "k={k}: {full} < {reduced}");
        }
    }

    #[test]
    fn new_paa_mean_tightness_beats_keogh_paa() {
        let s = series_set(8, 64);
        let new = NewPaa::new(64, 4);
        let keogh = KeoghPaa::new(64, 4);
        for k in [1usize, 3, 6] {
            let tn = mean_transform_tightness(&new, &s, k);
            let tk = mean_transform_tightness(&keogh, &s, k);
            assert!(tn + 1e-12 >= tk, "k={k}: New_PAA {tn} < Keogh_PAA {tk}");
        }
    }

    #[test]
    fn tightness_values_are_valid_probabilities() {
        let s = series_set(5, 32);
        let t = NewPaa::new(32, 4);
        for k in 0..5 {
            let m = mean_transform_tightness(&t, &s, k);
            assert!((0.0..=1.0).contains(&m), "k={k}: {m}");
        }
    }

    #[test]
    fn identical_pair_counts_as_perfectly_tight() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5).sin()).collect();
        let t = NewPaa::new(32, 4);
        assert_eq!(transform_tightness(&t, &x, &x, 2), 1.0);
    }

    #[test]
    fn empty_or_single_collection_gives_zero_mean() {
        let t = NewPaa::new(32, 4);
        assert_eq!(mean_transform_tightness(&t, &[], 1), 0.0);
        let one = series_set(1, 32);
        assert_eq!(mean_transform_tightness(&t, &one, 1), 0.0);
        assert_eq!(mean_transform_tightness_sampled(&t, &[], 1, 100, 7), 0.0);
        assert_eq!(mean_transform_tightness_sampled(&t, &one, 1, 100, 7), 0.0);
    }

    #[test]
    fn sampled_pairs_is_deterministic_valid_and_exhaustive_at_the_cap() {
        for (n, cap) in [(5, 8), (5, 20), (5, 1000), (12, 64), (2, 1)] {
            let a = sampled_pairs(n, cap, 42);
            let b = sampled_pairs(n, cap, 42);
            assert_eq!(a, b, "n={n} cap={cap}: same seed must give same pairs");
            assert_eq!(a.len(), cap.min(n * (n - 1)));
            assert!(a.iter().all(|&(i, j)| i < n && j < n && i != j));
        }
        // Different seeds actually change the (sub-exhaustive) sample.
        assert_ne!(sampled_pairs(20, 16, 1), sampled_pairs(20, 16, 2));
        // At or above the pair count the full ordered-pair set comes back.
        let full = sampled_pairs(4, 12, 9);
        assert_eq!(full.len(), 12);
        let mut seen = full.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 12, "exhaustive sample has no duplicates");
        assert!(sampled_pairs(0, 10, 1).is_empty());
        assert!(sampled_pairs(1, 10, 1).is_empty());
        assert!(sampled_pairs(10, 0, 1).is_empty());
    }

    #[test]
    fn capped_tightness_converges_on_the_exhaustive_mean() {
        let s = series_set(14, 64); // 182 ordered pairs
        let t = NewPaa::new(64, 4);
        let k = 4;
        let exact = mean_transform_tightness(&t, &s, k);

        // At and above the full pair count the estimate is *exactly* the
        // exhaustive mean.
        let full = mean_transform_tightness_sampled(&t, &s, k, 14 * 13, 5);
        assert!((full - exact).abs() < 1e-12, "cap=all: {full} vs {exact}");

        // Below it, the error shrinks as the cap grows (averaged over a few
        // seeds so the test checks convergence, not one lucky draw).
        let mean_err = |cap: usize| -> f64 {
            let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
            seeds
                .iter()
                .map(|&seed| {
                    (mean_transform_tightness_sampled(&t, &s, k, cap, seed) - exact).abs()
                })
                .sum::<f64>()
                / seeds.len() as f64
        };
        let coarse = mean_err(8);
        let fine = mean_err(128);
        assert!(
            fine <= coarse + 1e-12,
            "capped estimate did not converge: err(8)={coarse} err(128)={fine}"
        );
        assert!(fine < 0.1, "cap=128 estimate too far from exhaustive: {fine}");
    }
}
