//! The framework under the L1 (Manhattan) metric.
//!
//! The paper notes (§4): "The Euclidean distance metric is the distance
//! metric we use for time warping. Other distance metrics are also possible
//! in our framework with some modifications." This module carries out those
//! modifications for L1, where costs add instead of squaring:
//!
//! * [`l1_ldtw`] — band-constrained DTW with `|x_i − y_j|` step costs;
//! * [`l1_envelope_distance`] — the envelope lower bound
//!   `Σ max(0, l_i − x_i, x_i − u_i) ≤ D^{L1}_{DTW(k)}(x, y)` (the Lemma 2
//!   argument is metric-agnostic: any warped alignment within the band stays
//!   inside the envelope pointwise);
//! * [`L1Paa`] — the New_PAA reduction under L1. For frame means,
//!   `frame·|X̄_i − Z̄_i| ≤ Σ_frame |x_t − z_t|` by the triangle inequality,
//!   so frame-weighted L1 distances between PAA features (and envelope-image
//!   intervals) lower-bound the original L1 distance, giving the same
//!   no-false-negative guarantee as Theorem 1.
//!
//! L1 is attractive for pitch series because octave tracker glitches are
//! gross outliers: squaring lets one bad frame dominate the distance, while
//! L1 charges it linearly.

use crate::envelope::Envelope;

/// Band-constrained (Sakoe-Chiba) DTW with L1 step costs.
///
/// # Panics
/// Panics if the series lengths differ or are zero.
#[allow(clippy::needless_range_loop)] // explicit i/j indices mirror the DP recurrence
pub fn l1_ldtw(x: &[f64], y: &[f64], k: usize) -> f64 {
    let n = x.len();
    assert_eq!(n, y.len(), "LDTW requires equal lengths");
    assert!(n > 0, "LDTW of empty series");
    let k = k.min(n - 1);
    let width = 2 * k + 1;
    let inf = f64::INFINITY;
    let mut prev = vec![inf; width];
    let mut curr = vec![inf; width];

    let mut acc = 0.0;
    for j in 0..=k.min(n - 1) {
        acc += (x[0] - y[j]).abs();
        prev[j + k] = acc;
    }
    for i in 1..n {
        curr.iter_mut().for_each(|v| *v = inf);
        let j_lo = i.saturating_sub(k);
        let j_hi = (i + k).min(n - 1);
        for j in j_lo..=j_hi {
            let slot = j + k - i;
            let mut best = inf;
            if slot + 1 < width {
                best = best.min(prev[slot + 1]);
            }
            best = best.min(prev[slot]);
            if slot > 0 {
                best = best.min(curr[slot - 1]);
            }
            curr[slot] = (x[i] - y[j]).abs() + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[k]
}

/// L1 distance between a series and an envelope: the sum of excursions
/// outside the band. Lower-bounds [`l1_ldtw`] at the envelope's band.
///
/// # Panics
/// Panics if lengths differ.
pub fn l1_envelope_distance(env: &Envelope, x: &[f64]) -> f64 {
    assert_eq!(x.len(), env.len(), "length mismatch");
    x.iter()
        .zip(env.lower().iter().zip(env.upper()))
        .map(|(v, (l, u))| {
            if v < l {
                l - v
            } else if v > u {
                v - u
            } else {
                0.0
            }
        })
        .sum()
}

/// The New_PAA reduction under L1: plain frame means as features, frame
/// means of the envelope bounds as the envelope image, and frame-weighted
/// interval distances as the lower bound.
#[derive(Debug, Clone)]
pub struct L1Paa {
    input_len: usize,
    dims: usize,
    frame: usize,
}

impl L1Paa {
    /// Creates the reduction.
    ///
    /// # Panics
    /// Panics unless `dims` divides `input_len`.
    pub fn new(input_len: usize, dims: usize) -> Self {
        assert!(dims > 0, "need at least one output dimension");
        assert_eq!(input_len % dims, 0, "dims must divide the length");
        L1Paa { input_len, dims, frame: input_len / dims }
    }

    /// Frame means of a series.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_len, "series length mismatch");
        x.chunks_exact(self.frame)
            .map(|c| c.iter().sum::<f64>() / self.frame as f64)
            .collect()
    }

    /// Frame-mean intervals of an envelope (the container under L1, by
    /// linearity and positivity of the averaging coefficients).
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn project_envelope(&self, env: &Envelope) -> Vec<(f64, f64)> {
        assert_eq!(env.len(), self.input_len, "envelope length mismatch");
        let lo = self.project(env.lower());
        let hi = self.project(env.upper());
        lo.into_iter().zip(hi).collect()
    }

    /// The feature-space L1 lower bound: `Σ_i frame · dist(X_i, [L_i, U_i])`
    /// never exceeds the true band-`k` L1 DTW distance when the intervals
    /// come from the query's band-`k` envelope.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn lower_bound(&self, envelope_image: &[(f64, f64)], features: &[f64]) -> f64 {
        assert_eq!(envelope_image.len(), self.dims, "envelope image dimension mismatch");
        assert_eq!(features.len(), self.dims, "feature dimension mismatch");
        self.frame as f64
            * features
                .iter()
                .zip(envelope_image)
                .map(|(x, (l, u))| {
                    if x < l {
                        l - x
                    } else if x > u {
                        x - u
                    } else {
                        0.0
                    }
                })
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.4 + phase).sin() * 3.0 + (i % 4) as f64 * 0.2).collect()
    }

    fn l1_pointwise(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum()
    }

    #[test]
    fn l1_ldtw_zero_band_is_pointwise_l1() {
        let x = series(32, 0.0);
        let y = series(32, 1.1);
        assert!((l1_ldtw(&x, &y, 0) - l1_pointwise(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn l1_ldtw_monotone_in_band_and_symmetric() {
        let x = series(40, 0.0);
        let y = series(40, 2.3);
        let mut last = f64::INFINITY;
        for k in 0..8 {
            let d = l1_ldtw(&x, &y, k);
            assert!(d <= last + 1e-12);
            assert!((d - l1_ldtw(&y, &x, k)).abs() < 1e-9);
            last = d;
        }
    }

    #[test]
    fn chain_of_l1_lower_bounds() {
        let x = series(64, 0.0);
        let y = series(64, 1.7);
        let paa = L1Paa::new(64, 8);
        for k in [0usize, 2, 5, 10] {
            let dtw = l1_ldtw(&x, &y, k);
            let env = Envelope::compute(&y, k);
            let lb_env = l1_envelope_distance(&env, &x);
            let lb_feat = paa.lower_bound(&paa.project_envelope(&env), &paa.project(&x));
            assert!(lb_env <= dtw + 1e-9, "k={k}: env {lb_env} > dtw {dtw}");
            assert!(lb_feat <= lb_env + 1e-9, "k={k}: feat {lb_feat} > env {lb_env}");
        }
    }

    #[test]
    fn l1_is_robust_to_an_outlier_spike_relative_to_l2() {
        // One octave glitch (a 12-unit spike): under L2 it dominates, under
        // L1 it contributes linearly. Compare the *ratio* to the clean pair.
        let clean = series(32, 0.0);
        let mut glitched = clean.clone();
        glitched[10] += 12.0;
        let other = series(32, 0.8);
        let l1_ratio = l1_ldtw(&glitched, &other, 2) / l1_ldtw(&clean, &other, 2);
        let l2_ratio = crate::dtw::ldtw_distance_sq(&glitched, &other, 2)
            / crate::dtw::ldtw_distance_sq(&clean, &other, 2);
        assert!(l1_ratio < l2_ratio, "L1 inflation {l1_ratio} vs L2 {l2_ratio}");
    }

    #[test]
    fn projection_is_frame_means() {
        let paa = L1Paa::new(8, 2);
        let x = vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0];
        assert_eq!(paa.project(&x), vec![4.0, 2.0]);
    }

    #[test]
    fn envelope_image_contains_member_projections() {
        let paa = L1Paa::new(32, 4);
        let y = series(32, 0.5);
        let env = Envelope::compute(&y, 3);
        let image = paa.project_envelope(&env);
        for z in [y.clone(), env.lower().to_vec(), env.upper().to_vec()] {
            for (f, (l, u)) in paa.project(&z).iter().zip(&image) {
                assert!(*l <= f + 1e-12 && *f <= u + 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_dims_rejected() {
        let _ = L1Paa::new(10, 4);
    }
}
