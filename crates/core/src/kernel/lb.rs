//! Blocked envelope-LB accumulation (the cascade's first- and second-pass
//! `f64` lower-bound kernels).
//!
//! Both [`KernelMode`] variants compute the *same* floating-point result,
//! bit for bit: the sum of squared excursions is defined as four
//! independent lane accumulators filled in a fixed block order and combined
//! pairwise at the end (`(a0+a1) + (a2+a3)`). The scalar variant walks that
//! recipe with plain loops; the unrolled variant expresses each 4-wide
//! block as independent lane statements so the optimizer can map the lanes
//! onto vector registers — and on x86-64 with AVX2 available it runs the
//! recipe directly on 256-bit vectors (one lane per vector slot). Because
//! the recipe — not the code shape — defines the rounding order, the `simd`
//! feature can only change speed, never bits.
//!
//! Early abandonment is hoisted to block granularity: the running total is
//! compared against the threshold once per [`CHECK_STRIDE`] elements
//! instead of once per element. Squared excursions are non-negative, so
//! prefix sums are monotone non-decreasing and a block-granular check
//! returns `INFINITY` exactly when the full sum exceeds the threshold —
//! the same observable contract as the historical per-element check.

use super::KernelMode;

/// Lane count of the blocked `f64` accumulation. Part of the numeric
/// contract: changing it changes result bits everywhere at once.
pub const F64_LANES: usize = 4;

/// Elements between early-abandon checks (a whole number of lane blocks).
const CHECK_STRIDE: usize = 4 * F64_LANES;

/// Branch-free excursion of `v` outside `[l, u]`: `max(l − v, v − u, 0)`.
///
/// For `l ≤ u` this equals the branchy three-way form: at most one of the
/// differences is positive, and `f64::max` is exact, so the selected value
/// is the identical subtraction result (or exactly `0.0`).
#[inline(always)]
fn excursion(l: f64, u: f64, v: f64) -> f64 {
    (l - v).max(v - u).max(0.0)
}

/// Pairwise combine of the four lane accumulators — the one canonical
/// reduction order.
#[inline(always)]
fn combine(acc: &[f64; F64_LANES]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Folds the trailing `< F64_LANES`-element remainder into the lane
/// accumulators, lane `t` taking tail element `t`. Shared by both variants
/// so the tail order is canonical by construction.
#[inline(always)]
fn accumulate_tail(acc: &mut [f64; F64_LANES], lower: &[f64], upper: &[f64], x: &[f64]) {
    for t in 0..x.len() {
        let d = excursion(lower[t], upper[t], x[t]);
        acc[t] += d * d;
    }
}

/// Sum of squared excursions of `x` outside `[lower, upper]`, blocked
/// accumulation, no early abandon.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn env_lb_sq(mode: KernelMode, lower: &[f64], upper: &[f64], x: &[f64]) -> f64 {
    env_lb_sq_bounded(mode, lower, upper, x, f64::INFINITY)
}

/// Early-abandoning sum of squared excursions: returns `f64::INFINITY` iff
/// the full blocked sum exceeds `threshold_sq`, and the exact blocked sum
/// otherwise. Both modes return identical bits for identical inputs.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn env_lb_sq_bounded(
    mode: KernelMode,
    lower: &[f64],
    upper: &[f64],
    x: &[f64],
    threshold_sq: f64,
) -> f64 {
    assert_eq!(x.len(), lower.len(), "length mismatch");
    assert_eq!(x.len(), upper.len(), "length mismatch");
    match mode {
        KernelMode::Scalar => env_lb_scalar(lower, upper, x, threshold_sq),
        KernelMode::Unrolled => env_lb_unrolled(lower, upper, x, threshold_sq),
    }
}

fn env_lb_scalar(lower: &[f64], upper: &[f64], x: &[f64], threshold_sq: f64) -> f64 {
    let n = x.len();
    let mut acc = [0.0f64; F64_LANES];
    let blocks = n / F64_LANES;
    for b in 0..blocks {
        let base = b * F64_LANES;
        for (lane, a) in acc.iter_mut().enumerate() {
            let i = base + lane;
            let d = excursion(lower[i], upper[i], x[i]);
            *a += d * d;
        }
        if (base + F64_LANES).is_multiple_of(CHECK_STRIDE) && combine(&acc) > threshold_sq {
            return f64::INFINITY;
        }
    }
    let base = blocks * F64_LANES;
    accumulate_tail(&mut acc, &lower[base..], &upper[base..], &x[base..]);
    let total = combine(&acc);
    if total > threshold_sq {
        f64::INFINITY
    } else {
        total
    }
}

fn env_lb_unrolled(lower: &[f64], upper: &[f64], x: &[f64], threshold_sq: f64) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return unsafe { x86::env_lb_avx2(lower, upper, x, threshold_sq) };
    }
    env_lb_unrolled_portable(lower, upper, x, threshold_sq)
}

fn env_lb_unrolled_portable(lower: &[f64], upper: &[f64], x: &[f64], threshold_sq: f64) -> f64 {
    let mut acc = [0.0f64; F64_LANES];
    let mut lc = lower.chunks_exact(F64_LANES);
    let mut uc = upper.chunks_exact(F64_LANES);
    let mut xc = x.chunks_exact(F64_LANES);
    let mut done = 0usize;
    loop {
        // Up to one check stride of 4-wide blocks, each block written as
        // four independent lane statements (no cross-lane dependency).
        let mut in_stride = 0usize;
        while in_stride < CHECK_STRIDE {
            match (lc.next(), uc.next(), xc.next()) {
                (Some(l), Some(u), Some(v)) => {
                    let d0 = excursion(l[0], u[0], v[0]);
                    let d1 = excursion(l[1], u[1], v[1]);
                    let d2 = excursion(l[2], u[2], v[2]);
                    let d3 = excursion(l[3], u[3], v[3]);
                    acc[0] += d0 * d0;
                    acc[1] += d1 * d1;
                    acc[2] += d2 * d2;
                    acc[3] += d3 * d3;
                    in_stride += F64_LANES;
                }
                _ => break,
            }
        }
        done += in_stride;
        if in_stride < CHECK_STRIDE {
            break;
        }
        if done.is_multiple_of(CHECK_STRIDE) && combine(&acc) > threshold_sq {
            return f64::INFINITY;
        }
    }
    accumulate_tail(&mut acc, lc.remainder(), uc.remainder(), xc.remainder());
    let total = combine(&acc);
    if total > threshold_sq {
        f64::INFINITY
    } else {
        total
    }
}

/// AVX2 form of the unrolled shape: one `__m256d` holds the four lane
/// accumulators, so each vector `add` performs exactly the four lane-wise
/// IEEE additions the scalar recipe performs, in the same order — the
/// result is bit-identical by construction, not by tolerance. The excursion
/// keeps `0.0` as the *second* `max` operand: for the finite inputs the
/// engine admits (it validates at insert and query), `_mm256_max_pd` and
/// `f64::max` then select identical values, and a `±0.0` tie squares to
/// `+0.0` either way.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{accumulate_tail, combine, CHECK_STRIDE, F64_LANES};
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_mul_pd, _mm256_setzero_pd,
        _mm256_storeu_pd, _mm256_sub_pd,
    };

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn env_lb_avx2(lower: &[f64], upper: &[f64], x: &[f64], threshold_sq: f64) -> f64 {
        let blocks = x.len() / F64_LANES;
        let stride_blocks = CHECK_STRIDE / F64_LANES;
        let zero = _mm256_setzero_pd();
        let mut acc = zero;
        let mut lanes = [0.0f64; F64_LANES];
        let mut b = 0usize;
        while b < blocks {
            let stop = (b + stride_blocks).min(blocks);
            let stride_is_full = stop - b == stride_blocks;
            while b < stop {
                let i = b * F64_LANES;
                // SAFETY: i + F64_LANES <= blocks * F64_LANES <= len of all
                // three slices (asserted equal by the dispatching caller).
                let l = _mm256_loadu_pd(lower.as_ptr().add(i));
                let u = _mm256_loadu_pd(upper.as_ptr().add(i));
                let v = _mm256_loadu_pd(x.as_ptr().add(i));
                let d = _mm256_max_pd(
                    _mm256_max_pd(_mm256_sub_pd(l, v), _mm256_sub_pd(v, u)),
                    zero,
                );
                acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
                b += 1;
            }
            if stride_is_full {
                _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
                if combine(&lanes) > threshold_sq {
                    return f64::INFINITY;
                }
            }
        }
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let base = blocks * F64_LANES;
        accumulate_tail(&mut lanes, &lower[base..], &upper[base..], &x[base..]);
        let total = combine(&lanes);
        if total > threshold_sq {
            f64::INFINITY
        } else {
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64 * 8.0 - 4.0
            })
            .collect()
    }

    fn bounds(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let a = lcg(seed, n);
        let b = lcg(seed ^ 0x5eed, n);
        let lower: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
        let upper: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
        (lower, upper)
    }

    #[test]
    fn scalar_and_unrolled_are_bit_identical() {
        for n in [0, 1, 3, 4, 7, 15, 16, 17, 63, 64, 65, 200] {
            let (lower, upper) = bounds(n, 42);
            let x = lcg(99, n);
            for thr in [f64::INFINITY, 1e6, 10.0, 1.0, 0.01, 0.0] {
                let s = env_lb_sq_bounded(KernelMode::Scalar, &lower, &upper, &x, thr);
                let u = env_lb_sq_bounded(KernelMode::Unrolled, &lower, &upper, &x, thr);
                assert_eq!(s.to_bits(), u.to_bits(), "n={n} thr={thr}");
            }
        }
    }

    #[test]
    fn portable_unrolled_matches_scalar() {
        // The AVX2 shape is exercised through `Unrolled` wherever the CPU
        // supports it; this pins the portable fallback to the same bits.
        for n in [0, 1, 5, 16, 17, 64, 200] {
            let (lower, upper) = bounds(n, 13);
            let x = lcg(31, n);
            for thr in [f64::INFINITY, 5.0, 0.0] {
                let s = env_lb_sq_bounded(KernelMode::Scalar, &lower, &upper, &x, thr);
                let p = env_lb_unrolled_portable(&lower, &upper, &x, thr);
                assert_eq!(s.to_bits(), p.to_bits(), "n={n} thr={thr}");
            }
        }
    }

    #[test]
    fn bounded_agrees_with_unbounded_below_threshold() {
        let n = 100;
        let (lower, upper) = bounds(n, 7);
        let x = lcg(3, n);
        for mode in [KernelMode::Scalar, KernelMode::Unrolled] {
            let full = env_lb_sq(mode, &lower, &upper, &x);
            assert!(full.is_finite());
            let same = env_lb_sq_bounded(mode, &lower, &upper, &x, full);
            assert_eq!(full.to_bits(), same.to_bits());
            assert_eq!(
                env_lb_sq_bounded(mode, &lower, &upper, &x, full * 0.5),
                f64::INFINITY
            );
        }
    }

    #[test]
    fn matches_sequential_reference_closely() {
        let n = 257;
        let (lower, upper) = bounds(n, 21);
        let x = lcg(77, n);
        let mut reference = 0.0;
        for i in 0..n {
            let d = if x[i] < lower[i] {
                lower[i] - x[i]
            } else if x[i] > upper[i] {
                x[i] - upper[i]
            } else {
                0.0
            };
            reference += d * d;
        }
        let blocked = env_lb_sq(KernelMode::Unrolled, &lower, &upper, &x);
        assert!((blocked - reference).abs() <= 1e-9 * reference.max(1.0));
    }

    #[test]
    fn zero_inside_envelope() {
        let x = lcg(5, 40);
        assert_eq!(env_lb_sq(KernelMode::Unrolled, &x, &x, &x), 0.0);
        assert_eq!(env_lb_sq(KernelMode::Scalar, &x, &x, &x), 0.0);
    }
}
