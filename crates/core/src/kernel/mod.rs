//! SIMD-friendly, cache-conscious kernels for the verification cascade.
//!
//! This layer owns the flat data layouts ([`soa`]) and the three hot inner
//! loops of candidate verification — the envelope-LB accumulation
//! ([`lb`]), which also powers the LB_Improved second pass, the banded-DTW
//! row recurrence ([`dtw_row`]) — plus the conservative `f32` prefilter
//! ([`prefilter`]) that runs before any `f64` work.
//!
//! ## The one rule: modes change speed, never bits
//!
//! Every kernel takes a [`KernelMode`] and implements it twice: a portable
//! scalar form and an explicitly unrolled form written so the optimizer
//! can map independent lanes onto vector registers (no intrinsics — plain
//! stable Rust). The floating-point *recipe* — lane counts, accumulation
//! order, combine tree — is fixed per kernel and shared by both forms, so
//! the two are bit-identical by construction. The `simd` cargo feature
//! only flips [`KernelMode::default`]; `ci.sh` proves the whole engine
//! digest is byte-identical with the feature on and off.

pub mod dtw_row;
pub mod lb;
pub mod prefilter;
pub mod soa;

/// Which implementation shape the kernels run. Both produce identical
/// bits; `Unrolled` is laid out for the autovectorizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelMode {
    /// Portable scalar loops.
    Scalar,
    /// Explicit 4/8-lane unrolling (still stable Rust, no intrinsics).
    Unrolled,
}

impl Default for KernelMode {
    /// `Unrolled` when the crate is built with the `simd` feature,
    /// `Scalar` otherwise.
    fn default() -> Self {
        if cfg!(feature = "simd") {
            KernelMode::Unrolled
        } else {
            KernelMode::Scalar
        }
    }
}
