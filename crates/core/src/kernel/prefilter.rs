//! A provably conservative `f32` prefilter for the envelope-LB stage.
//!
//! The cascade's first `f64` pass charges each candidate the squared
//! excursion of its samples outside the query envelope. This module runs a
//! cheap `f32` version of that pass first, built so its result is **always
//! an underestimate** of the `f64` bound — so pruning on it can never drop
//! a candidate the exact chain would keep (zero false negatives, the
//! paper's Theorem-1 contract), while letting the expensive `f64` work run
//! only on survivors.
//!
//! ## The conservative-rounding argument
//!
//! Three error sources separate the `f32` sum from the `f64` bound, and
//! each is bounded in the safe direction:
//!
//! 1. **Input rounding** is *directed*. Candidate samples `v` are stored
//!    as a mirror `cd ≤ v ≤ cu` ([`f32_down`]/[`f32_up`]); the staged
//!    query envelope keeps `ld ≤ lower` and `uu ≥ upper`. The per-element
//!    real value `e = max(ld − cu, cd − uu, 0)` then satisfies
//!    `e ≤ max(lower − v, v − upper, 0)`, the true excursion, because each
//!    argument only moved down.
//! 2. **Arithmetic rounding** in the `f32` pass (subtract, square, the
//!    blocked adds, the horizontal combine) rounds to nearest, so it can
//!    inflate. Every op inflates by at most `(1 + u)` relatively, with
//!    `u = 2⁻²⁴`; for a padded length `P` there are `P/8` adds per lane
//!    plus a dozen combining ops, so the computed sum is at most
//!    `(1 + u)^(P/8 + 12)` times the real sum of the `e²`.
//! 3. The **final deflation** multiplies the widened sum by
//!    `1 − (P/8 + 16)·2⁻²³` in `f64`. Since `(P/8 + 16)·2⁻²³ =
//!    (P/4 + 32)·u` strictly exceeds the worst-case inflation exponent
//!    bound `(P/8 + 12)·u` (and the `f64` chain's own deficit, at `2⁻⁵³`
//!    scale, is orders of magnitude below the slack), the deflated value
//!    is `≤` the real excursion sum, hence `≤` the `f64` kernel's result.
//!
//! Non-finite corner cases cannot produce a false negative either:
//! directed conversion never yields `+∞` on the down side or `−∞` on the
//! up side, so no subtraction is `∞ − ∞` (no NaN), and an overflowed `+∞`
//! sum fails [`prefilter_exceeds`]'s `is_finite` gate — the candidate just
//! falls through to the exact pass.
//!
//! Counters stay bit-identical with the prefilter on or off: a prefilter
//! prune implies the `f64` envelope pass would have pruned too, so the
//! engine books it under the same `lb_pruned` statistic.

use super::soa::AlignedF32;
use super::KernelMode;
use crate::envelope::Envelope;

/// Lane count of the blocked `f32` accumulation (part of the numeric
/// contract, like [`super::lb::F64_LANES`]).
pub const F32_LANES: usize = 8;

/// Largest finite `f32` strictly below `x` (`x` finite and not already the
/// minimum); identity on NaN and `−∞`. Bit-twiddled because the std
/// equivalent is newer than the workspace MSRV.
fn next_down_f32(x: f32) -> f32 {
    if x.is_nan() || x == f32::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        // Covers both zeros: the next value down is the smallest negative
        // subnormal.
        return -f32::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f32::from_bits(bits - 1)
    } else {
        f32::from_bits(bits + 1)
    }
}

/// Smallest finite `f32` strictly above `x`; identity on NaN and `+∞`.
fn next_up_f32(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f32::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f32::from_bits(bits + 1)
    } else {
        f32::from_bits(bits - 1)
    }
}

/// Rounds `v` **down** to an `f32`: the result, widened back to `f64`, is
/// `≤ v`. Never returns `+∞` for finite `v`.
pub fn f32_down(v: f64) -> f32 {
    let c = v as f32; // round-to-nearest; saturates to ±∞
    if (c as f64) > v {
        next_down_f32(c)
    } else {
        c
    }
}

/// Rounds `v` **up** to an `f32`: the result, widened back to `f64`, is
/// `≥ v`. Never returns `−∞` for finite `v`.
pub fn f32_up(v: f64) -> f32 {
    let c = v as f32;
    if (c as f64) < v {
        next_up_f32(c)
    } else {
        c
    }
}

/// Directed-rounded `f32` mirror of a stored series: `down[i] ≤ v[i] ≤
/// up[i]` pointwise. Built once at insert time, padded with zeros (which
/// contribute exactly `0` excursion against the zero-padded envelope).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SeriesMirror {
    down: AlignedF32,
    up: AlignedF32,
}

impl SeriesMirror {
    /// Builds the mirror of `series`.
    pub fn build(series: &[f64]) -> Self {
        let mut down = AlignedF32::new();
        let mut up = AlignedF32::new();
        down.reset(series.len(), 0.0);
        up.reset(series.len(), 0.0);
        for (i, &v) in series.iter().enumerate() {
            down.as_mut_slice()[i] = f32_down(v);
            up.as_mut_slice()[i] = f32_up(v);
        }
        SeriesMirror { down, up }
    }

    /// Logical series length.
    pub fn len(&self) -> usize {
        self.down.len()
    }

    /// `true` for the mirror of an empty series.
    pub fn is_empty(&self) -> bool {
        self.down.is_empty()
    }

    /// The round-down samples (padded slice).
    pub fn down(&self) -> &[f32] {
        self.down.as_slice()
    }

    /// The round-up samples (padded slice).
    pub fn up(&self) -> &[f32] {
        self.up.as_slice()
    }
}

/// The query envelope staged for the prefilter: lower bounds rounded down,
/// upper bounds rounded up, zero-padded, plus the deflation factor for the
/// staged length. Owned by `QueryScratch` and restaged once per query.
#[derive(Debug, Clone, Default)]
pub struct PrefilterEnvelope {
    lower_down: AlignedF32,
    upper_up: AlignedF32,
    deflate: f64,
}

impl PrefilterEnvelope {
    /// Empty staging area; buffers grow on first use.
    pub fn new() -> Self {
        PrefilterEnvelope::default()
    }

    /// Restages `env` for prefiltering.
    pub fn stage(&mut self, env: &Envelope) {
        let n = env.len();
        self.lower_down.reset(n, 0.0);
        self.upper_up.reset(n, 0.0);
        for (i, (&l, &u)) in env.lower().iter().zip(env.upper()).enumerate() {
            self.lower_down.as_mut_slice()[i] = f32_down(l);
            self.upper_up.as_mut_slice()[i] = f32_up(u);
        }
        let adds_per_lane = self.lower_down.padded_len() / F32_LANES;
        self.deflate = (1.0 - (adds_per_lane + 16) as f64 * (f32::EPSILON as f64)).max(0.0);
    }

    /// Staged logical length (0 until first staged).
    pub fn len(&self) -> usize {
        self.lower_down.len()
    }

    /// `true` until the first [`PrefilterEnvelope::stage`].
    pub fn is_empty(&self) -> bool {
        self.lower_down.is_empty()
    }
}

/// The conservative `f32` lower bound on the `f64` envelope-LB of the
/// mirrored candidate against the staged envelope. Guaranteed `≤` the
/// value `env_lb_sq` computes in `f64` (or non-finite, which callers must
/// treat as "no information"). Both modes return identical bits.
///
/// # Panics
/// Panics if the staged envelope length differs from the mirror length.
pub fn conservative_lb_sq(
    mode: KernelMode,
    env: &PrefilterEnvelope,
    mirror: &SeriesMirror,
) -> f64 {
    assert_eq!(env.len(), mirror.len(), "length mismatch");
    let ld = env.lower_down.as_slice();
    let uu = env.upper_up.as_slice();
    let cd = mirror.down();
    let cu = mirror.up();
    let p = ld.len();
    let mut acc = [0.0f32; F32_LANES];
    match mode {
        KernelMode::Scalar => {
            let mut i = 0;
            while i + F32_LANES <= p {
                for (lane, a) in acc.iter_mut().enumerate() {
                    let t = i + lane;
                    let e = (ld[t] - cu[t]).max(cd[t] - uu[t]).max(0.0);
                    *a += e * e;
                }
                i += F32_LANES;
            }
        }
        KernelMode::Unrolled => {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                let acc = unsafe { x86::accumulate_avx2(ld, uu, cd, cu) };
                return env.deflate * (horizontal(&acc) as f64);
            }
            let mut i = 0;
            while i + F32_LANES <= p {
                let e0 = (ld[i] - cu[i]).max(cd[i] - uu[i]).max(0.0);
                let e1 = (ld[i + 1] - cu[i + 1]).max(cd[i + 1] - uu[i + 1]).max(0.0);
                let e2 = (ld[i + 2] - cu[i + 2]).max(cd[i + 2] - uu[i + 2]).max(0.0);
                let e3 = (ld[i + 3] - cu[i + 3]).max(cd[i + 3] - uu[i + 3]).max(0.0);
                let e4 = (ld[i + 4] - cu[i + 4]).max(cd[i + 4] - uu[i + 4]).max(0.0);
                let e5 = (ld[i + 5] - cu[i + 5]).max(cd[i + 5] - uu[i + 5]).max(0.0);
                let e6 = (ld[i + 6] - cu[i + 6]).max(cd[i + 6] - uu[i + 6]).max(0.0);
                let e7 = (ld[i + 7] - cu[i + 7]).max(cd[i + 7] - uu[i + 7]).max(0.0);
                acc[0] += e0 * e0;
                acc[1] += e1 * e1;
                acc[2] += e2 * e2;
                acc[3] += e3 * e3;
                acc[4] += e4 * e4;
                acc[5] += e5 * e5;
                acc[6] += e6 * e6;
                acc[7] += e7 * e7;
                i += F32_LANES;
            }
        }
    }
    // Padded length is a multiple of F32_LANES, so there is no tail.
    env.deflate * (horizontal(&acc) as f64)
}

/// Pairwise combine of the eight lane accumulators — the one canonical
/// reduction order, shared by every shape.
#[inline(always)]
fn horizontal(acc: &[f32; F32_LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// AVX2 form of the unrolled shape: one `__m256` holds the eight `f32`
/// lane accumulators, so each vector `add` performs exactly the lane-wise
/// additions the scalar recipe performs, in the same order — bit-identical
/// by construction. `0.0` stays the *second* `max` operand; the directed
/// mirrors and the staged envelope can saturate to `±∞` (in the direction
/// that keeps every subtraction NaN-free), where both `max` semantics
/// agree, and an overflowed `+∞` lane flows into the same non-finite sum
/// the portable shape produces.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::F32_LANES;
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_max_ps, _mm256_mul_ps, _mm256_setzero_ps,
        _mm256_storeu_ps, _mm256_sub_ps,
    };

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_avx2(
        ld: &[f32],
        uu: &[f32],
        cd: &[f32],
        cu: &[f32],
    ) -> [f32; F32_LANES] {
        let zero = _mm256_setzero_ps();
        let mut acc = zero;
        let mut i = 0;
        while i + F32_LANES <= ld.len() {
            // SAFETY: i + F32_LANES <= len of all four padded slices (equal
            // lengths asserted by the dispatching caller).
            let l = _mm256_loadu_ps(ld.as_ptr().add(i));
            let u = _mm256_loadu_ps(uu.as_ptr().add(i));
            let d = _mm256_loadu_ps(cd.as_ptr().add(i));
            let c = _mm256_loadu_ps(cu.as_ptr().add(i));
            let e = _mm256_max_ps(
                _mm256_max_ps(_mm256_sub_ps(l, c), _mm256_sub_ps(d, u)),
                zero,
            );
            acc = _mm256_add_ps(acc, _mm256_mul_ps(e, e));
            i += F32_LANES;
        }
        let mut lanes = [0.0f32; F32_LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        lanes
    }
}

/// `true` iff the conservative bound already exceeds `threshold_sq` — in
/// which case the exact `f64` chain is guaranteed to prune this candidate
/// too. Non-finite bounds (overflow) never prune.
pub fn prefilter_exceeds(
    mode: KernelMode,
    env: &PrefilterEnvelope,
    mirror: &SeriesMirror,
    threshold_sq: f64,
) -> bool {
    let lb = conservative_lb_sq(mode, env, mirror);
    lb.is_finite() && lb > threshold_sq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::lb::env_lb_sq;

    #[test]
    fn directed_rounding_brackets() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -0.1,
            1.0 + 1e-9,
            -(1.0 + 1e-9),
            1e30,
            -1e30,
            1e300,
            -1e300,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            3.4028236e38, // just above f32::MAX
        ] {
            let d = f32_down(v) as f64;
            let u = f32_up(v) as f64;
            assert!(d <= v, "down({v}) = {d}");
            assert!(u >= v, "up({v}) = {u}");
            assert!(f32_down(v) != f32::INFINITY);
            assert!(f32_up(v) != f32::NEG_INFINITY);
        }
    }

    #[test]
    fn conservative_bound_never_exceeds_f64_lb() {
        let mut s = 1u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64 * 6.0 - 3.0
        };
        for n in [1usize, 7, 16, 33, 128] {
            let series: Vec<f64> = (0..n).map(|_| next()).collect();
            let query: Vec<f64> = (0..n).map(|_| next()).collect();
            for k in [0usize, 1, 3] {
                let env = Envelope::compute(&query, k);
                let mut staged = PrefilterEnvelope::new();
                staged.stage(&env);
                let mirror = SeriesMirror::build(&series);
                for mode in [KernelMode::Scalar, KernelMode::Unrolled] {
                    let lo = conservative_lb_sq(mode, &staged, &mirror);
                    let exact = env_lb_sq(mode, env.lower(), env.upper(), &series);
                    assert!(lo <= exact, "n={n} k={k}: {lo} > {exact}");
                }
            }
        }
    }

    #[test]
    fn modes_are_bit_identical() {
        let series: Vec<f64> = (0..97).map(|i| ((i * 37) % 19) as f64 * 0.37 - 3.0).collect();
        let query: Vec<f64> = (0..97).map(|i| ((i * 53) % 23) as f64 * 0.29 - 3.0).collect();
        let env = Envelope::compute(&query, 2);
        let mut staged = PrefilterEnvelope::new();
        staged.stage(&env);
        let mirror = SeriesMirror::build(&series);
        let a = conservative_lb_sq(KernelMode::Scalar, &staged, &mirror);
        let b = conservative_lb_sq(KernelMode::Unrolled, &staged, &mirror);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn overflowing_inputs_never_prune() {
        let series = vec![-1e300; 32];
        let query = vec![1e300; 32];
        let env = Envelope::compute(&query, 1);
        let mut staged = PrefilterEnvelope::new();
        staged.stage(&env);
        let mirror = SeriesMirror::build(&series);
        assert!(!prefilter_exceeds(KernelMode::Unrolled, &staged, &mirror, 1.0));
    }

    #[test]
    fn prefilter_is_tight_enough_to_fire() {
        // A far-away candidate must actually be pruned by the prefilter.
        let series = vec![10.0; 64];
        let query = vec![0.0; 64];
        let env = Envelope::compute(&query, 2);
        let mut staged = PrefilterEnvelope::new();
        staged.stage(&env);
        let mirror = SeriesMirror::build(&series);
        for mode in [KernelMode::Scalar, KernelMode::Unrolled] {
            assert!(prefilter_exceeds(mode, &staged, &mirror, 1.0));
        }
    }
}
