//! Flat, cache-line-aligned, length-padded numeric buffers.
//!
//! The kernels in this layer want three things from their operands that a
//! plain `Vec<f64>` does not promise:
//!
//! * **alignment** — the backing storage starts on a 64-byte boundary, so a
//!   lane block never straddles a cache line at the buffer head;
//! * **padding** — the logical length is rounded up to a whole lane block
//!   and the tail is filled with a caller-chosen *neutral* value, so block
//!   loops never need a scalar remainder;
//! * **stability of the padding rule** — padded length is
//!   `len.next_multiple_of(block)` with `block` = one cache line
//!   ([`F64_BLOCK`] = 8 doubles, [`F32_BLOCK`] = 16 floats), documented
//!   here once and relied on everywhere.
//!
//! Buffers are stored as a `Vec` of 64-byte-aligned chunks and exposed as
//! ordinary slices; the two `unsafe` blocks below are the only unsafe code
//! in the crate and do nothing but reinterpret a contiguous chunk array as
//! the scalar slice it already is.

/// Scalars per [`AlignedF64`] chunk: one 64-byte cache line of `f64`.
pub const F64_BLOCK: usize = 8;

/// Scalars per [`AlignedF32`] chunk: one 64-byte cache line of `f32`.
pub const F32_BLOCK: usize = 16;

/// One cache line of doubles.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(64))]
struct ChunkF64([f64; F64_BLOCK]);

/// One cache line of floats.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(64))]
struct ChunkF32([f32; F32_BLOCK]);

/// A 64-byte-aligned, block-padded `f64` buffer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlignedF64 {
    chunks: Vec<ChunkF64>,
    len: usize,
}

impl AlignedF64 {
    /// An empty buffer.
    pub fn new() -> Self {
        AlignedF64::default()
    }

    /// Resizes to logical length `len` (padded to a whole block) and fills
    /// *every* slot — logical and padding alike — with `fill`.
    pub fn reset(&mut self, len: usize, fill: f64) {
        let blocks = len.div_ceil(F64_BLOCK);
        self.chunks.clear();
        self.chunks.resize(blocks, ChunkF64([fill; F64_BLOCK]));
        self.len = len;
    }

    /// Replaces the contents with `x`, padding the tail with `pad`.
    pub fn stage(&mut self, x: &[f64], pad: f64) {
        self.reset(x.len(), pad);
        self.as_mut_slice()[..x.len()].copy_from_slice(x);
    }

    /// Logical (un-padded) length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Padded length: `len().next_multiple_of(F64_BLOCK)`.
    pub fn padded_len(&self) -> usize {
        self.chunks.len() * F64_BLOCK
    }

    /// The full padded storage as a scalar slice.
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: `chunks` is a contiguous array of `ChunkF64`, each a
        // `repr(C)` array of `F64_BLOCK` doubles with no interior padding
        // (align 64 == chunk size 64, so there is no inter-element padding
        // either); reinterpreting it as `padded_len()` doubles covers
        // exactly the same initialized bytes.
        unsafe {
            std::slice::from_raw_parts(self.chunks.as_ptr().cast::<f64>(), self.padded_len())
        }
    }

    /// The full padded storage as a mutable scalar slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        let n = self.padded_len();
        // SAFETY: as in `as_slice`, plus exclusive access via `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<f64>(), n) }
    }
}

/// A 64-byte-aligned, block-padded `f32` buffer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlignedF32 {
    chunks: Vec<ChunkF32>,
    len: usize,
}

impl AlignedF32 {
    /// An empty buffer.
    pub fn new() -> Self {
        AlignedF32::default()
    }

    /// Resizes to logical length `len` (padded to a whole block) and fills
    /// *every* slot — logical and padding alike — with `fill`.
    pub fn reset(&mut self, len: usize, fill: f32) {
        let blocks = len.div_ceil(F32_BLOCK);
        self.chunks.clear();
        self.chunks.resize(blocks, ChunkF32([fill; F32_BLOCK]));
        self.len = len;
    }

    /// Logical (un-padded) length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Padded length: `len().next_multiple_of(F32_BLOCK)`.
    pub fn padded_len(&self) -> usize {
        self.chunks.len() * F32_BLOCK
    }

    /// The full padded storage as a scalar slice.
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: see `AlignedF64::as_slice`; identical layout argument
        // with `F32_BLOCK` floats per 64-byte chunk.
        unsafe {
            std::slice::from_raw_parts(self.chunks.as_ptr().cast::<f32>(), self.padded_len())
        }
    }

    /// The full padded storage as a mutable scalar slice.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        let n = self.padded_len();
        // SAFETY: as in `as_slice`, plus exclusive access via `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<f32>(), n) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_buffer_is_aligned_padded_and_round_trips() {
        let mut buf = AlignedF64::new();
        let data: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        buf.stage(&data, f64::INFINITY);
        assert_eq!(buf.len(), 13);
        assert_eq!(buf.padded_len(), 16);
        assert_eq!(buf.as_slice().as_ptr() as usize % 64, 0);
        assert_eq!(&buf.as_slice()[..13], &data[..]);
        assert!(buf.as_slice()[13..].iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn f32_buffer_is_aligned_and_padded() {
        let mut buf = AlignedF32::new();
        buf.reset(17, 0.0);
        assert_eq!(buf.len(), 17);
        assert_eq!(buf.padded_len(), 32);
        assert_eq!(buf.as_slice().as_ptr() as usize % 64, 0);
        assert!(buf.as_slice().iter().all(|&v| v == 0.0));
        buf.as_mut_slice()[16] = 2.5;
        assert_eq!(buf.as_slice()[16], 2.5);
    }

    #[test]
    fn reset_overwrites_previous_contents() {
        let mut buf = AlignedF64::new();
        buf.stage(&[1.0, 2.0, 3.0], 0.0);
        buf.reset(2, 7.0);
        assert_eq!(buf.as_slice()[..2], [7.0, 7.0]);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn exact_block_lengths_get_no_extra_padding() {
        let mut b64 = AlignedF64::new();
        b64.reset(F64_BLOCK * 3, 0.0);
        assert_eq!(b64.padded_len(), F64_BLOCK * 3);
        let mut b32 = AlignedF32::new();
        b32.reset(F32_BLOCK * 2, 0.0);
        assert_eq!(b32.padded_len(), F32_BLOCK * 2);
    }
}
