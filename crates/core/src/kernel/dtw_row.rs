//! The banded-DTW row recurrence, split so most of it vectorizes.
//!
//! The classic row loop
//!
//! ```text
//! cell(j) = (x_i − y_j)² + min(prev[s+1], prev[s], curr[s−1])
//! ```
//!
//! looks fully serial, but only the `curr[s−1]` operand actually is. The
//! kernel therefore runs each row in three phases over sentinel-padded
//! rows (see the layout notes below):
//!
//! 1. **costs + pairwise mins** (vectorizable): `dd[t] = (x_i − y_j)²` and
//!    `pm[t] = min(prev[s+1], prev[s])` for the whole row — elementwise,
//!    no loop-carried dependency;
//! 2. **serial sweep** (inherently sequential, but tiny): `cell = dd[t] +
//!    min(pm[t], left)`, carrying only `left = cell`;
//! 3. **row minimum** (vectorizable): blocked `min`-reduction over the
//!    freshly written cells for the caller's early-abandon row check.
//!
//! `f64::min` is exact and `+` sees bit-identical operands, so every cell
//! — and hence the final distance and the abandon decision — is
//! bit-identical to the classic loop, in both [`KernelMode`]s.
//!
//! ## Row layout and sentinels
//!
//! Rows store band slots `0..width` at raw indices `1..=width` with
//! permanent `+∞` sentinels at raw `0` and `width + 1` (plus any block
//! padding, also `+∞`). Band edges then need no `if slot + 1 < width` /
//! `if slot > 0` branches: out-of-band reads hit a sentinel and lose every
//! `min` exactly as the branchy code's `∞` initialisation did. Instead of
//! re-filling the whole row with `∞` per row (the old kernel's O(width)
//! reset), the caller clears one *margin* cell on each side of the written
//! span (raw `slot_lo` and raw `slot_hi + 2`). Band spans shift by at most
//! one slot per row in each direction, so those two cells are exactly the
//! stale cells the *next* row's phase 1 could read beyond this row's span.

use super::KernelMode;

/// Computes one banded-DTW row into `curr` and returns the row minimum.
///
/// * `prev` / `curr` — sentinel-padded raw rows (slot `s` at raw `s + 1`);
///   the caller has already cleared the margin cells around the span.
/// * `dd` / `pm` — scratch of at least `y_seg.len()` elements.
/// * `y_seg` — `y[j_lo..=j_hi]`, the candidate segment under the band.
/// * `slot_lo` — band slot of `j_lo` in this row.
///
/// # Panics
/// Panics if the rows or scratch are shorter than the span requires.
#[allow(clippy::too_many_arguments)]
pub fn band_row(
    mode: KernelMode,
    prev: &[f64],
    curr: &mut [f64],
    dd: &mut [f64],
    pm: &mut [f64],
    x_i: f64,
    y_seg: &[f64],
    slot_lo: usize,
) -> f64 {
    let count = y_seg.len();
    let dd = &mut dd[..count];
    let pm = &mut pm[..count];
    // Phase 1: elementwise costs and pairwise predecessor mins.
    // prev operands for slot s = slot_lo + t sit at raw s+1 and s+2.
    let prev_a = &prev[slot_lo + 1..slot_lo + 1 + count];
    let prev_b = &prev[slot_lo + 2..slot_lo + 2 + count];
    match mode {
        KernelMode::Scalar => {
            for t in 0..count {
                let d = x_i - y_seg[t];
                dd[t] = d * d;
                pm[t] = prev_b[t].min(prev_a[t]);
            }
        }
        KernelMode::Unrolled => {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                unsafe { x86::phase1_avx2(dd, pm, x_i, y_seg, prev_a, prev_b) };
            } else {
                phase1_portable(dd, pm, x_i, y_seg, prev_a, prev_b);
            }
            #[cfg(not(target_arch = "x86_64"))]
            phase1_portable(dd, pm, x_i, y_seg, prev_a, prev_b);
        }
    }
    // Phase 2: the serial sweep. The first span cell has no in-row
    // predecessor (no cell of this row lies below `slot_lo`), so `left`
    // seeds at +∞ — exactly the freshly-reset `curr[slot − 1]` the classic
    // loop read there.
    let row = &mut curr[slot_lo + 1..slot_lo + 1 + count];
    let mut left = f64::INFINITY;
    for t in 0..count {
        let cell = dd[t] + pm[t].min(left);
        row[t] = cell;
        left = cell;
    }
    // Phase 3: blocked min-reduction (min is exact, order-free).
    let mut m = [f64::INFINITY; 4];
    let mut chunks = row.chunks_exact(4);
    for c in chunks.by_ref() {
        m[0] = m[0].min(c[0]);
        m[1] = m[1].min(c[1]);
        m[2] = m[2].min(c[2]);
        m[3] = m[3].min(c[3]);
    }
    let mut row_min = m[0].min(m[1]).min(m[2].min(m[3]));
    for &v in chunks.remainder() {
        row_min = row_min.min(v);
    }
    row_min
}

/// Explicitly 4-wide phase 1 for targets without AVX2: independent lane
/// statements the optimizer can map onto whatever vectors the target has.
fn phase1_portable(
    dd: &mut [f64],
    pm: &mut [f64],
    x_i: f64,
    y_seg: &[f64],
    prev_a: &[f64],
    prev_b: &[f64],
) {
    let count = y_seg.len();
    let mut t = 0;
    while t + 4 <= count {
        let d0 = x_i - y_seg[t];
        let d1 = x_i - y_seg[t + 1];
        let d2 = x_i - y_seg[t + 2];
        let d3 = x_i - y_seg[t + 3];
        dd[t] = d0 * d0;
        dd[t + 1] = d1 * d1;
        dd[t + 2] = d2 * d2;
        dd[t + 3] = d3 * d3;
        pm[t] = prev_b[t].min(prev_a[t]);
        pm[t + 1] = prev_b[t + 1].min(prev_a[t + 1]);
        pm[t + 2] = prev_b[t + 2].min(prev_a[t + 2]);
        pm[t + 3] = prev_b[t + 3].min(prev_a[t + 3]);
        t += 4;
    }
    while t < count {
        let d = x_i - y_seg[t];
        dd[t] = d * d;
        pm[t] = prev_b[t].min(prev_a[t]);
        t += 1;
    }
}

/// AVX2 phase 1: the same elementwise costs and pairwise mins on 256-bit
/// vectors. Subtraction and multiplication are exact lane-wise IEEE ops,
/// and DP cells are never NaN (sums of squares and mins of `[0, +∞]`
/// values), so `_mm256_min_pd` selects the same value `f64::min` does —
/// phase 1's outputs, and hence every cell, stay bit-identical.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        _mm256_loadu_pd, _mm256_min_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
        _mm256_sub_pd,
    };

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn phase1_avx2(
        dd: &mut [f64],
        pm: &mut [f64],
        x_i: f64,
        y_seg: &[f64],
        prev_a: &[f64],
        prev_b: &[f64],
    ) {
        let count = y_seg.len();
        let xv = _mm256_set1_pd(x_i);
        let mut t = 0;
        while t + 4 <= count {
            // SAFETY: t + 4 <= count <= len of every slice (the caller
            // sliced dd/pm/prev_a/prev_b to exactly `count`).
            let y = _mm256_loadu_pd(y_seg.as_ptr().add(t));
            let d = _mm256_sub_pd(xv, y);
            _mm256_storeu_pd(dd.as_mut_ptr().add(t), _mm256_mul_pd(d, d));
            let a = _mm256_loadu_pd(prev_a.as_ptr().add(t));
            let b = _mm256_loadu_pd(prev_b.as_ptr().add(t));
            _mm256_storeu_pd(pm.as_mut_ptr().add(t), _mm256_min_pd(b, a));
            t += 4;
        }
        while t < count {
            let d = x_i - y_seg[t];
            dd[t] = d * d;
            pm[t] = prev_b[t].min(prev_a[t]);
            t += 1;
        }
    }
}
