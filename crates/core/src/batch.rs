//! Deterministic batched parallel execution.
//!
//! The engine's per-query code paths are pure functions of the query and the
//! immutable index, so a batch of queries can fan out across threads without
//! changing any answer or counter — *provided* the fan-out itself is
//! deterministic. This module supplies that discipline:
//!
//! * work is split into **fixed-size chunks** whose boundaries depend only on
//!   the input length and the configured chunk size, never on the thread
//!   count or on scheduling;
//! * workers claim chunks from a shared cursor (any order), but every
//!   chunk's results are stored under its chunk index and **merged in chunk
//!   order** afterwards;
//! * each worker owns private scratch state (the engine passes a DTW
//!   workspace), and per-item results are required to be independent of
//!   scratch reuse — the engine guarantees this by reporting work counters
//!   as deltas.
//!
//! Consequently `threads = 1` reproduces the sequential output exactly, and
//! any other thread count reproduces `threads = 1` bit for bit. The
//! regression gate in `ci.sh` runs the determinism tests under
//! `HUM_THREADS=1` and `HUM_THREADS=8` to keep it that way.
//!
//! Observability rides on the same discipline: per-query
//! [`QueryTrace`](crate::obs::QueryTrace)s are plain values inside each
//! item's result (merged in chunk order, hence permutation-invariant), and
//! the shared [`MetricsRegistry`](crate::obs::MetricsRegistry) accumulates
//! `u64` counter deltas whose sums commute — so with tracing on or off, at
//! any thread count, every counter total is identical. Only the registry's
//! wall-clock histograms are run-dependent, and those never feed back into
//! results.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "HUM_THREADS";

/// Fan-out configuration for batched execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Worker threads. `1` executes sequentially on the calling thread.
    pub threads: usize,
    /// Queries per chunk. Chunk boundaries are a function of the batch
    /// length and this value only, so results merge identically for every
    /// thread count.
    pub chunk_size: usize,
}

impl BatchOptions {
    /// Options with an explicit thread count and the default chunk size.
    pub fn with_threads(threads: usize) -> Self {
        BatchOptions { threads: threads.max(1), ..BatchOptions::default() }
    }

    /// Options with explicit thread count and chunk size.
    pub fn new(threads: usize, chunk_size: usize) -> Self {
        BatchOptions { threads: threads.max(1), chunk_size: chunk_size.max(1) }
    }
}

impl Default for BatchOptions {
    /// Threads from `HUM_THREADS` when set (and parseable), otherwise the
    /// machine's available parallelism; chunk size 8.
    ///
    /// The environment is consulted exactly once per process: a `HUM_THREADS`
    /// change after the first default-options construction cannot split one
    /// batch (or one process) across two fan-out configurations.
    fn default() -> Self {
        static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let threads = *THREADS.get_or_init(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&t| t > 0)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
        });
        BatchOptions { threads, chunk_size: 8 }
    }
}

/// Maps `f` over `items`, fanning fixed-size chunks out across
/// `options.threads` scoped workers and returning results in input order.
///
/// `make_state` builds one private scratch value per worker (one total when
/// sequential); `f` receives that state, the item's index in `items`, and
/// the item. For the output to be thread-count-invariant, `f(state, i, x)`
/// must produce the same result regardless of what the state was previously
/// used for — reuse may only affect speed.
pub fn parallel_map_chunked<T, S, R, MS, F>(
    items: &[T],
    options: &BatchOptions,
    make_state: MS,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    MS: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let chunk_size = options.chunk_size.max(1);
    let chunks = items.len().div_ceil(chunk_size);
    let threads = options.threads.max(1).min(chunks.max(1));
    if threads <= 1 {
        let mut state = make_state();
        return items.iter().enumerate().map(|(i, x)| f(&mut state, i, x)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut by_chunk: Vec<Option<Vec<R>>> = std::iter::repeat_with(|| None).take(chunks).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = make_state();
                    let mut done: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks {
                            break;
                        }
                        let lo = c * chunk_size;
                        let hi = (lo + chunk_size).min(items.len());
                        let results: Vec<R> =
                            (lo..hi).map(|i| f(&mut state, i, &items[i])).collect();
                        done.push((c, results));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            // A worker panic (e.g. a validation failure inside `f`)
            // propagates to the caller exactly as in the sequential path.
            for (c, results) in handle.join().unwrap_or_else(|e| std::panic::resume_unwind(e)) {
                by_chunk[c] = Some(results);
            }
        }
    });
    by_chunk
        .into_iter()
        .flat_map(|chunk| chunk.expect("every chunk claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_every_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|v| v * 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            for chunk_size in [1, 4, 7, 200] {
                let got = parallel_map_chunked(
                    &items,
                    &BatchOptions::new(threads, chunk_size),
                    || (),
                    |(), _, v| v * 3,
                );
                assert_eq!(got, expected, "threads={threads} chunk={chunk_size}");
            }
        }
    }

    #[test]
    fn worker_state_is_private_and_reused() {
        // Each worker's state counts its own calls; the sum over all calls
        // must equal the batch size even though the split is nondeterministic.
        use std::sync::atomic::AtomicUsize;
        let calls = AtomicUsize::new(0);
        let items = vec![(); 57];
        let _ = parallel_map_chunked(
            &items,
            &BatchOptions::new(4, 5),
            || 0usize,
            |state, _, ()| {
                *state += 1;
                calls.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn empty_batch_is_empty() {
        let items: Vec<u32> = Vec::new();
        let got = parallel_map_chunked(&items, &BatchOptions::new(8, 4), || (), |(), _, v| *v);
        assert!(got.is_empty());
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec![10usize, 20, 30, 40, 50];
        let got =
            parallel_map_chunked(&items, &BatchOptions::new(2, 2), || (), |(), i, v| (i, *v));
        assert_eq!(got, vec![(0, 10), (1, 20), (2, 30), (3, 40), (4, 50)]);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn worker_panics_propagate() {
        let items = vec![0u32; 16];
        let _ = parallel_map_chunked(&items, &BatchOptions::new(4, 2), || (), |(), i, _| {
            assert!(i != 9, "deliberate");
            i
        });
    }

    #[test]
    fn explicit_constructors_clamp_zero() {
        assert_eq!(BatchOptions::with_threads(0).threads, 1);
        assert_eq!(BatchOptions::new(0, 0), BatchOptions { threads: 1, chunk_size: 1 });
    }
}
