//! Incremental query sessions: query-as-you-hum.
//!
//! A [`QuerySession`] is the first-class query object for interactive
//! retrieval: the hum grows frame by frame (`append`), and each
//! [`QuerySession::refine`] call answers the query over everything appended
//! so far, reusing the existing verification cascade and
//! [`QueryBudget`]/deadline machinery so every refinement is bounded work.
//!
//! # The prefix bit-identity invariant
//!
//! The contract that makes streaming trustworthy:
//!
//! > `refine()` after any sequence of appends returns **bit-identical
//! > matches and counters** to a one-shot query over the same prefix —
//! > at every shard count, thread count, and [`KernelMode`].
//!
//! It holds by construction: the session derives exactly the canonical
//! normal form ([`NormalForm::apply`]) of the appended prefix and executes
//! it through the same [`QueryRequest`] entry points a one-shot caller
//! uses. `crates/core/tests/session.rs` proves it over a shard ×
//! kernel-mode matrix.
//!
//! # What is incremental, and what is re-derived
//!
//! Three pieces of state live in the session:
//!
//! * **Compensated running mean** ([`KahanSum`]) — the shift-normalization
//!   state, O(1) per appended frame. The incremental mean is bit-identical
//!   to a full compensated recompute over the prefix (same additions in
//!   the same order; a proptest drives 10⁴ appends against the batch
//!   form).
//! * **Raw-domain envelope** ([`IncrementalEnvelope`]) — `Env_k` of the
//!   appended frames, *extended* on append instead of recomputed: a new
//!   frame can only touch the trailing `k` envelope entries plus its own,
//!   so appends cost O(k) while a recompute costs O(n). The extension is
//!   bit-identical to [`Envelope::compute`] over the prefix, tie semantics
//!   included. Combined with the running mean,
//!   [`QuerySession::envelope`] yields the envelope of the
//!   *shift-normalized* hum without materializing the shifted series
//!   (min/max commute with a constant shift).
//! * **Canonical normalized view** — re-derived on demand. This is forced,
//!   not lazy engineering: the canonical form resamples the prefix to a
//!   fixed length (tempo invariance, Uniform Time Warping), and every
//!   append moves *every* resample position, so no per-frame state can
//!   extend it. Re-derivation is O(canonical length) and the cascade
//!   dominates refinement cost anyway.
//!
//! [`KernelMode`]: crate::kernel::KernelMode

use std::collections::VecDeque;

use crate::engine::{
    check_finite, DtwIndexEngine, EngineError, QueryBudget, QueryOutcome, QueryRequest,
    QueryScratch,
};
use crate::envelope::Envelope;
use crate::normal::NormalForm;
use crate::shard::ShardedEngine;
use crate::transform::EnvelopeTransform;
use hum_index::SpatialIndex;

/// Kahan-compensated accumulator: sums `f64`s with an error-compensation
/// term so the running total does not drift the way a naive accumulation
/// does over long streams. Deterministic: the same values in the same
/// order produce the same bits, whether added one at a time or replayed in
/// a batch ([`kahan_sum`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// An empty accumulator.
    pub const fn new() -> Self {
        KahanSum { sum: 0.0, compensation: 0.0 }
    }

    /// Adds one value.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let y = x - self.compensation;
        let t = self.sum + y;
        self.compensation = (t - self.sum) - y;
        self.sum = t;
    }

    /// The compensated total.
    pub fn value(&self) -> f64 {
        self.sum
    }
}

/// Batch reference for [`KahanSum`]: the compensated sum of `xs` in order.
/// An incremental accumulator fed the same values is bit-identical.
pub fn kahan_sum(xs: &[f64]) -> f64 {
    let mut acc = KahanSum::new();
    for &x in xs {
        acc.add(x);
    }
    acc.value()
}

/// Compensated mean of `xs` (0.0 for an empty slice).
pub fn kahan_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        kahan_sum(xs) / xs.len() as f64
    }
}

/// The `k`-envelope of a growing series, maintained by *extension*: each
/// appended sample updates at most the trailing `k` envelope entries and
/// adds its own, instead of recomputing all `n` (the windows of entries
/// more than `k` behind the end are complete and never change again).
///
/// Bounds are bit-identical to [`Envelope::compute`] over the current
/// prefix, including tie behaviour: among equal window extremes the
/// latest sample's value wins, matching the monotonic-deque scan (which
/// pops earlier elements on `>=`/`<=` comparisons). The distinction is
/// only observable for `0.0` vs `-0.0`, and the tests pin it.
///
/// Samples must be finite; the session validates before appending.
#[derive(Debug, Clone)]
pub struct IncrementalEnvelope {
    k: usize,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// The last `k + 1` samples — the window of the next appended entry.
    tail: VecDeque<f64>,
}

impl IncrementalEnvelope {
    /// An empty envelope with window half-width `k`.
    pub fn new(k: usize) -> Self {
        IncrementalEnvelope {
            k,
            lower: Vec::new(),
            upper: Vec::new(),
            tail: VecDeque::with_capacity(k.saturating_add(1)),
        }
    }

    /// The window half-width.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of samples appended so far.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// `true` before the first append.
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Lower bounds over the current prefix.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds over the current prefix.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Appends one sample, extending the envelope.
    pub fn append(&mut self, v: f64) {
        let m = self.lower.len();
        // The new sample joins the windows of the trailing `k` entries:
        // entry j sees it iff j + k >= m. Later samples replace equal
        // extremes (the deque's `>=`/`<=` pop rule), so `>=` / `<=` here.
        let first = m.saturating_sub(self.k);
        for j in first..m {
            if v >= self.upper[j] {
                self.upper[j] = v;
            }
            if v <= self.lower[j] {
                self.lower[j] = v;
            }
        }
        // The new entry's own window is the retained tail plus itself,
        // scanned left to right with the same latest-wins tie rule.
        if self.tail.len() > self.k {
            self.tail.pop_front();
        }
        self.tail.push_back(v);
        let mut lo = v;
        let mut hi = v;
        // Iterate oldest→newest so a later equal sample overwrites.
        let mut iter = self.tail.iter();
        if let Some(&first_sample) = iter.next() {
            lo = first_sample;
            hi = first_sample;
            for &s in iter {
                if s >= hi {
                    hi = s;
                }
                if s <= lo {
                    lo = s;
                }
            }
        }
        self.lower.push(lo);
        self.upper.push(hi);
    }

    /// Appends every sample of `xs` in order.
    pub fn extend(&mut self, xs: &[f64]) {
        for &v in xs {
            self.append(v);
        }
    }

    /// The envelope as an owned [`Envelope`], optionally shifted down by
    /// `shift` (min/max commute with a constant shift, so this equals the
    /// envelope of the shifted series bit for bit).
    ///
    /// # Panics
    /// Panics if the envelope is empty (callers check [`Self::is_empty`]).
    pub fn snapshot(&self, shift: f64) -> Envelope {
        assert!(!self.is_empty(), "snapshot of empty incremental envelope");
        if shift == 0.0 {
            Envelope::from_bounds(self.lower.clone(), self.upper.clone())
        } else {
            Envelope::from_bounds(
                self.lower.iter().map(|v| v - shift).collect(),
                self.upper.iter().map(|v| v - shift).collect(),
            )
        }
    }
}

/// An incremental query session: the first-class query object for
/// query-as-you-hum.
///
/// Build one from a [`QueryRequest`] template (kind, band, trace, scan —
/// any series on the template is ignored) plus the [`NormalForm`] the
/// serving system normalizes hums with; then interleave
/// [`append`](Self::append) and [`refine`](Self::refine) as frames
/// arrive. A one-shot query is the degenerate session: open → one append
/// → one refine → drop, and `QbhSystem::try_query_request` is implemented
/// exactly that way.
///
/// ```
/// use hum_core::engine::QueryRequest;
/// use hum_core::normal::NormalForm;
/// use hum_core::session::QuerySession;
///
/// let template = QueryRequest::knn(3).with_band(2);
/// let mut session = QuerySession::new(template, NormalForm::with_length(16));
/// session.append(&[60.0, 62.0, 64.0, 62.0]).unwrap();
/// assert_eq!(session.len(), 4);
/// assert!((session.running_mean() - 62.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct QuerySession {
    template: QueryRequest,
    normal: NormalForm,
    frames: Vec<f64>,
    sum: KahanSum,
    env: IncrementalEnvelope,
}

impl QuerySession {
    /// Opens a session from a request template and a normal form. The
    /// template's series (if any) is ignored; its kind, band, trace and
    /// scan settings apply to every refinement.
    pub fn new(template: QueryRequest, normal: NormalForm) -> Self {
        let band = template.band();
        QuerySession {
            template,
            normal,
            frames: Vec::new(),
            sum: KahanSum::new(),
            env: IncrementalEnvelope::new(band),
        }
    }

    /// Appends raw pitch frames to the hum; returns the total frame count.
    /// Incremental state (compensated mean, raw-domain envelope) updates
    /// in O(band) per frame.
    ///
    /// # Errors
    /// [`EngineError::NonFiniteSample`] naming the offending *session*
    /// frame index (the whole batch is rejected; the session is
    /// unchanged). Streaming ingest validates eagerly, at raw-frame
    /// indices, before resampling could smear the poison.
    pub fn append(&mut self, frames: &[f64]) -> Result<usize, EngineError> {
        if let Some(offset) = frames.iter().position(|v| !v.is_finite()) {
            return Err(EngineError::NonFiniteSample {
                context: "appended frames",
                index: self.frames.len() + offset,
                value: frames[offset],
            });
        }
        for &v in frames {
            self.sum.add(v);
            self.env.append(v);
        }
        self.frames.extend_from_slice(frames);
        Ok(self.frames.len())
    }

    /// The raw frames appended so far.
    pub fn frames(&self) -> &[f64] {
        &self.frames
    }

    /// Number of raw frames appended so far.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` before the first append.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The request template this session refines (series empty).
    pub fn template(&self) -> &QueryRequest {
        &self.template
    }

    /// The normal form applied at refinement.
    pub fn normal_form(&self) -> &NormalForm {
        &self.normal
    }

    /// Compensated running mean of the raw frames (0.0 when empty) — the
    /// session's shift-normalization state, bit-identical to
    /// [`kahan_mean`] over [`Self::frames`].
    pub fn running_mean(&self) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.sum.value() / self.frames.len() as f64
        }
    }

    /// The band-width envelope of the *shift-normalized* raw hum, `None`
    /// before the first append. Maintained by extension (never
    /// recomputed): bit-identical to
    /// `Envelope::compute(&shifted_frames, band)` where `shifted_frames`
    /// subtracts [`Self::running_mean`] from every frame.
    pub fn envelope(&self) -> Option<Envelope> {
        if self.env.is_empty() {
            None
        } else {
            Some(self.env.snapshot(self.running_mean()))
        }
    }

    /// The canonical normalized view of the current prefix — exactly what
    /// a one-shot caller would pass to the engine.
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`] before the first append.
    pub fn normalized_view(&self) -> Result<Vec<f64>, EngineError> {
        if self.frames.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        Ok(self.normal.apply(&self.frames))
    }

    /// Builds the [`QueryRequest`] a refinement executes: the template
    /// with the canonical view of the current prefix and `budget`
    /// attached. Exposed so callers with exotic engines can execute it
    /// themselves; [`Self::refine`] is the common path.
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`] before the first append.
    pub fn to_request(&self, budget: QueryBudget) -> Result<QueryRequest, EngineError> {
        Ok(self.template.clone().with_series(self.normalized_view()?).with_budget(budget))
    }

    /// Refines against a sharded engine: answers the session's query over
    /// everything appended so far, within `budget`. Reuses the existing
    /// cascade and deadline machinery — bit-identical (matches *and*
    /// counters) to a one-shot query over the same prefix at every shard
    /// count, thread count, and kernel mode.
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`] before the first append, plus anything
    /// [`ShardedEngine::try_query_with`] reports —
    /// [`EngineError::DeadlineExceeded`] carries the partial counters when
    /// `budget` expires mid-refinement.
    pub fn refine<T, I>(
        &self,
        engine: &ShardedEngine<T, I>,
        budget: QueryBudget,
        scratch: &mut QueryScratch,
    ) -> Result<QueryOutcome, EngineError>
    where
        T: EnvelopeTransform + Sync,
        I: SpatialIndex + Sync,
    {
        engine.try_query_with(&self.to_request(budget)?, scratch)
    }

    /// [`Self::refine`] against a monolithic engine.
    ///
    /// # Errors
    /// As [`Self::refine`].
    pub fn refine_monolithic<T, I>(
        &self,
        engine: &DtwIndexEngine<T, I>,
        budget: QueryBudget,
        scratch: &mut QueryScratch,
    ) -> Result<QueryOutcome, EngineError>
    where
        T: EnvelopeTransform,
        I: SpatialIndex,
    {
        engine.try_query_with(&self.to_request(budget)?, scratch)
    }
}

/// Re-validates appended frames with engine-boundary semantics; used by
/// serving layers that buffer frames outside a [`QuerySession`] (the wire
/// session store) and want the identical typed rejection.
///
/// # Errors
/// [`EngineError::NonFiniteSample`] at the raw index.
pub fn validate_frames(frames: &[f64]) -> Result<(), EngineError> {
    check_finite(frames, "appended frames")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_incremental_matches_batch() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i as f64) * 0.37).sin() * 1e6 + 1e-6).collect();
        let mut acc = KahanSum::new();
        for &x in &xs {
            acc.add(x);
        }
        assert_eq!(acc.value().to_bits(), kahan_sum(&xs).to_bits());
    }

    #[test]
    fn kahan_beats_naive_on_adversarial_stream() {
        // 1.0 followed by many tiny values a naive f64 sum drops entirely.
        let mut xs = vec![1.0];
        xs.extend(std::iter::repeat_n(1e-16, 10_000));
        let naive: f64 = xs.iter().sum();
        let compensated = kahan_sum(&xs);
        let exact = 1.0 + 1e-16 * 10_000.0;
        assert!((compensated - exact).abs() < (naive - exact).abs());
        assert!((compensated - exact).abs() < 1e-15);
    }

    #[test]
    fn incremental_envelope_matches_full_recompute_on_every_prefix() {
        let xs: Vec<f64> =
            (0..200).map(|i| ((i as f64) * 0.9).sin() * ((i % 5) as f64 + 1.0)).collect();
        for k in [0usize, 1, 3, 8, 64] {
            let mut inc = IncrementalEnvelope::new(k);
            for (n, &v) in xs.iter().enumerate() {
                inc.append(v);
                let full = Envelope::compute(&xs[..=n], k);
                assert_eq!(inc.lower(), full.lower(), "k={k} n={n}");
                assert_eq!(inc.upper(), full.upper(), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn incremental_envelope_ties_match_deque_including_signed_zero() {
        // 0.0 and -0.0 compare equal but differ bitwise; the deque's
        // latest-wins pop rule must be reproduced exactly.
        let xs = [0.0, -0.0, 1.0, -0.0, 0.0, -1.0, -0.0];
        for k in [0usize, 1, 2, 3, 10] {
            let mut inc = IncrementalEnvelope::new(k);
            for (n, &v) in xs.iter().enumerate() {
                inc.append(v);
                let full = Envelope::compute(&xs[..=n], k);
                let bits = |s: &[f64]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(inc.lower()), bits(full.lower()), "k={k} n={n}");
                assert_eq!(bits(inc.upper()), bits(full.upper()), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn session_rejects_non_finite_at_the_raw_index() {
        let mut session =
            QuerySession::new(QueryRequest::knn(1).with_band(2), NormalForm::with_length(16));
        session.append(&[60.0, 61.0]).unwrap();
        let err = session.append(&[62.0, f64::NAN]).unwrap_err();
        match err {
            EngineError::NonFiniteSample { index, .. } => assert_eq!(index, 3),
            other => panic!("expected NonFiniteSample, got {other:?}"),
        }
        // The failed batch left nothing behind.
        assert_eq!(session.len(), 2);
        assert_eq!(session.frames(), &[60.0, 61.0]);
    }

    #[test]
    fn empty_session_refuses_to_build_a_request() {
        let session =
            QuerySession::new(QueryRequest::knn(1).with_band(2), NormalForm::with_length(16));
        assert!(matches!(
            session.to_request(QueryBudget::unlimited()),
            Err(EngineError::EmptyQuery)
        ));
        assert!(session.envelope().is_none());
        assert_eq!(session.running_mean(), 0.0);
    }

    #[test]
    fn session_envelope_equals_envelope_of_shifted_frames() {
        let mut session =
            QuerySession::new(QueryRequest::knn(1).with_band(3), NormalForm::with_length(16));
        let frames: Vec<f64> = (0..40).map(|i| 60.0 + ((i as f64) * 0.7).sin() * 4.0).collect();
        session.append(&frames).unwrap();
        let mu = session.running_mean();
        let shifted: Vec<f64> = frames.iter().map(|v| v - mu).collect();
        let expected = Envelope::compute(&shifted, 3);
        let got = session.envelope().expect("non-empty");
        let bits = |s: &[f64]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(got.lower()), bits(expected.lower()));
        assert_eq!(bits(got.upper()), bits(expected.upper()));
    }

    #[test]
    fn normalized_view_is_the_one_shot_normal_form() {
        let normal = NormalForm::with_length(32);
        let mut session = QuerySession::new(QueryRequest::knn(2).with_band(2), normal);
        let frames: Vec<f64> = (0..55).map(|i| ((i as f64) * 0.31).cos() * 3.0 + 59.0).collect();
        for chunk in frames.chunks(7) {
            session.append(chunk).unwrap();
        }
        let view = session.normalized_view().unwrap();
        let one_shot = normal.apply(&frames);
        assert_eq!(
            view.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            one_shot.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
