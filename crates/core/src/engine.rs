//! The GEMINI query engine for DTW (paper §4.3).
//!
//! Build phase: every database series (already in normal form — equal
//! length, mean-subtracted; see [`crate::normal`]) is reduced to a feature
//! vector and stored in a spatial index.
//!
//! Query phase, for an ε-range query at warping band `k`:
//!
//! 1. compute the query's `k`-envelope and its feature-space image (a box),
//! 2. range-search the index: candidates are points within ε of the box —
//!    by Theorem 1 this never drops a true match,
//! 3. optionally re-filter candidates with the full-dimension envelope bound
//!    (the paper's "LB used as a second filter after the indexing scheme"),
//! 4. verify survivors with the exact banded DTW.
//!
//! k-NN queries use the optimal multi-step scheme (Seidl & Kriegel): probe
//! the index for `k` nearest feature lower bounds, take the `k`-th exact
//! distance as a provisional radius, then close with one exact range query
//! whose candidates are verified best-first under a shrinking radius.
//!
//! Verification runs as a threshold-aware cascade in squared-distance space
//! (one square root per reported match): index box → envelope lower bound →
//! two-pass `LB_Improved` → early-abandoning banded DTW. Each stage is exact
//! with respect to the prune threshold, so the cascade changes only the work
//! counters, never the answers.
//!
//! The warping band is a *query-time* parameter: one index serves every
//! warping width, which is the paper's point that "adding the DTW support
//! requires changes only to the time series query".
//!
//! # The query API
//!
//! Every query path goes through one request type: build a
//! [`QueryRequest`] ([`QueryRequest::range`] / [`QueryRequest::knn`], with
//! optional band override, per-query trace toggle, and brute-force scan
//! fallback) and execute it with [`DtwIndexEngine::query`] (panicking) or
//! [`DtwIndexEngine::try_query`] (returning [`EngineError`]). The legacy
//! entry points — `range_query{,_with}`, `knn{,_with}`, `scan_range`,
//! `scan_knn`, `query_batch` — are thin delegates over the same path and
//! return bit-identical results.
//!
//! # Observability
//!
//! The engine optionally records every query into a shared
//! [`MetricsRegistry`](crate::obs::MetricsRegistry) (see
//! [`DtwIndexEngine::set_metrics`]) and, per request, emits a
//! [`QueryTrace`] of the cascade trajectory. Both are off by default and
//! free when disabled; traces carry counters only (never wall-clock time),
//! so they are bit-identical across runs and thread counts.

use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::time::{Duration, Instant};

use hum_index::{ItemId, Query, QueryStats, SpatialIndex};

use crate::batch::{parallel_map_chunked, BatchOptions};
use crate::dtw::{ldtw_distance_sq_bounded_with_mode, DtwWorkspace};
use crate::envelope::{lb_improved_tail_sq_mode, Envelope, LbScratch};
use crate::kernel::prefilter::{prefilter_exceeds, PrefilterEnvelope, SeriesMirror};
use crate::kernel::KernelMode;
use crate::obs::{debug_assert_trace_consistent, Metric, MetricsSink, QueryKind, QueryTrace, Timer};
use crate::transform::EnvelopeTransform;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Apply the full-dimension envelope lower bound to index candidates
    /// before running exact DTW (cheap and prunes aggressively).
    pub envelope_refinement: bool,
    /// Apply Lemire's two-pass `LB_Improved` to candidates that survive the
    /// envelope bound, before exact DTW (costs two O(n) passes, prunes the
    /// near-misses the plain envelope bound lets through).
    pub lb_improved_refinement: bool,
    /// Abandon exact DTW verification as soon as a DP row proves the
    /// distance exceeds the query radius (or the current k-NN best-so-far).
    pub early_abandon: bool,
    /// Run the conservative `f32` prefilter
    /// ([`crate::kernel::prefilter`]) ahead of the `f64` envelope bound.
    /// Pruning decisions, matches and counters are bit-identical either
    /// way (a prefilter prune is provably also an envelope prune, booked
    /// under the same statistic); the flag only controls whether the
    /// engine builds `f32` mirrors at insert time and consults them.
    /// Ignored while both refinement stages are disabled (the prefilter
    /// fronts the envelope stage, so without one it could change which
    /// stage a candidate dies in).
    pub prefilter: bool,
    /// Which [`KernelMode`] the verification kernels run in. Bit-identical
    /// results in every mode; defaults to the unrolled forms when the
    /// crate is built with the `simd` feature.
    pub kernel: KernelMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            envelope_refinement: true,
            lb_improved_refinement: true,
            early_abandon: true,
            prefilter: true,
            kernel: KernelMode::default(),
        }
    }
}

/// Counters for one engine query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Spatial-index counters (page accesses, candidates, ...).
    pub index: QueryStats,
    /// Candidates removed by the envelope second filter.
    pub lb_pruned: u64,
    /// Candidates removed by the `LB_Improved` third filter.
    pub lb_improved_pruned: u64,
    /// Exact DTW evaluations started (including abandoned ones).
    pub exact_computations: u64,
    /// Exact DTW evaluations abandoned early by the radius threshold.
    pub early_abandoned: u64,
    /// DTW dynamic-programming cells evaluated during verification.
    pub dp_cells: u64,
    /// Final matches returned.
    pub matches: u64,
}

impl EngineStats {
    /// Adds another query's counters into this accumulator (for averaging
    /// work over a batch of queries).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.index.absorb(&other.index);
        self.lb_pruned += other.lb_pruned;
        self.lb_improved_pruned += other.lb_improved_pruned;
        self.exact_computations += other.exact_computations;
        self.early_abandoned += other.early_abandoned;
        self.dp_cells += other.dp_cells;
        self.matches += other.matches;
    }
}

/// A rejected input, reported at the engine boundary before any state is
/// touched (failed calls never mutate the engine or the index).
///
/// The panicking entry points (`insert`, `query`, `range_query`, ...) format
/// these with `Display`, so the legacy panic messages — "must be in normal
/// form", "non-finite sample ...", "duplicate id ..." — are unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineError {
    /// The query series has no samples.
    EmptyQuery,
    /// A series' length differs from the transform's normal-form length.
    LengthMismatch {
        /// What was being validated ("query", "inserted series").
        context: &'static str,
        /// The normal-form length the engine requires.
        expected: usize,
        /// The length that was provided.
        got: usize,
    },
    /// A sample is NaN or infinite; reports exactly where and what.
    NonFiniteSample {
        /// What was being validated ("query", "inserted series").
        context: &'static str,
        /// Index of the first offending sample.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The Sakoe-Chiba band half-width is at least the series length, which
    /// would make the "banded" DTW unconstrained.
    BandTooWide {
        /// The requested half-width.
        band: usize,
        /// The normal-form series length it must stay below.
        len: usize,
    },
    /// An insert reused an id that is already stored.
    DuplicateId(ItemId),
    /// The request's [`QueryBudget`] deadline passed while the query was
    /// running. Carries the counters for the work done up to the abort
    /// point (`matches` is always 0 — partial match sets are never
    /// reported, so a completed query is the only way to observe matches).
    DeadlineExceeded {
        /// Work counters accumulated before the abort.
        stats: EngineStats,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyQuery => write!(f, "empty query: at least one sample is required"),
            EngineError::LengthMismatch { context, expected, got } => write!(
                f,
                "{context} must be in normal form: expected {expected} samples, got {got}"
            ),
            EngineError::NonFiniteSample { context, index, value } => {
                write!(f, "non-finite sample {value} at index {index} in {context}")
            }
            EngineError::BandTooWide { band, len } => {
                write!(f, "band half-width {band} too wide for series length {len}")
            }
            EngineError::DuplicateId(id) => write!(f, "duplicate id {id}"),
            EngineError::DeadlineExceeded { stats } => write!(
                f,
                "deadline exceeded after {} candidates examined ({} exact DTW computations)",
                stats.index.candidates, stats.exact_computations
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Returns the first NaN/infinite sample as an error. The engine validates
/// every series at its boundary — on insert and on query — so non-finite
/// input cannot reach the spatial index or the distance kernels, where it
/// would poison feature boxes and break distance sorting far from its
/// origin. Public so layers above the engine (raw pitch-series ingest)
/// can reject bad input with the same error, at the caller's indices,
/// before any resampling obscures the offending position.
pub fn check_finite(series: &[f64], context: &'static str) -> Result<(), EngineError> {
    match series.iter().position(|v| !v.is_finite()) {
        Some(index) => {
            Err(EngineError::NonFiniteSample { context, index, value: series[index] })
        }
        None => Ok(()),
    }
}

/// Result of a range or k-NN query: `(id, exact DTW distance)` pairs sorted
/// by ascending distance, plus counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Matches sorted by ascending exact DTW distance.
    pub matches: Vec<(ItemId, f64)>,
    /// Work counters for the query.
    pub stats: EngineStats,
}

/// Result of one [`QueryRequest`]: the matches and counters, plus the
/// cascade trace when the request asked for one.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Matches and work counters — identical to the legacy entry points.
    pub result: QueryResult,
    /// The cascade trajectory, present iff [`QueryRequest::with_trace`] was
    /// set. Counters only; bit-identical across runs and thread counts.
    pub trace: Option<QueryTrace>,
}

/// A cooperative time budget for one query.
///
/// The default ([`QueryBudget::unlimited`]) never expires and costs nothing:
/// no clock is read anywhere in the engine. With a deadline set, the run
/// paths poll [`QueryBudget::expired`] once per *candidate* — never inside
/// the distance kernels — so a query that finishes before its deadline does
/// exactly the same arithmetic in exactly the same order as an unbudgeted
/// one and returns bit-identical matches and counters. A query that hits
/// its deadline aborts between candidates with
/// [`EngineError::DeadlineExceeded`], carrying the partial work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryBudget {
    deadline: Option<Instant>,
}

impl QueryBudget {
    /// A budget that never expires (the default).
    pub const fn unlimited() -> Self {
        QueryBudget { deadline: None }
    }

    /// A budget that expires at `deadline`.
    pub const fn with_deadline(deadline: Instant) -> Self {
        QueryBudget { deadline: Some(deadline) }
    }

    /// A budget that expires `timeout` from now. Saturates to unlimited if
    /// the deadline is not representable.
    pub fn within(timeout: Duration) -> Self {
        QueryBudget { deadline: Instant::now().checked_add(timeout) }
    }

    /// The deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// `true` when no deadline is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
    }

    /// `true` once the deadline has passed. Reads the clock only when a
    /// deadline is set.
    #[inline]
    pub fn expired(&self) -> bool {
        match self.deadline {
            None => false,
            Some(deadline) => Instant::now() >= deadline,
        }
    }
}

/// What a [`QueryRequest`] asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestKind {
    /// ε-range query: everything within `radius`.
    Range {
        /// Query radius (plain DTW distance, not squared).
        radius: f64,
    },
    /// k-nearest-neighbors query.
    Knn {
        /// Neighbors requested.
        k: usize,
    },
}

/// One similarity query, built fluently and executed with
/// [`DtwIndexEngine::query`] / [`DtwIndexEngine::try_query`].
///
/// ```
/// use hum_core::engine::QueryRequest;
/// let series = vec![0.25, -0.25, 0.25, -0.25];
/// let request = QueryRequest::knn(5).with_series(series).with_band(1).with_trace(true);
/// assert_eq!(request.band(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    series: Vec<f64>,
    kind: RequestKind,
    band: usize,
    trace: bool,
    scan: bool,
    budget: QueryBudget,
}

impl QueryRequest {
    /// An ε-range request at `radius`. Attach the query series with
    /// [`QueryRequest::with_series`].
    pub fn range(radius: f64) -> Self {
        QueryRequest {
            series: Vec::new(),
            kind: RequestKind::Range { radius },
            band: 0,
            trace: false,
            scan: false,
            budget: QueryBudget::unlimited(),
        }
    }

    /// A k-NN request. Attach the query series with
    /// [`QueryRequest::with_series`].
    pub fn knn(k: usize) -> Self {
        QueryRequest {
            series: Vec::new(),
            kind: RequestKind::Knn { k },
            band: 0,
            trace: false,
            scan: false,
            budget: QueryBudget::unlimited(),
        }
    }

    /// Sets the normal-form query series.
    pub fn with_series(mut self, series: impl Into<Vec<f64>>) -> Self {
        self.series = series.into();
        self
    }

    /// Overrides the Sakoe-Chiba band half-width (default 0 = no warping).
    pub fn with_band(mut self, band: usize) -> Self {
        self.band = band;
        self
    }

    /// Toggles the per-query cascade trace (default off).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Toggles the brute-force scan fallback: bypass the spatial index and
    /// run the verification cascade over every stored series (default off).
    pub fn with_scan(mut self, scan: bool) -> Self {
        self.scan = scan;
        self
    }

    /// The query series.
    pub fn series(&self) -> &[f64] {
        &self.series
    }

    /// What the request asks for.
    pub fn kind(&self) -> RequestKind {
        self.kind
    }

    /// The Sakoe-Chiba band half-width.
    pub fn band(&self) -> usize {
        self.band
    }

    /// `true` when a [`QueryTrace`] was requested.
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }

    /// `true` when the brute-force scan fallback was requested.
    pub fn scan_enabled(&self) -> bool {
        self.scan
    }

    /// Attaches a time budget (default [`QueryBudget::unlimited`]).
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The time budget.
    pub fn budget(&self) -> QueryBudget {
        self.budget
    }
}

/// Reusable per-query scratch: the DTW workspace, the `LB_Improved`
/// scratch, and the staged `f32` prefilter envelope. One per worker thread
/// amortizes the row allocations across an entire batch; the engine
/// reports `dp_cells` as a per-query delta, so reuse never changes any
/// counter.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    ws: DtwWorkspace,
    lb: LbScratch,
    pf: PrefilterEnvelope,
}

impl QueryScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        QueryScratch::default()
    }
}

/// A stored series plus (when the engine's prefilter is enabled) its
/// directed-rounded `f32` mirror, built once at insert time.
#[derive(Debug, Clone)]
struct StoredSeries {
    samples: Vec<f64>,
    mirror: Option<SeriesMirror>,
}

/// A DTW similarity-search engine over a spatial index backend.
#[derive(Debug, Clone)]
pub struct DtwIndexEngine<T, I> {
    transform: T,
    index: I,
    series: HashMap<ItemId, StoredSeries>,
    config: EngineConfig,
    metrics: MetricsSink,
}

impl<T: EnvelopeTransform, I: SpatialIndex> DtwIndexEngine<T, I> {
    /// Creates an engine from a transform and an (empty) index backend.
    /// Metrics start [disabled](MetricsSink::Disabled).
    ///
    /// # Panics
    /// Panics if the index dimensionality differs from the transform output.
    pub fn new(transform: T, index: I, config: EngineConfig) -> Self {
        assert_eq!(
            index.dims(),
            transform.output_dims(),
            "index dimensionality must match the transform output"
        );
        DtwIndexEngine {
            transform,
            index,
            series: HashMap::new(),
            config,
            metrics: MetricsSink::Disabled,
        }
    }

    /// Builder form of [`DtwIndexEngine::set_metrics`].
    pub fn with_metrics(mut self, sink: MetricsSink) -> Self {
        self.metrics = sink;
        self
    }

    /// Points the engine at a metrics sink. Pass
    /// [`MetricsSink::enabled`] (or share one registry across engines via
    /// `MetricsSink::Enabled(arc.clone())`) to start recording;
    /// [`MetricsSink::Disabled`] to stop. Cloning an engine shares its
    /// sink. Enabling metrics never changes matches or [`EngineStats`] —
    /// only what gets recorded on the side.
    pub fn set_metrics(&mut self, sink: MetricsSink) {
        self.metrics = sink;
    }

    /// The metrics sink in use (disabled by default).
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Number of indexed series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` if no series are indexed.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Normal-form length every series must have.
    pub fn series_len(&self) -> usize {
        self.transform.input_len()
    }

    /// The transform in use.
    pub fn transform(&self) -> &T {
        &self.transform
    }

    /// The index backend in use.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Looks up a stored series.
    pub fn get(&self, id: ItemId) -> Option<&[f64]> {
        self.series.get(&id).map(|s| s.samples.as_slice())
    }

    /// Inserts a normal-form series under `id` (replacing nothing: ids must
    /// be unique). On error the engine is unchanged.
    pub fn try_insert(&mut self, id: ItemId, series: Vec<f64>) -> Result<(), EngineError> {
        if series.len() != self.transform.input_len() {
            return Err(EngineError::LengthMismatch {
                context: "inserted series",
                expected: self.transform.input_len(),
                got: series.len(),
            });
        }
        check_finite(&series, "inserted series")?;
        if self.series.contains_key(&id) {
            return Err(EngineError::DuplicateId(id));
        }
        let features = self.transform.project(&series);
        let mirror = self.config.prefilter.then(|| SeriesMirror::build(&series));
        self.series.insert(id, StoredSeries { samples: series, mirror });
        self.index.insert(id, features);
        self.metrics.add(Metric::Inserts, 1);
        Ok(())
    }

    /// Panicking form of [`DtwIndexEngine::try_insert`].
    ///
    /// # Panics
    /// Panics if the length is wrong, the id is already present, or any
    /// sample is NaN/infinite.
    pub fn insert(&mut self, id: ItemId, series: Vec<f64>) {
        self.try_insert(id, series).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Removes the series stored under `id` from both the store and the
    /// index. Returns `true` if it was present.
    pub fn remove(&mut self, id: ItemId) -> bool {
        if self.series.remove(&id).is_none() {
            return false;
        }
        let removed = self.index.remove(id);
        debug_assert!(removed, "series and index must stay in lockstep");
        self.metrics.add(Metric::Removals, 1);
        true
    }

    /// Rejects malformed query input; every query path calls this before
    /// touching the index, so failed queries observe nothing and count
    /// nothing. `pub(crate)` so the sharded engine can validate once before
    /// fanning a request out.
    pub(crate) fn validate_query(&self, query: &[f64], band: usize) -> Result<(), EngineError> {
        if query.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        if query.len() != self.transform.input_len() {
            return Err(EngineError::LengthMismatch {
                context: "query",
                expected: self.transform.input_len(),
                got: query.len(),
            });
        }
        check_finite(query, "query")?;
        if band >= query.len() {
            return Err(EngineError::BandTooWide { band, len: query.len() });
        }
        Ok(())
    }

    /// Executes a request against this engine. The single entry point every
    /// other query method delegates to.
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`], [`EngineError::LengthMismatch`],
    /// [`EngineError::NonFiniteSample`], or [`EngineError::BandTooWide`] —
    /// all reported before any work (or metrics recording) happens — plus
    /// [`EngineError::DeadlineExceeded`] when the request carries a
    /// [`QueryBudget`] whose deadline passes mid-query.
    pub fn try_query(&self, request: &QueryRequest) -> Result<QueryOutcome, EngineError> {
        self.try_query_with(request, &mut QueryScratch::new())
    }

    /// [`DtwIndexEngine::try_query`] computing in caller-provided scratch.
    /// Results and counters are identical to a fresh-scratch call — reuse
    /// only avoids the per-query row allocations.
    pub fn try_query_with(
        &self,
        request: &QueryRequest,
        scratch: &mut QueryScratch,
    ) -> Result<QueryOutcome, EngineError> {
        self.validate_query(&request.series, request.band)?;
        self.run_request(request, scratch)
    }

    /// Panicking form of [`DtwIndexEngine::try_query`].
    ///
    /// # Panics
    /// Panics on any [`EngineError`] the `try_` form would return.
    pub fn query(&self, request: &QueryRequest) -> QueryOutcome {
        self.try_query(request).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Panicking form of [`DtwIndexEngine::try_query_with`].
    ///
    /// # Panics
    /// Panics on any [`EngineError`] the `try_` form would return.
    pub fn query_with(&self, request: &QueryRequest, scratch: &mut QueryScratch) -> QueryOutcome {
        self.try_query_with(request, scratch).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Dispatches a *validated* request, records it into the metrics sink,
    /// and builds the trace if asked. Shared by the single-query and batch
    /// paths, and by the sharded engine's per-shard fan-out (hence
    /// `pub(crate)`). A deadline abort surfaces as
    /// [`EngineError::DeadlineExceeded`] with the partial counters and is
    /// *not* recorded as a completed query in the metrics sink (the serving
    /// layer counts aborts separately).
    pub(crate) fn run_request(
        &self,
        request: &QueryRequest,
        scratch: &mut QueryScratch,
    ) -> Result<QueryOutcome, EngineError> {
        let started = self.metrics.start_timer();
        let query = request.series.as_slice();
        let band = request.band;
        let budget = request.budget;
        let (kind, run) = match (request.kind, request.scan) {
            (RequestKind::Range { radius }, false) => {
                (QueryKind::Range, self.run_range(query, band, radius, budget, scratch))
            }
            (RequestKind::Knn { k }, false) => {
                (QueryKind::Knn, self.run_knn(query, band, k, budget, scratch))
            }
            (RequestKind::Range { radius }, true) => {
                (QueryKind::ScanRange, self.run_scan_range(query, band, radius, budget, scratch))
            }
            (RequestKind::Knn { k }, true) => {
                (QueryKind::ScanKnn, self.run_scan_knn(query, band, k, budget, scratch))
            }
        };
        let result = match run {
            Ok(result) => result,
            Err(stats) => return Err(EngineError::DeadlineExceeded { stats }),
        };
        self.metrics.record_query(kind, &result.stats, started);
        let trace = request.trace.then(|| {
            let candidates_in = match kind {
                // Indexed paths: the cascade sees the index's candidate set.
                QueryKind::Range | QueryKind::Knn => result.stats.index.candidates,
                // Scan paths: the cascade sees the whole database.
                QueryKind::ScanRange | QueryKind::ScanKnn => self.series.len() as u64,
            };
            let trace = QueryTrace::from_stats(kind, band, candidates_in, &result.stats);
            debug_assert_trace_consistent(&trace, &result.stats);
            trace
        });
        Ok(QueryOutcome { result, trace })
    }

    /// Runs the post-index verification cascade for one candidate at a fixed
    /// squared threshold. Returns `Some(d_sq)` when the candidate's exact
    /// squared distance was computed and is `≤ threshold_sq`… or when exact
    /// DTW ran un-abandoned and produced any finite value (callers compare
    /// against their own threshold); `None` when a stage pruned it.
    #[allow(clippy::too_many_arguments)]
    fn cascade_verify(
        &self,
        query: &[f64],
        envelope: &Envelope,
        band: usize,
        stored: &StoredSeries,
        threshold_sq: f64,
        precomputed_lb_sq: Option<f64>,
        pf: Option<&PrefilterEnvelope>,
        stats: &mut EngineStats,
        ws: &mut DtwWorkspace,
        scratch: &mut LbScratch,
    ) -> Option<f64> {
        let mode = self.config.kernel;
        let series = stored.samples.as_slice();
        let use_env = self.config.envelope_refinement || self.config.lb_improved_refinement;
        let mut lb_sq = 0.0;
        if use_env {
            lb_sq = match precomputed_lb_sq {
                Some(lb) => lb,
                None => {
                    // Conservative f32 prefilter: its bound never exceeds
                    // the f64 envelope bound below, so a prune here is a
                    // prune the envelope stage was about to make — booked
                    // under the same counter, skipping the f64 pass.
                    if let (Some(pf), Some(mirror)) = (pf, stored.mirror.as_ref()) {
                        if prefilter_exceeds(mode, pf, mirror, threshold_sq) {
                            stats.lb_pruned += 1;
                            return None;
                        }
                    }
                    envelope.distance_sq_bounded_mode(series, threshold_sq, mode)
                }
            };
            if lb_sq > threshold_sq {
                stats.lb_pruned += 1;
                return None;
            }
        }
        if self.config.lb_improved_refinement {
            let tail = lb_improved_tail_sq_mode(
                query,
                envelope,
                series,
                band,
                threshold_sq - lb_sq,
                scratch,
                mode,
            );
            if lb_sq + tail > threshold_sq {
                stats.lb_improved_pruned += 1;
                return None;
            }
        }
        stats.exact_computations += 1;
        let dtw_threshold = if self.config.early_abandon { threshold_sq } else { f64::INFINITY };
        let d_sq = ldtw_distance_sq_bounded_with_mode(ws, query, series, band, dtw_threshold, mode);
        if d_sq.is_infinite() {
            stats.early_abandoned += 1;
            return None;
        }
        Some(d_sq)
    }

    /// Whether this query should stage and consult the `f32` prefilter: it
    /// fronts the `f64` envelope stage, so it runs only when that stage
    /// does (keeping counters identical with the prefilter off).
    fn prefilter_active(&self) -> bool {
        self.config.prefilter
            && (self.config.envelope_refinement || self.config.lb_improved_refinement)
    }

    /// ε-range query: all series whose band-`k` DTW distance to `query` is
    /// at most `radius`. Guaranteed free of false negatives.
    ///
    /// # Panics
    /// Panics if `query.len()` differs from the normal-form length or the
    /// query contains NaN/infinite samples.
    #[deprecated(
        since = "0.1.0",
        note = "build a QueryRequest::range and use try_query (typed errors) or query"
    )]
    pub fn range_query(&self, query: &[f64], band: usize, radius: f64) -> QueryResult {
        #[allow(deprecated)]
        self.range_query_with(query, band, radius, &mut QueryScratch::new())
    }

    /// [`DtwIndexEngine::range_query`] computing in caller-provided scratch.
    /// Results and counters are identical to a fresh-scratch call — reuse
    /// only avoids the per-query row allocations.
    #[deprecated(
        since = "0.1.0",
        note = "build a QueryRequest::range and use try_query_with (typed errors) or query_with"
    )]
    pub fn range_query_with(
        &self,
        query: &[f64],
        band: usize,
        radius: f64,
        scratch: &mut QueryScratch,
    ) -> QueryResult {
        let request = QueryRequest::range(radius).with_series(query).with_band(band);
        self.query_with(&request, scratch).result
    }

    /// The indexed range path. Input already validated. `Err` carries the
    /// partial counters when the budget's deadline passes between
    /// candidates.
    fn run_range(
        &self,
        query: &[f64],
        band: usize,
        radius: f64,
        budget: QueryBudget,
        scratch: &mut QueryScratch,
    ) -> Result<QueryResult, EngineStats> {
        let cells_before = scratch.ws.cells();
        let radius_sq = radius * radius;
        let envelope = Envelope::compute(query, band);
        let feature_box = self.transform.project_envelope(&envelope);
        let (candidates, index_stats) =
            self.index.range_query(&Query::Rect(feature_box), radius);

        let mut stats = EngineStats { index: index_stats, ..EngineStats::default() };
        let QueryScratch { ws, lb, pf } = scratch;
        if self.prefilter_active() {
            pf.stage(&envelope);
        }
        let pf: Option<&PrefilterEnvelope> = self.prefilter_active().then_some(&*pf);
        let mut matches = Vec::new();
        for id in candidates {
            if budget.expired() {
                stats.dp_cells = ws.cells() - cells_before;
                return Err(stats);
            }
            let stored = &self.series[&id];
            if let Some(d_sq) = self.cascade_verify(
                query, &envelope, band, stored, radius_sq, None, pf, &mut stats, ws, lb,
            ) {
                if d_sq <= radius_sq {
                    matches.push((id, d_sq.sqrt()));
                }
            }
        }
        sort_by_distance(&mut matches);
        stats.matches = matches.len() as u64;
        stats.dp_cells = ws.cells() - cells_before;
        Ok(QueryResult { matches, stats })
    }

    /// k-NN query under band-`k` DTW via the optimal multi-step scheme.
    ///
    /// # Panics
    /// Panics if `query.len()` differs from the normal-form length or the
    /// query contains NaN/infinite samples.
    #[deprecated(
        since = "0.1.0",
        note = "build a QueryRequest::knn and use try_query (typed errors) or query"
    )]
    pub fn knn(&self, query: &[f64], band: usize, k: usize) -> QueryResult {
        #[allow(deprecated)]
        self.knn_with(query, band, k, &mut QueryScratch::new())
    }

    /// [`DtwIndexEngine::knn`] computing in caller-provided scratch. Results
    /// and counters are identical to a fresh-scratch call.
    #[deprecated(
        since = "0.1.0",
        note = "build a QueryRequest::knn and use try_query_with (typed errors) or query_with"
    )]
    pub fn knn_with(
        &self,
        query: &[f64],
        band: usize,
        k: usize,
        scratch: &mut QueryScratch,
    ) -> QueryResult {
        let request = QueryRequest::knn(k).with_series(query).with_band(band);
        self.query_with(&request, scratch).result
    }

    /// The indexed k-NN path. Input already validated. `Err` carries the
    /// partial counters when the budget's deadline passes between
    /// candidates.
    ///
    /// Runs as two phases — probe, then close — so the sharded engine can
    /// interleave a cross-shard radius barrier between them. With the local
    /// probes as both heap seed and skip set, the two phases compose to
    /// exactly the pre-split single-pass code: matches and every counter are
    /// bit-identical.
    fn run_knn(
        &self,
        query: &[f64],
        band: usize,
        k: usize,
        budget: QueryBudget,
        scratch: &mut QueryScratch,
    ) -> Result<QueryResult, EngineStats> {
        if k == 0 || self.series.is_empty() {
            return Ok(QueryResult::default());
        }
        // Steps 1-2: probes by ascending feature lower bound, with exact
        // distances; the provisional radius is their maximum.
        let (probes, mut stats) = self.knn_probe_phase(query, band, k, budget, scratch)?;
        let radius_sq = probes.iter().fold(0.0f64, |acc, &(_, d_sq)| acc.max(d_sq));
        let known: std::collections::HashSet<ItemId> =
            probes.iter().map(|&(id, _)| id).collect();
        // Steps 3-4: closing range query at the provisional radius, verified
        // best-first under the shrinking top-k threshold.
        let (survivors, close_stats) =
            match self.knn_close_phase(query, band, k, radius_sq, &probes, &known, budget, scratch)
            {
                Ok(done) => done,
                Err(partial) => {
                    stats.absorb(&partial);
                    return Err(stats);
                }
            };
        stats.absorb(&close_stats);
        // Survivors hold the top-k of everything verified (seeds included);
        // folding the probe pool back in and deduping by id is a no-op for
        // the top-k but lets the sharded caller use the same assembly.
        let matches = assemble_knn_matches(vec![probes, survivors], k);
        stats.matches = matches.len() as u64;
        Ok(QueryResult { matches, stats })
    }

    /// Phase 1 of the optimal multi-step k-NN scheme: probe the index for
    /// the `k` nearest feature lower bounds and compute their exact squared
    /// distances (cached so the close phase never recomputes a probe).
    ///
    /// Returns `(probes, stats)` where `probes` are `(id, exact squared
    /// distance)` pairs in index probe order. `pub(crate)` so the sharded
    /// engine can scatter this phase across shards, take the global k-th
    /// probe distance as the closing radius, and only then run the close
    /// phase. `Err` carries the partial counters on deadline expiry.
    pub(crate) fn knn_probe_phase(
        &self,
        query: &[f64],
        band: usize,
        k: usize,
        budget: QueryBudget,
        scratch: &mut QueryScratch,
    ) -> Result<(Vec<(ItemId, f64)>, EngineStats), EngineStats> {
        if k == 0 || self.series.is_empty() {
            return Ok((Vec::new(), EngineStats::default()));
        }
        let cells_before = scratch.ws.cells();
        let envelope = Envelope::compute(query, band);
        let feature_box = self.transform.project_envelope(&envelope);
        let shape = Query::Rect(feature_box);
        let ws = &mut scratch.ws;

        let (probes, probe_stats) = self.index.knn(&shape, k);
        let mut stats = EngineStats { index: probe_stats, ..EngineStats::default() };
        let mut exact: Vec<(ItemId, f64)> = Vec::with_capacity(probes.len());
        for (id, _) in &probes {
            if budget.expired() {
                stats.dp_cells = ws.cells() - cells_before;
                return Err(stats);
            }
            stats.exact_computations += 1;
            let d_sq = ldtw_distance_sq_bounded_with_mode(
                ws,
                query,
                &self.series[id].samples,
                band,
                f64::INFINITY,
                self.config.kernel,
            );
            exact.push((*id, d_sq));
        }
        stats.dp_cells = ws.cells() - cells_before;
        Ok((exact, stats))
    }

    /// Phase 2 of the optimal multi-step k-NN scheme: a closing range query
    /// at `radius_sq`, its candidates verified best-first under a shrinking
    /// top-k threshold.
    ///
    /// The best-so-far max-heap starts from `seed` — `(id, exact squared
    /// distance)` pairs that need not be stored in *this* engine (the
    /// sharded caller seeds every shard with the global best probes, so
    /// later shards prune against earlier results). Ids in `known` already
    /// have exact distances (this engine's own probes) and are skipped.
    /// Returns the final heap contents ascending by `(d², id)` plus this
    /// phase's counters; `Err` carries the partial counters on deadline
    /// expiry.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn knn_close_phase(
        &self,
        query: &[f64],
        band: usize,
        k: usize,
        radius_sq: f64,
        seed: &[(ItemId, f64)],
        known: &std::collections::HashSet<ItemId>,
        budget: QueryBudget,
        scratch: &mut QueryScratch,
    ) -> Result<(Vec<(ItemId, f64)>, EngineStats), EngineStats> {
        if k == 0 || self.series.is_empty() {
            return Ok((Vec::new(), EngineStats::default()));
        }
        let cells_before = scratch.ws.cells();
        let envelope = Envelope::compute(query, band);
        let feature_box = self.transform.project_envelope(&envelope);
        let shape = Query::Rect(feature_box);
        let QueryScratch { ws, lb: scratch, pf } = scratch;
        if self.prefilter_active() {
            pf.stage(&envelope);
        }
        let pf: Option<&PrefilterEnvelope> = self.prefilter_active().then_some(&*pf);

        // The closing range query. Any true top-k member has exact distance
        // ≤ radius, hence lower bound ≤ radius, hence appears here.
        let radius = radius_sq.sqrt();
        let (candidates, range_stats) = self.index.range_query(&shape, radius);
        let mut stats = EngineStats { index: range_stats, ..EngineStats::default() };

        // Best-so-far is a max-heap seeded with the probes (worst of the
        // current top-k on top); its top is the shrinking radius.
        let mut heap: BinaryHeap<Cand> =
            seed.iter().map(|&(id, d_sq)| Cand { d_sq, id }).collect();

        // Envelope-bound pass over the remaining candidates at the outer
        // radius, so the expensive stages can visit them in ascending
        // lower-bound order: the likeliest true neighbors come first and
        // shrink the radius fastest for everything after them.
        let use_env = self.config.envelope_refinement || self.config.lb_improved_refinement;
        let mut pending: Vec<(f64, ItemId)> = Vec::new();
        for id in candidates {
            if known.contains(&id) {
                continue; // probe: exact distance already known
            }
            if use_env {
                let stored = &self.series[&id];
                // Prefilter prunes here are exactly the candidates whose
                // f64 envelope bound would come back above the radius
                // (hence infinite from the bounded kernel): same counter,
                // same surviving `pending` set, with or without it.
                if let (Some(pf), Some(mirror)) = (pf, stored.mirror.as_ref()) {
                    if prefilter_exceeds(self.config.kernel, pf, mirror, radius_sq) {
                        stats.lb_pruned += 1;
                        continue;
                    }
                }
                let lb_sq = envelope.distance_sq_bounded_mode(
                    &stored.samples,
                    radius_sq,
                    self.config.kernel,
                );
                if lb_sq > radius_sq {
                    stats.lb_pruned += 1;
                    continue;
                }
                pending.push((lb_sq, id));
            } else {
                pending.push((0.0, id));
            }
        }
        pending.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).expect("finite lower bounds").then_with(|| a.1.cmp(&b.1))
        });

        for (lb_sq, id) in pending {
            if budget.expired() {
                stats.dp_cells = ws.cells() - cells_before;
                return Err(stats);
            }
            // The threshold an entrant must beat: the current k-th best when
            // the heap is full, the outer radius while it is not.
            let full = heap.len() >= k;
            // While the heap is under-full (only possible if the probes
            // numbered fewer than `min(k, len)`) every survivor is kept, so
            // verification must run to completion.
            let threshold_sq =
                if full { heap.peek().expect("non-empty heap").d_sq } else { f64::INFINITY };
            if full && lb_sq > threshold_sq {
                stats.lb_pruned += 1;
                continue;
            }
            let stored = &self.series[&id];
            let verified = self.cascade_verify(
                query,
                &envelope,
                band,
                stored,
                threshold_sq,
                use_env.then_some(lb_sq),
                pf,
                &mut stats,
                ws,
                scratch,
            );
            let Some(d_sq) = verified else { continue };
            if !full {
                heap.push(Cand { d_sq, id });
            } else {
                let worst = heap.peek().expect("non-empty heap");
                if (d_sq, id) < (worst.d_sq, worst.id) {
                    heap.pop();
                    heap.push(Cand { d_sq, id });
                }
            }
        }
        let survivors: Vec<(ItemId, f64)> =
            heap.into_sorted_vec().into_iter().map(|c| (c.id, c.d_sq)).collect();
        stats.dp_cells = ws.cells() - cells_before;
        Ok((survivors, stats))
    }

    /// Brute-force ε-range query (no index): the slow baseline the paper's
    /// related work resorted to. Exact by construction; used for validation
    /// and speed comparisons. Runs the same verification cascade as
    /// [`DtwIndexEngine::range_query`], over every stored series in id order
    /// (so the work counters are deterministic).
    ///
    /// # Panics
    /// Panics if `query.len()` differs from the normal-form length or the
    /// query contains NaN/infinite samples.
    pub fn scan_range(&self, query: &[f64], band: usize, radius: f64) -> QueryResult {
        let request =
            QueryRequest::range(radius).with_series(query).with_band(band).with_scan(true);
        self.query(&request).result
    }

    /// The brute-force range path. Input already validated. `Err` carries
    /// the partial counters when the budget's deadline passes between
    /// candidates.
    fn run_scan_range(
        &self,
        query: &[f64],
        band: usize,
        radius: f64,
        budget: QueryBudget,
        scratch: &mut QueryScratch,
    ) -> Result<QueryResult, EngineStats> {
        let cells_before = scratch.ws.cells();
        let radius_sq = radius * radius;
        let envelope = Envelope::compute(query, band);
        let mut stats = EngineStats::default();
        let QueryScratch { ws, lb, pf } = scratch;
        if self.prefilter_active() {
            pf.stage(&envelope);
        }
        let pf: Option<&PrefilterEnvelope> = self.prefilter_active().then_some(&*pf);
        let mut matches = Vec::new();
        for id in self.sorted_ids() {
            if budget.expired() {
                stats.dp_cells = ws.cells() - cells_before;
                return Err(stats);
            }
            let stored = &self.series[&id];
            if let Some(d_sq) = self.cascade_verify(
                query, &envelope, band, stored, radius_sq, None, pf, &mut stats, ws, lb,
            ) {
                if d_sq <= radius_sq {
                    matches.push((id, d_sq.sqrt()));
                }
            }
        }
        sort_by_distance(&mut matches);
        stats.matches = matches.len() as u64;
        stats.dp_cells = ws.cells() - cells_before;
        Ok(QueryResult { matches, stats })
    }

    /// Brute-force k-NN (no index). Exact by construction. Visits series in
    /// id order, threading the best-so-far `k`-th distance through the
    /// early-abandoning kernel (no lower-bound stages: this is the
    /// what-if-there-were-no-envelopes baseline).
    ///
    /// # Panics
    /// Panics if `query.len()` differs from the normal-form length or the
    /// query contains NaN/infinite samples.
    pub fn scan_knn(&self, query: &[f64], band: usize, k: usize) -> QueryResult {
        let request = QueryRequest::knn(k).with_series(query).with_band(band).with_scan(true);
        self.query(&request).result
    }

    /// The brute-force k-NN path. Input already validated. `Err` carries
    /// the partial counters when the budget's deadline passes between
    /// candidates.
    fn run_scan_knn(
        &self,
        query: &[f64],
        band: usize,
        k: usize,
        budget: QueryBudget,
        scratch: &mut QueryScratch,
    ) -> Result<QueryResult, EngineStats> {
        let cells_before = scratch.ws.cells();
        let ws = &mut scratch.ws;
        let mut stats = EngineStats::default();
        // Preallocation is clamped to the corpus size: `k` can come straight
        // off the wire, and the heap never holds more than one entry per
        // stored series anyway (`k = 10^15` must not reserve terabytes, and
        // `k = u64::MAX as usize` must not overflow `k + 1`).
        let mut heap: BinaryHeap<Cand> =
            BinaryHeap::with_capacity(k.min(self.series.len()) + 1);
        for id in self.sorted_ids() {
            if budget.expired() {
                stats.dp_cells = ws.cells() - cells_before;
                return Err(stats);
            }
            let full = k > 0 && heap.len() >= k;
            let threshold_sq = if full && self.config.early_abandon {
                heap.peek().expect("non-empty heap").d_sq
            } else {
                f64::INFINITY
            };
            stats.exact_computations += 1;
            let d_sq = ldtw_distance_sq_bounded_with_mode(
                ws,
                query,
                &self.series[&id].samples,
                band,
                threshold_sq,
                self.config.kernel,
            );
            if d_sq.is_infinite() {
                stats.early_abandoned += 1;
                continue;
            }
            if !full {
                if k > 0 {
                    heap.push(Cand { d_sq, id });
                }
            } else {
                let worst = heap.peek().expect("non-empty heap");
                if (d_sq, id) < (worst.d_sq, worst.id) {
                    heap.pop();
                    heap.push(Cand { d_sq, id });
                }
            }
        }
        let mut matches: Vec<(ItemId, f64)> =
            heap.into_sorted_vec().into_iter().map(|c| (c.id, c.d_sq.sqrt())).collect();
        sort_by_distance(&mut matches);
        stats.matches = matches.len() as u64;
        stats.dp_cells = ws.cells() - cells_before;
        Ok(QueryResult { matches, stats })
    }

    /// All stored ids, ascending — a deterministic scan order.
    fn sorted_ids(&self) -> Vec<ItemId> {
        let mut ids: Vec<ItemId> = self.series.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

/// One query of a [`DtwIndexEngine::query_batch`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchQuery {
    /// ε-range query, as in [`DtwIndexEngine::range_query`].
    Range {
        /// Normal-form query series.
        query: Vec<f64>,
        /// Sakoe-Chiba band half-width.
        band: usize,
        /// Query radius.
        radius: f64,
    },
    /// k-NN query, as in [`DtwIndexEngine::knn`].
    Knn {
        /// Normal-form query series.
        query: Vec<f64>,
        /// Sakoe-Chiba band half-width.
        band: usize,
        /// Neighbors requested.
        k: usize,
    },
}

impl BatchQuery {
    /// The equivalent [`QueryRequest`] (indexed path, no trace).
    pub fn to_request(&self) -> QueryRequest {
        match self {
            BatchQuery::Range { query, band, radius } => {
                QueryRequest::range(*radius).with_series(query.clone()).with_band(*band)
            }
            BatchQuery::Knn { query, band, k } => {
                QueryRequest::knn(*k).with_series(query.clone()).with_band(*band)
            }
        }
    }
}

/// Result of a batched query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchResult {
    /// Per-query results, in the order the queries were submitted. Each is
    /// bit-identical to the corresponding single-query call.
    pub results: Vec<QueryResult>,
    /// All per-query counters merged in submission order.
    pub stats: EngineStats,
}

/// Result of a batched [`QueryRequest`] execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutcome {
    /// Per-request outcomes (result + optional trace), in submission order.
    /// Each is bit-identical to the corresponding single-request call, for
    /// every thread count.
    pub outcomes: Vec<QueryOutcome>,
    /// All per-request counters merged in submission order.
    pub stats: EngineStats,
}

impl<T: EnvelopeTransform + Sync, I: SpatialIndex + Sync> DtwIndexEngine<T, I> {
    /// Executes a batch of queries, fanning fixed-size chunks out across
    /// [`BatchOptions::threads`] scoped workers and merging results in
    /// deterministic chunk order.
    ///
    /// Every per-query result — matches *and* counters — is bit-identical
    /// to the corresponding single-request [`DtwIndexEngine::try_query`]
    /// call, for every thread count: each query runs
    /// the unmodified sequential code path against the immutable index, each
    /// worker owns a private [`QueryScratch`] (so PR 1's allocation-free
    /// kernel carries over), and the merge order is a function of the batch
    /// alone. `threads = 1` processes the chunks in order on the calling
    /// thread.
    ///
    /// # Panics
    /// Panics if any query has the wrong length or non-finite samples.
    #[deprecated(
        since = "0.1.0",
        note = "build QueryRequests and use try_query_batch (typed errors, traces, budgets)"
    )]
    pub fn query_batch(&self, batch: &[BatchQuery], options: &BatchOptions) -> BatchResult {
        let requests: Vec<QueryRequest> = batch.iter().map(BatchQuery::to_request).collect();
        let outcome =
            self.try_query_batch(&requests, options).unwrap_or_else(|e| panic!("{e}"));
        BatchResult {
            results: outcome.outcomes.into_iter().map(|o| o.result).collect(),
            stats: outcome.stats,
        }
    }

    /// Executes a batch of [`QueryRequest`]s with the same deterministic
    /// fan-out as [`DtwIndexEngine::query_batch`]. Per-request traces (where
    /// enabled) ride inside the outcomes, which are merged in submission
    /// order — so the trace stream, like every counter, is permutation- and
    /// thread-count-invariant.
    ///
    /// # Errors
    /// Validates every request up front and returns the first
    /// [`EngineError`] before running anything: a batch that fails
    /// validation does no work and records no metrics. A request whose
    /// [`QueryBudget`] deadline passes mid-run fails the whole batch with
    /// the [`EngineError::DeadlineExceeded`] of the earliest such request
    /// in submission order (other requests may already have completed and
    /// recorded their per-query metrics; the batch-level counters are
    /// skipped).
    pub fn try_query_batch(
        &self,
        requests: &[QueryRequest],
        options: &BatchOptions,
    ) -> Result<BatchOutcome, EngineError> {
        for request in requests {
            self.validate_query(&request.series, request.band)?;
        }
        let started = self.metrics.start_timer();
        let runs = parallel_map_chunked(
            requests,
            options,
            QueryScratch::new,
            |scratch, _i, request| self.run_request(request, scratch),
        );
        let mut outcomes = Vec::with_capacity(runs.len());
        for run in runs {
            outcomes.push(run?);
        }
        let mut stats = EngineStats::default();
        for outcome in &outcomes {
            stats.absorb(&outcome.result.stats);
        }
        // Drift guard (debug builds): when every request carries a trace,
        // the merged stats must equal the sum of the per-query trace totals
        // — `EngineStats::absorb` and `QueryTrace::totals` can never
        // disagree silently.
        #[cfg(debug_assertions)]
        if !outcomes.is_empty() && outcomes.iter().all(|o| o.trace.is_some()) {
            let mut from_traces = EngineStats::default();
            for outcome in &outcomes {
                from_traces.absorb(&outcome.trace.as_ref().expect("all traced").totals());
            }
            debug_assert_eq!(
                from_traces, stats,
                "batch trace totals drifted from merged EngineStats"
            );
        }
        self.metrics.add(Metric::Batches, 1);
        self.metrics.observe_since(Timer::Batch, started);
        Ok(BatchOutcome { outcomes, stats })
    }
}

/// Max-heap entry for the k-NN best-so-far set: orders by squared distance,
/// ties broken toward the larger id so the heap's top is always the entry a
/// lexicographically smaller `(distance, id)` pair should displace.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    d_sq: f64,
    id: ItemId,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.d_sq
            .partial_cmp(&other.d_sq)
            .expect("finite distances")
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn sort_by_distance(matches: &mut [(ItemId, f64)]) {
    matches.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).expect("finite distances").then_with(|| a.0.cmp(&b.0))
    });
}

/// Final k-NN assembly shared by the single-engine path and the sharded
/// gather: pools of `(id, exact squared distance)` candidates — probe sets
/// and close-phase survivors — are merged, deduplicated by id (duplicates
/// always carry the same exact distance), ordered by `(d², id)` (the same
/// total order every heap and sort in the k-NN path uses; `(d, id)` orders
/// identically since `sqrt` is monotone), and cut to the `k` best, with one
/// square root per reported match.
pub(crate) fn assemble_knn_matches(
    pools: Vec<Vec<(ItemId, f64)>>,
    k: usize,
) -> Vec<(ItemId, f64)> {
    let mut pool: Vec<(ItemId, f64)> = pools.into_iter().flatten().collect();
    pool.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).expect("finite distances").then_with(|| a.0.cmp(&b.0))
    });
    pool.dedup_by_key(|&mut (id, _)| id);
    pool.truncate(k);
    pool.into_iter().map(|(id, d_sq)| (id, d_sq.sqrt())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::ldtw_distance;
    use crate::transform::paa::{KeoghPaa, NewPaa};
    use hum_index::{GridFile, LinearScan, RStarTree};

    fn lcg_series(n: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n)
            .map(|_| {
                // Random walks, centered.
                let mut acc = 0.0;
                let mut s: Vec<f64> = (0..len)
                    .map(|_| {
                        acc += next();
                        acc
                    })
                    .collect();
                hum_linalg::vec_ops::center(&mut s);
                s
            })
            .collect()
    }

    fn build_engine(series: &[Vec<f64>]) -> DtwIndexEngine<NewPaa, RStarTree> {
        let len = series[0].len();
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(len, 8),
            RStarTree::with_page_size(8, 1024),
            EngineConfig::default(),
        );
        for (i, s) in series.iter().enumerate() {
            engine.insert(i as ItemId, s.clone());
        }
        engine
    }

    fn range_of<T: EnvelopeTransform, I: SpatialIndex>(
        engine: &DtwIndexEngine<T, I>,
        query: &[f64],
        band: usize,
        radius: f64,
    ) -> QueryResult {
        engine.query(&QueryRequest::range(radius).with_series(query).with_band(band)).result
    }

    fn knn_of<T: EnvelopeTransform, I: SpatialIndex>(
        engine: &DtwIndexEngine<T, I>,
        query: &[f64],
        band: usize,
        k: usize,
    ) -> QueryResult {
        engine.query(&QueryRequest::knn(k).with_series(query).with_band(band)).result
    }

    #[test]
    fn range_query_equals_brute_force() {
        let series = lcg_series(120, 64, 5);
        let engine = build_engine(&series);
        let query = &series[17];
        for (band, radius) in [(0usize, 1.0), (3, 2.0), (6, 4.0)] {
            let fast = range_of(&engine, query, band, radius);
            let slow = engine.scan_range(query, band, radius);
            assert_eq!(fast.matches, slow.matches, "band={band} r={radius}");
        }
    }

    #[test]
    fn no_false_negatives_across_backends() {
        let series = lcg_series(100, 64, 9);
        let query = lcg_series(1, 64, 1234).remove(0);
        let band = 4;
        let radius = 3.0;
        // Ground truth by direct DTW.
        let mut expected: Vec<ItemId> = series
            .iter()
            .enumerate()
            .filter(|(_, s)| ldtw_distance(&query, s, band) <= radius)
            .map(|(i, _)| i as ItemId)
            .collect();
        expected.sort_unstable();

        macro_rules! check {
            ($index:expr) => {{
                let mut engine =
                    DtwIndexEngine::new(NewPaa::new(64, 8), $index, EngineConfig::default());
                for (i, s) in series.iter().enumerate() {
                    engine.insert(i as ItemId, s.clone());
                }
                let mut got: Vec<ItemId> =
                    range_of(&engine, &query, band, radius).matches.iter().map(|m| m.0).collect();
                got.sort_unstable();
                assert_eq!(got, expected);
            }};
        }
        check!(RStarTree::with_page_size(8, 1024));
        check!(GridFile::with_params(8, 4, 32, 1024));
        check!(LinearScan::with_page_size(8, 1024));
    }

    #[test]
    fn knn_equals_brute_force_distances() {
        let series = lcg_series(150, 64, 21);
        let engine = build_engine(&series);
        let query = lcg_series(1, 64, 777).remove(0);
        for band in [0usize, 2, 5] {
            let fast = knn_of(&engine, &query, band, 10);
            let slow = engine.scan_knn(&query, band, 10);
            assert_eq!(fast.matches.len(), 10);
            for (f, s) in fast.matches.iter().zip(&slow.matches) {
                assert!((f.1 - s.1).abs() < 1e-9, "band={band}");
            }
        }
    }

    #[test]
    fn self_query_returns_self_first() {
        let series = lcg_series(60, 64, 3);
        let engine = build_engine(&series);
        let result = knn_of(&engine, &series[42], 2, 1);
        assert_eq!(result.matches[0].0, 42);
        assert!(result.matches[0].1 < 1e-12);
    }

    #[test]
    fn index_prunes_relative_to_full_scan() {
        let series = lcg_series(600, 64, 31);
        let engine = build_engine(&series);
        let query = &series[0];
        let result = range_of(&engine, query, 2, 0.5);
        assert!(
            result.stats.index.points_examined < 600,
            "examined {}",
            result.stats.index.points_examined
        );
        // The exact-DTW step runs on far fewer series than the database size.
        assert!(result.stats.exact_computations < 300);
    }

    #[test]
    fn tighter_transform_yields_fewer_candidates() {
        let series = lcg_series(400, 64, 13);
        let query = lcg_series(1, 64, 999).remove(0);
        let band = 4;
        let radius = 2.0;

        let mut new_engine = DtwIndexEngine::new(
            NewPaa::new(64, 8),
            LinearScan::with_page_size(8, 1024),
            EngineConfig { envelope_refinement: false, ..EngineConfig::default() },
        );
        let mut keogh_engine = DtwIndexEngine::new(
            KeoghPaa::new(64, 8),
            LinearScan::with_page_size(8, 1024),
            EngineConfig { envelope_refinement: false, ..EngineConfig::default() },
        );
        for (i, s) in series.iter().enumerate() {
            new_engine.insert(i as ItemId, s.clone());
            keogh_engine.insert(i as ItemId, s.clone());
        }
        let new_result = range_of(&new_engine, &query, band, radius);
        let keogh_result = range_of(&keogh_engine, &query, band, radius);
        assert_eq!(new_result.matches, keogh_result.matches, "same exact answer");
        assert!(
            new_result.stats.index.candidates <= keogh_result.stats.index.candidates,
            "New_PAA candidates {} vs Keogh_PAA {}",
            new_result.stats.index.candidates,
            keogh_result.stats.index.candidates
        );
    }

    #[test]
    fn envelope_refinement_only_changes_work_not_answers() {
        let series = lcg_series(200, 64, 8);
        let query = lcg_series(1, 64, 555).remove(0);
        let mut with = DtwIndexEngine::new(
            NewPaa::new(64, 8),
            RStarTree::with_page_size(8, 1024),
            EngineConfig { envelope_refinement: true, ..EngineConfig::default() },
        );
        let mut without = DtwIndexEngine::new(
            NewPaa::new(64, 8),
            RStarTree::with_page_size(8, 1024),
            EngineConfig { envelope_refinement: false, ..EngineConfig::default() },
        );
        for (i, s) in series.iter().enumerate() {
            with.insert(i as ItemId, s.clone());
            without.insert(i as ItemId, s.clone());
        }
        let a = range_of(&with, &query, 3, 2.5);
        let b = range_of(&without, &query, 3, 2.5);
        assert_eq!(a.matches, b.matches);
        assert!(a.stats.exact_computations <= b.stats.exact_computations);
    }

    #[test]
    fn knn_with_k_zero_or_empty_engine() {
        let series = lcg_series(10, 32, 2);
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(32, 4),
            RStarTree::new(4),
            EngineConfig::default(),
        );
        assert!(knn_of(&engine, &series[0], 2, 3).matches.is_empty());
        engine.insert(0, series[0].clone());
        assert!(knn_of(&engine, &series[0], 2, 0).matches.is_empty());
    }

    #[test]
    fn removal_keeps_queries_exact_across_backends() {
        let series = lcg_series(150, 64, 61);
        let query = lcg_series(1, 64, 4242).remove(0);
        let band = 3;
        let radius = 3.0;

        macro_rules! check {
            ($index:expr) => {{
                let mut engine =
                    DtwIndexEngine::new(NewPaa::new(64, 8), $index, EngineConfig::default());
                for (i, s) in series.iter().enumerate() {
                    engine.insert(i as ItemId, s.clone());
                }
                for id in (0..150).step_by(4) {
                    assert!(engine.remove(id as ItemId));
                }
                assert!(!engine.remove(0), "already removed");
                let mut expected: Vec<ItemId> = series
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 4 != 0)
                    .filter(|(_, s)| ldtw_distance(&query, s, band) <= radius)
                    .map(|(i, _)| i as ItemId)
                    .collect();
                expected.sort_unstable();
                let mut got: Vec<ItemId> =
                    range_of(&engine, &query, band, radius).matches.iter().map(|m| m.0).collect();
                got.sort_unstable();
                assert_eq!(got, expected);
            }};
        }
        check!(RStarTree::with_page_size(8, 1024));
        check!(GridFile::with_params(8, 4, 32, 1024));
        check!(LinearScan::with_page_size(8, 1024));
    }

    #[test]
    fn removed_id_can_be_reinserted() {
        let series = lcg_series(3, 32, 2);
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(32, 4),
            RStarTree::new(4),
            EngineConfig::default(),
        );
        engine.insert(5, series[0].clone());
        assert!(engine.remove(5));
        engine.insert(5, series[1].clone());
        assert_eq!(engine.len(), 1);
        let top = knn_of(&engine, &series[1], 2, 1);
        assert_eq!(top.matches[0].0, 5);
        assert!(top.matches[0].1 < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn nan_in_inserted_series_rejected() {
        let mut series = lcg_series(1, 32, 4).remove(0);
        series[7] = f64::NAN;
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(32, 4),
            RStarTree::new(4),
            EngineConfig::default(),
        );
        engine.insert(0, series);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn infinity_in_inserted_series_rejected() {
        let mut series = lcg_series(1, 32, 4).remove(0);
        series[0] = f64::INFINITY;
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(32, 4),
            RStarTree::new(4),
            EngineConfig::default(),
        );
        engine.insert(0, series);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn nan_in_range_query_rejected() {
        let series = lcg_series(4, 32, 4);
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(32, 4),
            RStarTree::new(4),
            EngineConfig::default(),
        );
        engine.insert(0, series[0].clone());
        let mut query = series[1].clone();
        query[3] = f64::NAN;
        let _ = range_of(&engine, &query, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn nan_in_knn_query_rejected() {
        let series = lcg_series(4, 32, 4);
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(32, 4),
            RStarTree::new(4),
            EngineConfig::default(),
        );
        engine.insert(0, series[0].clone());
        let mut query = series[1].clone();
        query[30] = f64::NEG_INFINITY;
        let _ = knn_of(&engine, &query, 2, 1);
    }

    #[test]
    fn reused_scratch_reproduces_fresh_scratch_counters() {
        let series = lcg_series(80, 64, 44);
        let engine = build_engine(&series);
        let queries = lcg_series(6, 64, 4711);
        let mut scratch = QueryScratch::new();
        for q in &queries {
            let range = QueryRequest::range(2.0).with_series(q.clone()).with_band(3);
            assert_eq!(engine.query(&range), engine.query_with(&range, &mut scratch));
            let knn = QueryRequest::knn(5).with_series(q.clone()).with_band(3);
            assert_eq!(engine.query(&knn), engine.query_with(&knn, &mut scratch));
        }
    }

    // The deprecated BatchQuery delegate must keep matching single queries
    // until it is removed.
    #[allow(deprecated)]
    #[test]
    fn query_batch_matches_single_queries_for_every_thread_count() {
        let series = lcg_series(90, 64, 77);
        let engine = build_engine(&series);
        let queries = lcg_series(9, 64, 31337);
        let batch: Vec<BatchQuery> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                if i % 2 == 0 {
                    BatchQuery::Knn { query: q.clone(), band: 3, k: 7 }
                } else {
                    BatchQuery::Range { query: q.clone(), band: 2, radius: 2.5 }
                }
            })
            .collect();
        let expected: Vec<QueryResult> = batch
            .iter()
            .map(|q| match q {
                BatchQuery::Range { query, band, radius } => {
                    engine.range_query(query, *band, *radius)
                }
                BatchQuery::Knn { query, band, k } => engine.knn(query, *band, *k),
            })
            .collect();
        let mut expected_stats = EngineStats::default();
        for r in &expected {
            expected_stats.absorb(&r.stats);
        }
        for threads in [1, 2, 8] {
            let got = engine.query_batch(&batch, &crate::batch::BatchOptions::new(threads, 2));
            assert_eq!(got.results, expected, "threads={threads}");
            assert_eq!(got.stats, expected_stats, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate id")]
    fn duplicate_id_rejected() {
        let series = lcg_series(2, 32, 4);
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(32, 4),
            RStarTree::new(4),
            EngineConfig::default(),
        );
        engine.insert(7, series[0].clone());
        engine.insert(7, series[1].clone());
    }

    #[test]
    fn try_insert_reports_every_error_and_mutates_nothing() {
        let series = lcg_series(3, 32, 4);
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(32, 4),
            RStarTree::new(4),
            EngineConfig::default(),
        );
        assert_eq!(
            engine.try_insert(0, vec![1.0; 31]),
            Err(EngineError::LengthMismatch {
                context: "inserted series",
                expected: 32,
                got: 31
            })
        );
        let mut bad = series[0].clone();
        bad[9] = f64::NAN;
        match engine.try_insert(0, bad) {
            Err(EngineError::NonFiniteSample { context, index, value }) => {
                assert_eq!(context, "inserted series");
                assert_eq!(index, 9);
                assert!(value.is_nan());
            }
            other => panic!("expected NonFiniteSample, got {other:?}"),
        }
        assert!(engine.is_empty(), "failed inserts must not mutate");
        engine.try_insert(3, series[1].clone()).unwrap();
        assert_eq!(
            engine.try_insert(3, series[2].clone()),
            Err(EngineError::DuplicateId(3))
        );
        assert_eq!(engine.get(3).unwrap(), series[1].as_slice(), "original survives");
    }

    #[test]
    fn try_query_reports_every_error_variant() {
        let series = lcg_series(2, 32, 4);
        let mut engine = DtwIndexEngine::new(
            NewPaa::new(32, 4),
            RStarTree::new(4),
            EngineConfig::default(),
        );
        engine.insert(0, series[0].clone());
        let empty = QueryRequest::range(1.0);
        assert_eq!(engine.try_query(&empty), Err(EngineError::EmptyQuery));
        let short = QueryRequest::knn(1).with_series(vec![0.0; 16]);
        assert_eq!(
            engine.try_query(&short),
            Err(EngineError::LengthMismatch { context: "query", expected: 32, got: 16 })
        );
        let mut bad = series[1].clone();
        bad[30] = f64::NEG_INFINITY;
        match engine.try_query(&QueryRequest::range(1.0).with_series(bad)) {
            Err(EngineError::NonFiniteSample { context, index, value }) => {
                assert_eq!(context, "query");
                assert_eq!(index, 30);
                assert_eq!(value, f64::NEG_INFINITY);
            }
            other => panic!("expected NonFiniteSample, got {other:?}"),
        }
        let wide = QueryRequest::range(1.0).with_series(series[1].clone()).with_band(32);
        assert_eq!(
            engine.try_query(&wide),
            Err(EngineError::BandTooWide { band: 32, len: 32 })
        );
        // The same input is fine one sample narrower.
        let ok = QueryRequest::range(1.0).with_series(series[1].clone()).with_band(31);
        assert!(engine.try_query(&ok).is_ok());
    }

    #[test]
    fn error_display_keeps_legacy_panic_substrings() {
        let messages = [
            EngineError::LengthMismatch { context: "query", expected: 4, got: 2 }.to_string(),
            EngineError::NonFiniteSample { context: "query", index: 3, value: f64::NAN }
                .to_string(),
            EngineError::DuplicateId(7).to_string(),
        ];
        assert!(messages[0].contains("must be in normal form"));
        assert!(messages[1].contains("non-finite sample"));
        assert!(messages[1].contains("index 3"));
        assert!(messages[2].contains("duplicate id 7"));
    }

    // The deprecated positional delegates must stay bit-identical to the
    // request API until they are removed.
    #[allow(deprecated)]
    #[test]
    fn request_api_reproduces_legacy_entry_points() {
        let series = lcg_series(100, 64, 50);
        let engine = build_engine(&series);
        let query = lcg_series(1, 64, 808).remove(0);
        let range = engine.query(&QueryRequest::range(2.5).with_series(query.clone()).with_band(3));
        assert_eq!(range.result, engine.range_query(&query, 3, 2.5));
        assert!(range.trace.is_none(), "trace is opt-in");
        let knn = engine.query(&QueryRequest::knn(7).with_series(query.clone()).with_band(3));
        assert_eq!(knn.result, engine.knn(&query, 3, 7));
        let scan = engine
            .query(&QueryRequest::range(2.5).with_series(query.clone()).with_band(3).with_scan(true));
        assert_eq!(scan.result, engine.scan_range(&query, 3, 2.5));
        let scan_knn = engine
            .query(&QueryRequest::knn(7).with_series(query.clone()).with_band(3).with_scan(true));
        assert_eq!(scan_knn.result, engine.scan_knn(&query, 3, 7));
    }

    #[test]
    fn trace_totals_equal_stats_on_every_path() {
        let series = lcg_series(100, 64, 51);
        let engine = build_engine(&series);
        let query = lcg_series(1, 64, 909).remove(0);
        for (request, scan) in [
            (QueryRequest::range(2.5), false),
            (QueryRequest::knn(5), false),
            (QueryRequest::range(2.5), true),
            (QueryRequest::knn(5), true),
        ] {
            let request =
                request.with_series(query.clone()).with_band(3).with_trace(true).with_scan(scan);
            let outcome = engine.query(&request);
            let trace = outcome.trace.expect("trace requested");
            assert_eq!(trace.totals(), outcome.result.stats, "scan={scan}");
            assert_eq!(trace.band, 3);
            if scan {
                assert_eq!(trace.candidates_in, engine.len() as u64);
                assert_eq!(trace.index, QueryStats::default());
            } else {
                assert_eq!(trace.candidates_in, outcome.result.stats.index.candidates);
            }
        }
    }

    #[test]
    fn batch_requests_carry_traces_in_submission_order() {
        let series = lcg_series(80, 64, 52);
        let engine = build_engine(&series);
        let queries = lcg_series(6, 64, 6001);
        let requests: Vec<QueryRequest> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let r = if i % 2 == 0 { QueryRequest::range(2.0) } else { QueryRequest::knn(4) };
                r.with_series(q.clone()).with_band(2).with_trace(true)
            })
            .collect();
        let expected: Vec<QueryOutcome> =
            requests.iter().map(|r| engine.query(r)).collect();
        for threads in [1, 2, 8] {
            let got = engine
                .try_query_batch(&requests, &crate::batch::BatchOptions::new(threads, 2))
                .unwrap();
            assert_eq!(got.outcomes, expected, "threads={threads}");
        }
    }

    #[test]
    fn expired_deadline_aborts_with_partial_stats_on_every_path() {
        let series = lcg_series(120, 64, 55);
        let engine = build_engine(&series);
        let query = lcg_series(1, 64, 1010).remove(0);
        // A deadline of "now" is already expired by the first poll.
        let expired = QueryBudget::with_deadline(Instant::now());
        assert!(expired.expired());
        for (request, scan) in [
            (QueryRequest::range(50.0), false),
            (QueryRequest::knn(5), false),
            (QueryRequest::range(50.0), true),
            (QueryRequest::knn(5), true),
        ] {
            let request = request
                .with_series(query.clone())
                .with_band(3)
                .with_scan(scan)
                .with_budget(expired);
            match engine.try_query(&request) {
                Err(EngineError::DeadlineExceeded { stats }) => {
                    // Aborted before the first candidate: no matches, no
                    // exact DTW, but the index walk already happened on the
                    // indexed paths.
                    assert_eq!(stats.matches, 0, "scan={scan}");
                    assert_eq!(stats.exact_computations, 0, "scan={scan}");
                    if !scan {
                        assert!(stats.index.candidates > 0, "scan={scan}");
                    }
                }
                other => panic!("expected DeadlineExceeded (scan={scan}), got {other:?}"),
            }
        }
    }

    #[test]
    fn unexpired_deadline_is_bit_identical_to_unbudgeted() {
        let series = lcg_series(100, 64, 56);
        let engine = build_engine(&series);
        let query = lcg_series(1, 64, 2020).remove(0);
        let budget = QueryBudget::within(Duration::from_secs(3600));
        assert!(!budget.expired());
        for (request, scan) in [
            (QueryRequest::range(2.5), false),
            (QueryRequest::knn(7), false),
            (QueryRequest::range(2.5), true),
            (QueryRequest::knn(7), true),
        ] {
            let request =
                request.with_series(query.clone()).with_band(3).with_trace(true).with_scan(scan);
            let plain = engine.query(&request);
            let budgeted = engine.query(&request.clone().with_budget(budget));
            assert_eq!(plain, budgeted, "scan={scan}");
        }
    }

    #[test]
    fn batch_with_expired_deadline_fails_with_deadline_error() {
        let series = lcg_series(60, 64, 57);
        let engine = build_engine(&series);
        let queries = lcg_series(3, 64, 3030);
        let mut requests: Vec<QueryRequest> = queries
            .iter()
            .map(|q| QueryRequest::knn(3).with_series(q.clone()).with_band(2))
            .collect();
        requests[1] =
            requests[1].clone().with_budget(QueryBudget::with_deadline(Instant::now()));
        let got = engine.try_query_batch(&requests, &crate::batch::BatchOptions::new(2, 1));
        assert!(
            matches!(got, Err(EngineError::DeadlineExceeded { .. })),
            "expected DeadlineExceeded, got {got:?}"
        );
    }

    #[test]
    fn deadline_abort_is_not_recorded_as_a_completed_query() {
        let series = lcg_series(60, 64, 58);
        let mut engine = build_engine(&series);
        engine.set_metrics(MetricsSink::enabled());
        let query = lcg_series(1, 64, 4040).remove(0);
        let expired = QueryRequest::range(50.0)
            .with_series(query.clone())
            .with_band(3)
            .with_budget(QueryBudget::with_deadline(Instant::now()));
        assert!(engine.try_query(&expired).is_err());
        let completed = QueryRequest::range(50.0).with_series(query).with_band(3);
        assert!(engine.try_query(&completed).is_ok());
        let registry = engine.metrics().registry().expect("enabled");
        assert_eq!(registry.snapshot().counter(Metric::RangeQueries), 1);
    }

    #[test]
    fn deadline_error_display_names_the_deadline() {
        let message =
            EngineError::DeadlineExceeded { stats: EngineStats::default() }.to_string();
        assert!(message.contains("deadline exceeded"), "{message}");
    }
}
