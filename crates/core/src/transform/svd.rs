//! Data-adaptive SVD envelope transform.
//!
//! Projects series onto the top right-singular vectors of a database sample
//! — the optimal linear reduction for Euclidean distance (paper §5.2, Fig 7:
//! SVD dominates at warping width 0). The fitted rows are orthonormal, hence
//! lower-bounding; they carry mixed signs, so the Lemma 3 sign-split
//! provides container invariance. The paper observes that PAA's all-positive
//! coefficients make its envelope images tighter as warping width grows —
//! the crossover Fig 7 reports.

use hum_index::Rect;
use hum_linalg::matrix::Matrix;
use hum_linalg::svd::Svd;

use crate::envelope::Envelope;
use crate::transform::{EnvelopeTransform, LinearEnvelopeTransform};

/// SVD envelope transform fitted on a sample of the database.
#[derive(Debug, Clone)]
pub struct SvdTransform {
    inner: LinearEnvelopeTransform,
    singular_values: Vec<f64>,
}

impl SvdTransform {
    /// Fits the transform on sample series (each of equal length) and keeps
    /// the top `dims` components.
    ///
    /// # Panics
    /// Panics if the sample is empty, ragged, or `dims` is zero or exceeds
    /// the series length.
    pub fn fit(sample: &[Vec<f64>], dims: usize) -> Self {
        assert!(!sample.is_empty(), "SVD fit needs at least one sample series");
        let n = sample[0].len();
        assert!(n > 0, "sample series must be nonempty");
        assert!(sample.iter().all(|s| s.len() == n), "ragged sample");
        assert!(dims > 0 && dims <= n, "dims must lie in 1..=series length");
        let matrix = Matrix::from_row_slices(sample);
        let svd = Svd::compute_truncated(&matrix, dims);
        let rows: Vec<Vec<f64>> =
            (0..svd.rank()).map(|k| svd.right_vectors.row(k).to_vec()).collect();
        SvdTransform {
            inner: LinearEnvelopeTransform::from_rows("SVD", rows),
            singular_values: svd.singular_values,
        }
    }

    /// Singular values of the retained components (descending).
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }
}

impl EnvelopeTransform for SvdTransform {
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn output_dims(&self) -> usize {
        self.inner.output_dims()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn project(&self, x: &[f64]) -> Vec<f64> {
        self.inner.project(x)
    }

    fn project_envelope(&self, env: &Envelope) -> Rect {
        self.inner.project_envelope(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::ldtw_distance;
    use crate::transform::feature_lower_bound;
    use hum_linalg::vec_ops::euclidean;

    fn sample(n_series: usize, len: usize) -> Vec<Vec<f64>> {
        (0..n_series)
            .map(|s| {
                (0..len)
                    .map(|t| {
                        (t as f64 * 0.2 + s as f64 * 0.5).sin() * 2.0
                            + (t as f64 * 0.05).cos() * (s % 3) as f64
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fit_produces_requested_dims() {
        let t = SvdTransform::fit(&sample(20, 32), 5);
        assert_eq!(t.output_dims(), 5);
        assert_eq!(t.input_len(), 32);
        assert_eq!(t.singular_values().len(), 5);
    }

    #[test]
    fn lower_bounding_under_euclidean() {
        let data = sample(30, 64);
        let t = SvdTransform::fit(&data, 6);
        for pair in data.windows(2).take(10) {
            let d_feat = euclidean(&t.project(&pair[0]), &t.project(&pair[1]));
            let d_orig = euclidean(&pair[0], &pair[1]);
            assert!(d_feat <= d_orig + 1e-9);
        }
    }

    #[test]
    fn theorem1_holds_for_svd() {
        let data = sample(25, 64);
        let t = SvdTransform::fit(&data, 4);
        let x = &data[0];
        let y = &data[7];
        for k in [1usize, 3, 8] {
            let lb =
                feature_lower_bound(&t.project_envelope(&Envelope::compute(y, k)), &t.project(x));
            let d = ldtw_distance(x, y, k);
            assert!(lb <= d + 1e-9, "k={k}");
        }
    }

    #[test]
    fn svd_is_tightest_at_zero_warping_for_in_sample_data() {
        // At k = 0 the DTW distance is the Euclidean distance and SVD is the
        // optimal linear reduction for the sampled population; on structured
        // low-rank data it should capture almost all of the distance.
        let data = sample(40, 32);
        let t = SvdTransform::fit(&data, 6);
        let x = &data[3];
        let y = &data[11];
        let lb = feature_lower_bound(
            &t.project_envelope(&Envelope::compute(y, 0)),
            &t.project(x),
        );
        let d = euclidean(x, y);
        assert!(lb <= d + 1e-9);
        assert!(lb / d > 0.9, "SVD should be near-tight on low-rank data, got {}", lb / d);
    }

    #[test]
    fn container_invariance_on_fitted_basis() {
        let data = sample(15, 32);
        let t = SvdTransform::fit(&data, 4);
        let y = &data[2];
        let env = Envelope::compute(y, 2);
        let feature_box = t.project_envelope(&env);
        for z in [y.clone(), env.lower().to_vec(), env.upper().to_vec()] {
            assert!(feature_box.contains_point(&t.project(&z)));
        }
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_sample_rejected() {
        let _ = SvdTransform::fit(&[vec![1.0, 2.0], vec![1.0]], 1);
    }
}
