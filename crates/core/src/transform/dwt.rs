//! Truncated Haar wavelet envelope transform.
//!
//! Keeps the first `N` coefficients of the orthonormal Haar pyramid (the
//! overall average plus the coarsest details). Orthonormality makes the
//! truncation lower-bounding; the Haar detail rows have mixed signs, so the
//! Lemma 3 sign-split provides container invariance.

use hum_index::Rect;

use crate::envelope::Envelope;
use crate::transform::{EnvelopeTransform, LinearEnvelopeTransform};

/// Truncated Haar DWT envelope transform.
#[derive(Debug, Clone)]
pub struct Dwt {
    inner: LinearEnvelopeTransform,
}

impl Dwt {
    /// Creates a DWT transform reducing length-`input_len` series to `dims`
    /// features.
    ///
    /// # Panics
    /// Panics if `input_len` is not a power of two, `dims == 0`, or
    /// `dims > input_len`.
    pub fn new(input_len: usize, dims: usize) -> Self {
        assert!(dims > 0, "need at least one output dimension");
        assert!(dims <= input_len, "cannot expand dimensionality");
        let rows: Vec<Vec<f64>> =
            (0..dims).map(|j| hum_linalg::haar::haar_row(input_len, j)).collect();
        Dwt { inner: LinearEnvelopeTransform::from_rows("DWT", rows) }
    }
}

impl EnvelopeTransform for Dwt {
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn output_dims(&self) -> usize {
        self.inner.output_dims()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn project(&self, x: &[f64]) -> Vec<f64> {
        self.inner.project(x)
    }

    fn project_envelope(&self, env: &Envelope) -> Rect {
        self.inner.project_envelope(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::ldtw_distance;
    use crate::transform::feature_lower_bound;
    use hum_linalg::haar::haar_forward;
    use hum_linalg::vec_ops::euclidean;

    fn series(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.41 + phase).sin() * 2.0 + (i / 8) as f64 * 0.5).collect()
    }

    #[test]
    fn projection_matches_haar_prefix() {
        let n = 64;
        let x = series(n, 0.0);
        let t = Dwt::new(n, 6);
        let feats = t.project(&x);
        let full = haar_forward(&x);
        for j in 0..6 {
            assert!((feats[j] - full[j]).abs() < 1e-10);
        }
    }

    #[test]
    fn lower_bounding_under_euclidean() {
        let t = Dwt::new(128, 8);
        let x = series(128, 0.0);
        let y = series(128, 1.4);
        assert!(euclidean(&t.project(&x), &t.project(&y)) <= euclidean(&x, &y) + 1e-12);
    }

    #[test]
    fn theorem1_holds_for_dwt() {
        let t = Dwt::new(64, 4);
        let x = series(64, 0.0);
        let y = series(64, 2.0);
        for k in [1usize, 4, 9] {
            let lb =
                feature_lower_bound(&t.project_envelope(&Envelope::compute(&y, k)), &t.project(&x));
            let d = ldtw_distance(&x, &y, k);
            assert!(lb <= d + 1e-9, "k={k}");
        }
    }

    #[test]
    fn full_basis_is_isometric() {
        let t = Dwt::new(16, 16);
        let x = series(16, 0.0);
        let y = series(16, 0.8);
        assert!((euclidean(&t.project(&x), &t.project(&y)) - euclidean(&x, &y)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = Dwt::new(24, 4);
    }
}
