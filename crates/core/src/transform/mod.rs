//! Dimensionality-reduction transforms on time series *and their envelopes*.
//!
//! The GEMINI framework indexes feature vectors `T(x)` of the database
//! series. To support DTW, the paper extends `T` to query envelopes: a
//! transform is **container-invariant** (Definition 8) when
//! `x ∈ e ⇒ T(x) ∈ T(e)`, and Theorem 1 shows that a container-invariant,
//! lower-bounding `T` gives `D(T(x), T(Env_k(y))) ≤ D_DTW(k)(x, y)` — an
//! index with *no false negatives*.
//!
//! Lemma 3 provides the construction for any linear `T` with coefficients
//! `a_ij`: the transformed envelope splits each coefficient by sign,
//!
//! ```text
//! E^U_j = Σ_i a_ij·e^U_i   if a_ij ≥ 0,   a_ij·e^L_i otherwise
//! E^L_j = Σ_i a_ij·e^L_i   if a_ij ≥ 0,   a_ij·e^U_i otherwise
//! ```
//!
//! [`LinearEnvelopeTransform`] implements exactly this, for any row set. The
//! concrete transforms are:
//!
//! * [`paa::NewPaa`] — the paper's improved PAA envelope reduction (frame
//!   *averages* of the envelope bounds), provably tighter than Keogh's.
//! * [`paa::KeoghPaa`] — Keogh's original reduction (frame min/max), kept as
//!   the comparison baseline of Figs 6–10.
//! * [`dft::Dft`] — truncated Fourier features (real orthonormal basis).
//! * [`dwt::Dwt`] — truncated Haar wavelet features.
//! * [`svd::SvdTransform`] — data-adaptive features from a fitted SVD basis.
//!
//! Every transform here uses **orthonormal rows** (PAA rows are the
//! normalized box functions), so the plain Euclidean distance between
//! feature vectors lower-bounds the original distance and no extra scaling
//! appears at query time.

pub mod dft;
pub mod dwt;
pub mod paa;
pub mod svd;

use hum_index::Rect;

use crate::envelope::Envelope;

/// A dimensionality-reduction transform extended to envelopes.
///
/// Implementations must be **lower-bounding** — Euclidean distances between
/// [`EnvelopeTransform::project`] outputs never exceed the original
/// distances — and **container-invariant** — any series inside an envelope
/// projects into the box returned by [`EnvelopeTransform::project_envelope`].
/// Together (Theorem 1) these guarantee the index phase never drops a true
/// match.
pub trait EnvelopeTransform {
    /// Expected input series length.
    fn input_len(&self) -> usize;

    /// Number of feature dimensions produced.
    fn output_dims(&self) -> usize;

    /// Short human-readable name for reports ("New_PAA", "DFT", ...).
    fn name(&self) -> &str;

    /// Feature vector of a series.
    ///
    /// # Panics
    /// Panics if `x.len() != self.input_len()`.
    fn project(&self, x: &[f64]) -> Vec<f64>;

    /// Feature-space image of an envelope: an axis-aligned box guaranteed to
    /// contain `project(z)` for every `z` inside the envelope.
    ///
    /// # Panics
    /// Panics if `env.len() != self.input_len()`.
    fn project_envelope(&self, env: &Envelope) -> Rect;
}

/// The feature-space lower bound of Theorem 1: distance from the projected
/// query envelope (a box) to a stored feature vector.
pub fn feature_lower_bound(feature_box: &Rect, features: &[f64]) -> f64 {
    feature_box.min_dist_point(features)
}

impl<T: EnvelopeTransform + ?Sized> EnvelopeTransform for Box<T> {
    fn input_len(&self) -> usize {
        (**self).input_len()
    }

    fn output_dims(&self) -> usize {
        (**self).output_dims()
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn project(&self, x: &[f64]) -> Vec<f64> {
        (**self).project(x)
    }

    fn project_envelope(&self, env: &Envelope) -> Rect {
        (**self).project_envelope(env)
    }
}

/// A linear transform `X_j = Σ_i a_ij·x_i` together with its Lemma 3
/// container-invariant extension to envelopes.
#[derive(Debug, Clone)]
pub struct LinearEnvelopeTransform {
    name: String,
    /// `rows[j]` holds the coefficients of output dimension `j`.
    rows: Vec<Vec<f64>>,
    input_len: usize,
}

impl LinearEnvelopeTransform {
    /// Builds a transform from explicit coefficient rows.
    ///
    /// # Panics
    /// Panics if `rows` is empty or ragged.
    pub fn from_rows(name: impl Into<String>, rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "transform needs at least one row");
        let input_len = rows[0].len();
        assert!(input_len > 0, "rows must be nonempty");
        assert!(rows.iter().all(|r| r.len() == input_len), "ragged coefficient rows");
        LinearEnvelopeTransform { name: name.into(), rows, input_len }
    }

    /// The coefficient rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }
}

impl EnvelopeTransform for LinearEnvelopeTransform {
    fn input_len(&self) -> usize {
        self.input_len
    }

    fn output_dims(&self) -> usize {
        self.rows.len()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn project(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_len, "series length mismatch");
        self.rows.iter().map(|row| hum_linalg::vec_ops::dot(row, x)).collect()
    }

    fn project_envelope(&self, env: &Envelope) -> Rect {
        assert_eq!(env.len(), self.input_len, "envelope length mismatch");
        let (el, eu) = (env.lower(), env.upper());
        let mut lo = Vec::with_capacity(self.rows.len());
        let mut hi = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut low = 0.0;
            let mut high = 0.0;
            for (i, &a) in row.iter().enumerate() {
                if a >= 0.0 {
                    low += a * el[i];
                    high += a * eu[i];
                } else {
                    low += a * eu[i];
                    high += a * el[i];
                }
            }
            lo.push(low);
            hi.push(high);
        }
        Rect::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::ldtw_distance;
    use hum_linalg::vec_ops::euclidean;

    fn mixed_sign_transform(n: usize) -> LinearEnvelopeTransform {
        // Two orthonormal rows with mixed signs.
        let scale = 1.0 / (n as f64).sqrt();
        let row0: Vec<f64> = (0..n).map(|_| scale).collect();
        let row1: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { scale } else { -scale }).collect();
        LinearEnvelopeTransform::from_rows("test", vec![row0, row1])
    }

    fn wiggly(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.6 + phase).sin() * 2.0).collect()
    }

    #[test]
    fn projection_of_degenerate_envelope_is_projection_of_series() {
        let t = mixed_sign_transform(16);
        let x = wiggly(16, 0.0);
        let feats = t.project(&x);
        let bx = t.project_envelope(&Envelope::degenerate(&x));
        for (j, f) in feats.iter().enumerate() {
            assert!((bx.lo()[j] - f).abs() < 1e-12);
            assert!((bx.hi()[j] - f).abs() < 1e-12);
        }
    }

    #[test]
    fn container_invariance_lemma3() {
        let t = mixed_sign_transform(32);
        let y = wiggly(32, 0.4);
        let env = Envelope::compute(&y, 3);
        let feature_box = t.project_envelope(&env);
        // Any series inside the envelope must project inside the box; test
        // with several members including the bounds themselves.
        let members: Vec<Vec<f64>> = vec![
            y.clone(),
            env.lower().to_vec(),
            env.upper().to_vec(),
            env.lower()
                .iter()
                .zip(env.upper())
                .enumerate()
                .map(|(i, (l, u))| l + (u - l) * ((i % 6) as f64 / 7.0))
                .collect(),
        ];
        for z in &members {
            assert!(env.contains(z));
            assert!(feature_box.contains_point(&t.project(z)));
        }
    }

    #[test]
    fn theorem1_feature_lower_bound_holds() {
        let t = mixed_sign_transform(64);
        let x = wiggly(64, 0.0);
        let y = wiggly(64, 1.1);
        for k in [0usize, 2, 5, 10] {
            let feature_box = t.project_envelope(&Envelope::compute(&y, k));
            let lb = feature_lower_bound(&feature_box, &t.project(&x));
            let d = ldtw_distance(&x, &y, k);
            assert!(lb <= d + 1e-9, "k={k}: {lb} > {d}");
        }
    }

    #[test]
    fn orthonormal_rows_are_lower_bounding() {
        let t = mixed_sign_transform(16);
        let x = wiggly(16, 0.0);
        let y = wiggly(16, 2.0);
        assert!(euclidean(&t.project(&x), &t.project(&y)) <= euclidean(&x, &y) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = LinearEnvelopeTransform::from_rows("bad", vec![vec![1.0, 2.0], vec![1.0]]);
    }
}
