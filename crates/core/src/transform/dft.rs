//! Truncated Discrete Fourier envelope transform.
//!
//! Keeps the `N` lowest-frequency coefficients of the *real orthonormal*
//! Fourier basis: the DC row, then interleaved cosine/sine rows of
//! increasing frequency. Because the basis is orthonormal, truncated feature
//! distances lower-bound Euclidean distances (Parseval); because every row
//! is linear with mixed signs, the Lemma 3 sign-split yields the
//! container-invariant envelope image.

use hum_index::Rect;

use crate::envelope::Envelope;
use crate::transform::{EnvelopeTransform, LinearEnvelopeTransform};

/// Truncated real-DFT envelope transform.
#[derive(Debug, Clone)]
pub struct Dft {
    inner: LinearEnvelopeTransform,
}

impl Dft {
    /// Creates a DFT transform reducing length-`input_len` series to `dims`
    /// features (DC, cos₁, sin₁, cos₂, sin₂, …).
    ///
    /// # Panics
    /// Panics if `dims == 0` or `dims > input_len`.
    pub fn new(input_len: usize, dims: usize) -> Self {
        assert!(dims > 0, "need at least one output dimension");
        assert!(dims <= input_len, "cannot expand dimensionality");
        let n = input_len as f64;
        let mut rows = Vec::with_capacity(dims);
        // DC row.
        rows.push(vec![1.0 / n.sqrt(); input_len]);
        let mut freq = 1usize;
        while rows.len() < dims {
            let two_pi_f = 2.0 * std::f64::consts::PI * freq as f64 / n;
            let nyquist = input_len.is_multiple_of(2) && freq == input_len / 2;
            let amp = if nyquist { 1.0 / n.sqrt() } else { (2.0 / n).sqrt() };
            rows.push((0..input_len).map(|t| amp * (two_pi_f * t as f64).cos()).collect());
            if rows.len() < dims && !nyquist {
                rows.push((0..input_len).map(|t| amp * (two_pi_f * t as f64).sin()).collect());
            }
            freq += 1;
        }
        Dft { inner: LinearEnvelopeTransform::from_rows("DFT", rows) }
    }
}

impl EnvelopeTransform for Dft {
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn output_dims(&self) -> usize {
        self.inner.output_dims()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn project(&self, x: &[f64]) -> Vec<f64> {
        self.inner.project(x)
    }

    fn project_envelope(&self, env: &Envelope) -> Rect {
        self.inner.project_envelope(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::ldtw_distance;
    use crate::transform::feature_lower_bound;
    use hum_linalg::vec_ops::{dot, euclidean};

    fn series(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.37 + phase).sin() + 0.2 * (i as f64 * 1.7).cos()).collect()
    }

    #[test]
    fn rows_are_orthonormal() {
        let t = Dft::new(32, 7);
        let rows = (0..7).map(|j| {
            // Recover the rows by projecting the standard basis.
            let mut e = vec![0.0; 32];
            let mut row = vec![0.0; 32];
            for i in 0..32 {
                e[i] = 1.0;
                row[i] = t.project(&e)[j];
                e[i] = 0.0;
            }
            row
        });
        let rows: Vec<Vec<f64>> = rows.collect();
        for i in 0..7 {
            for j in 0..7 {
                let d = dot(&rows[i], &rows[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10, "({i},{j}) -> {d}");
            }
        }
    }

    #[test]
    fn projection_matches_fft_coefficients() {
        let n = 64;
        let x = series(n, 0.0);
        let t = Dft::new(n, 5);
        let feats = t.project(&x);
        let spec = hum_linalg::fft::dft_real(&x);
        // Unitary complex coefficient c_f relates to real orthonormal
        // features: cos_f = √2·Re(c_f), sin_f = −√2·Im(c_f) (sign from e^{-iωt}).
        assert!((feats[0] - spec[0].re).abs() < 1e-9);
        assert!((feats[1] - 2f64.sqrt() * spec[1].re).abs() < 1e-9);
        assert!((feats[2] + 2f64.sqrt() * spec[1].im).abs() < 1e-9);
        assert!((feats[3] - 2f64.sqrt() * spec[2].re).abs() < 1e-9);
    }

    #[test]
    fn lower_bounding_under_euclidean() {
        let t = Dft::new(128, 8);
        let x = series(128, 0.0);
        let y = series(128, 0.9);
        assert!(euclidean(&t.project(&x), &t.project(&y)) <= euclidean(&x, &y) + 1e-12);
    }

    #[test]
    fn theorem1_holds_for_dft() {
        let t = Dft::new(64, 6);
        let x = series(64, 0.0);
        let y = series(64, 1.3);
        for k in [0usize, 2, 6] {
            let lb =
                feature_lower_bound(&t.project_envelope(&Envelope::compute(&y, k)), &t.project(&x));
            let d = ldtw_distance(&x, &y, k);
            assert!(lb <= d + 1e-9, "k={k}");
        }
    }

    #[test]
    fn envelope_box_contains_member_projections() {
        let t = Dft::new(32, 4);
        let y = series(32, 0.5);
        let env = Envelope::compute(&y, 3);
        let feature_box = t.project_envelope(&env);
        for z in [y.clone(), env.lower().to_vec(), env.upper().to_vec()] {
            assert!(feature_box.contains_point(&t.project(&z)));
        }
    }

    #[test]
    fn nyquist_row_handled_for_full_dimension() {
        // dims = input_len exercises the Nyquist cosine row.
        let t = Dft::new(8, 8);
        let x = series(8, 0.2);
        let y = series(8, 1.2);
        // Full orthonormal basis: distances preserved exactly.
        assert!(
            (euclidean(&t.project(&x), &t.project(&y)) - euclidean(&x, &y)).abs() < 1e-9
        );
    }
}
