//! Piecewise Aggregate Approximation envelope transforms.
//!
//! Two variants, both reducing length-`n` series to `N` frame features:
//!
//! * [`NewPaa`] — the paper's contribution: the envelope image takes the
//!   frame **average** of each envelope bound (a direct instance of the
//!   Lemma 3 construction, since all PAA coefficients are positive).
//! * [`KeoghPaa`] — Keogh's original (VLDB 2002) envelope reduction: the
//!   frame **min of the lower bound / max of the upper bound**. Its box
//!   always contains New_PAA's box, so its lower bound is never tighter —
//!   the comparison driving Figs 6–10.
//!
//! Both variants project plain series identically (frame means), and both
//! use orthonormal scaling (`1/√frame_len` box functions), so Euclidean
//! feature distances directly lower-bound original distances.

use hum_index::Rect;

use crate::envelope::Envelope;
use crate::transform::{EnvelopeTransform, LinearEnvelopeTransform};

/// Builds the orthonormal PAA coefficient rows: row `j` equals
/// `1/sqrt(frame)` over frame `j` and zero elsewhere.
fn paa_rows(input_len: usize, dims: usize) -> Vec<Vec<f64>> {
    assert!(dims > 0, "need at least one output dimension");
    assert!(input_len >= dims, "cannot expand dimensionality");
    assert_eq!(
        input_len % dims,
        0,
        "PAA requires the reduced dimension ({dims}) to divide the length ({input_len})"
    );
    let frame = input_len / dims;
    let v = 1.0 / (frame as f64).sqrt();
    (0..dims)
        .map(|j| {
            let mut row = vec![0.0; input_len];
            for x in &mut row[j * frame..(j + 1) * frame] {
                *x = v;
            }
            row
        })
        .collect()
}

/// The paper's improved PAA envelope transform ("New_PAA").
///
/// ```
/// use hum_core::transform::paa::{KeoghPaa, NewPaa};
/// use hum_core::transform::{feature_lower_bound, EnvelopeTransform};
/// use hum_core::Envelope;
///
/// let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5).sin()).collect();
/// let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.5 + 1.0).sin()).collect();
/// let env = Envelope::compute(&y, 2);
///
/// let new = NewPaa::new(32, 4);
/// let keogh = KeoghPaa::new(32, 4);
/// let lb_new = feature_lower_bound(&new.project_envelope(&env), &new.project(&x));
/// let lb_keogh = feature_lower_bound(&keogh.project_envelope(&env), &keogh.project(&x));
/// assert!(lb_new >= lb_keogh); // never looser than Keogh's reduction
/// ```
#[derive(Debug, Clone)]
pub struct NewPaa {
    inner: LinearEnvelopeTransform,
}

impl NewPaa {
    /// Creates a New_PAA transform reducing length-`input_len` series to
    /// `dims` features.
    ///
    /// # Panics
    /// Panics unless `dims` divides `input_len`.
    pub fn new(input_len: usize, dims: usize) -> Self {
        NewPaa { inner: LinearEnvelopeTransform::from_rows("New_PAA", paa_rows(input_len, dims)) }
    }
}

impl EnvelopeTransform for NewPaa {
    fn input_len(&self) -> usize {
        self.inner.input_len()
    }

    fn output_dims(&self) -> usize {
        self.inner.output_dims()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn project(&self, x: &[f64]) -> Vec<f64> {
        self.inner.project(x)
    }

    fn project_envelope(&self, env: &Envelope) -> Rect {
        // All PAA coefficients are positive, so the Lemma 3 sign-split
        // reduces to transforming each bound independently: the frame
        // averages of the envelope.
        self.inner.project_envelope(env)
    }
}

/// Keogh's original PAA envelope transform ("Keogh_PAA", VLDB 2002).
#[derive(Debug, Clone)]
pub struct KeoghPaa {
    projector: LinearEnvelopeTransform,
    frame: usize,
}

impl KeoghPaa {
    /// Creates a Keogh_PAA transform reducing length-`input_len` series to
    /// `dims` features.
    ///
    /// # Panics
    /// Panics unless `dims` divides `input_len`.
    pub fn new(input_len: usize, dims: usize) -> Self {
        KeoghPaa {
            projector: LinearEnvelopeTransform::from_rows(
                "Keogh_PAA",
                paa_rows(input_len, dims),
            ),
            frame: input_len / dims,
        }
    }
}

impl EnvelopeTransform for KeoghPaa {
    fn input_len(&self) -> usize {
        self.projector.input_len()
    }

    fn output_dims(&self) -> usize {
        self.projector.output_dims()
    }

    fn name(&self) -> &str {
        self.projector.name()
    }

    fn project(&self, x: &[f64]) -> Vec<f64> {
        self.projector.project(x)
    }

    fn project_envelope(&self, env: &Envelope) -> Rect {
        assert_eq!(env.len(), self.input_len(), "envelope length mismatch");
        // Frame minima of the lower bound and maxima of the upper bound,
        // scaled by √frame to stay commensurate with the orthonormal
        // projection: for any z inside the envelope, its frame mean lies
        // within [min lower, max upper] of that frame.
        let scale = (self.frame as f64).sqrt();
        let dims = self.output_dims();
        let mut lo = Vec::with_capacity(dims);
        let mut hi = Vec::with_capacity(dims);
        for j in 0..dims {
            let span = j * self.frame..(j + 1) * self.frame;
            let l = env.lower()[span.clone()].iter().cloned().fold(f64::INFINITY, f64::min);
            let u = env.upper()[span].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            lo.push(l * scale);
            hi.push(u * scale);
        }
        Rect::new(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtw::ldtw_distance;
    use crate::transform::feature_lower_bound;
    use hum_linalg::vec_ops::euclidean;

    fn series(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.45 + phase).sin() * 3.0 + (i % 3) as f64 * 0.3).collect()
    }

    #[test]
    fn projection_is_scaled_frame_means() {
        let t = NewPaa::new(8, 2);
        let x = vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0];
        let f = t.project(&x);
        // √4 · mean = 2 · mean.
        assert!((f[0] - 2.0 * 2.5).abs() < 1e-12);
        assert!((f[1] - 2.0 * 10.0).abs() < 1e-12);
    }

    #[test]
    fn both_paa_variants_project_identically() {
        let a = NewPaa::new(32, 4);
        let b = KeoghPaa::new(32, 4);
        let x = series(32, 0.7);
        assert_eq!(a.project(&x), b.project(&x));
    }

    #[test]
    fn paa_projection_is_lower_bounding() {
        let t = NewPaa::new(64, 8);
        let x = series(64, 0.0);
        let y = series(64, 1.9);
        assert!(euclidean(&t.project(&x), &t.project(&y)) <= euclidean(&x, &y) + 1e-12);
    }

    #[test]
    fn new_paa_box_is_nested_inside_keogh_box() {
        let new = NewPaa::new(64, 8);
        let keogh = KeoghPaa::new(64, 8);
        let y = series(64, 0.3);
        for k in [1usize, 3, 8] {
            let env = Envelope::compute(&y, k);
            let nb = new.project_envelope(&env);
            let kb = keogh.project_envelope(&env);
            for j in 0..8 {
                assert!(kb.lo()[j] <= nb.lo()[j] + 1e-12, "k={k} j={j}");
                assert!(kb.hi()[j] >= nb.hi()[j] - 1e-12, "k={k} j={j}");
            }
        }
    }

    #[test]
    fn new_paa_lower_bound_is_at_least_keoghs() {
        let new = NewPaa::new(128, 8);
        let keogh = KeoghPaa::new(128, 8);
        let x = series(128, 0.0);
        let y = series(128, 2.4);
        for k in [1usize, 4, 12] {
            let env = Envelope::compute(&y, k);
            let lb_new = feature_lower_bound(&new.project_envelope(&env), &new.project(&x));
            let lb_keogh = feature_lower_bound(&keogh.project_envelope(&env), &keogh.project(&x));
            let true_d = ldtw_distance(&x, &y, k);
            assert!(lb_new + 1e-12 >= lb_keogh, "k={k}");
            assert!(lb_new <= true_d + 1e-9, "k={k}");
            assert!(lb_keogh <= true_d + 1e-9, "k={k}");
        }
    }

    #[test]
    fn keogh_box_contains_projections_of_envelope_members() {
        let keogh = KeoghPaa::new(32, 4);
        let y = series(32, 1.0);
        let env = Envelope::compute(&y, 2);
        let feature_box = keogh.project_envelope(&env);
        // Members: the series, both bounds, and a mixture.
        for z in [
            y.clone(),
            env.lower().to_vec(),
            env.upper().to_vec(),
            env.lower().iter().zip(env.upper()).map(|(l, u)| 0.5 * (l + u)).collect(),
        ] {
            assert!(feature_box.contains_point(&keogh.project(&z)));
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn non_divisible_dims_rejected() {
        let _ = NewPaa::new(10, 3);
    }
}
