//! Warping indexes with envelope transforms.
//!
//! This crate is the primary contribution of Zhu & Shasha, *"Warping Indexes
//! with Envelope Transforms for Query by Humming"* (SIGMOD 2003), implemented
//! as a reusable library:
//!
//! * [`normal`] — shift- and tempo-invariant *normal forms* (§3.3): subtract
//!   the mean, resample to a canonical length (Uniform Time Warping).
//! * [`upsample`] — `w`-upsampling and the UTW distance (Definitions 2–3,
//!   Lemma 1).
//! * [`dtw`] — Dynamic Time Warping and its `k`-local variant LDTW
//!   (Definitions 1, 4, 5) with a banded O(nk) dynamic program and warping-
//!   path recovery.
//! * [`envelope`] — the `k`-envelope of a series (Definition 6) via monotonic
//!   deques, and the distance between a series and an envelope
//!   (Definition 7), which is Keogh's LB lower bound (Lemma 2).
//! * [`transform`] — dimensionality-reduction transforms extended to
//!   envelopes. The container-invariance construction of Lemma 3 turns *any*
//!   linear lower-bounding transform (PAA, DFT, DWT, SVD) into a DTW index
//!   transform with no false negatives (Theorem 1). Includes the paper's
//!   improved **New_PAA** envelope reduction and Keogh's original
//!   **Keogh_PAA** for comparison.
//! * [`tightness`] — the tightness-of-lower-bound metric used throughout the
//!   paper's evaluation (§5.2).
//! * [`engine`] — the GEMINI query engine (§4.3): feature extraction, spatial
//!   indexing via any [`hum_index::SpatialIndex`] backend, ε-range and k-NN
//!   queries with exact-DTW refinement and full access accounting, plus a
//!   batched execution layer ([`engine::BatchQuery`]) that fans queries out
//!   across threads with bit-identical, thread-count-invariant results.
//! * [`batch`] — the deterministic chunked fan-out underneath batched
//!   execution (fixed-size chunks, chunk-order merge, per-worker scratch).
//! * [`shard`] — scatter-gather serving over a hash-partitioned corpus:
//!   [`shard::ShardedEngine`] fans each query across independent engine
//!   shards (k-NN via a deterministic two-phase radius schedule) and merges
//!   hits in fixed shard order, bit-identical to the monolithic engine.
//! * [`segment`] — the segmented storage view for LSM-style stores: one
//!   query fanned over a memtable plus immutable segments (each a
//!   [`shard::ShardedEngine`] over its sub-corpus) and k-way-merged back,
//!   bit-identical to a monolithic engine over the union corpus, with
//!   conservative per-segment pruning (feature-space bounding boxes,
//!   bloom-style id filters).
//! * [`obs`] — observability: a registry of named monotonic counters and
//!   duration histograms, opt-in per-query cascade traces
//!   ([`obs::QueryTrace`]), and text/JSON exporters. Counters are
//!   deterministic and may appear in results; wall-clock timers never do.
//! * [`plan`] — build-time transform planning: measure every plannable
//!   `(family, dimension)` candidate's tightness and estimated candidate
//!   ratio on a seeded corpus sample and emit a deterministic, persistable
//!   [`plan::TransformPlan`] (tightness-first, cost model breaks ties).
//! * [`subsequence`] — sliding-window subsequence matching over long series,
//!   the §3.2 alternative to whole-sequence matching.
//! * [`l1`] — the same framework under the L1 metric, the "other distance
//!   metrics" extension §4 mentions.
//! * [`kernel`] — the SIMD-friendly inner loops under [`dtw`], [`envelope`]
//!   and the engine's verification cascade: aligned structure-of-arrays
//!   buffers, blocked lower-bound accumulation, an unrolled banded-DTW row
//!   recurrence, and a conservative `f32` prefilter. The `simd` cargo
//!   feature selects the unrolled forms by default; results are
//!   bit-identical either way.
//! * [`session`] — incremental query sessions (query-as-you-hum):
//!   [`session::QuerySession`] buffers raw frames, maintains a compensated
//!   running mean and an extend-on-append envelope, and `refine()`s through
//!   the same cascade — bit-identical to a one-shot query over the prefix.
//!
//! # Quick example
//!
//! ```
//! use hum_core::engine::{DtwIndexEngine, EngineConfig, QueryRequest};
//! use hum_core::transform::paa::NewPaa;
//! use hum_index::RStarTree;
//!
//! // Sixteen-point toy series; real workloads use length 128–256.
//! let db: Vec<Vec<f64>> = (0..10)
//!     .map(|s| (0..16).map(|t| ((t + s) as f64 * 0.7).sin()).collect())
//!     .collect();
//!
//! let transform = NewPaa::new(16, 4);
//! let index = RStarTree::new(4);
//! let mut engine = DtwIndexEngine::new(transform, index, EngineConfig::default());
//! for (id, series) in db.iter().enumerate() {
//!     engine.insert(id as u64, series.clone());
//! }
//!
//! // Range query under DTW with Sakoe-Chiba half-width 2: no false negatives.
//! let request = QueryRequest::range(0.5).with_series(db[3].clone()).with_band(2);
//! let outcome = engine.try_query(&request).unwrap();
//! assert!(outcome.result.matches.iter().any(|(id, _)| *id == 3));
//! ```

pub mod batch;
pub mod dtw;
pub mod engine;
pub mod envelope;
pub mod kernel;
pub mod l1;
pub mod normal;
pub mod obs;
pub mod plan;
pub mod segment;
pub mod session;
pub mod shard;
pub mod subsequence;
pub mod tightness;
pub mod transform;
pub mod upsample;

pub use dtw::{band_for_warping_width, dtw_distance, ldtw_distance};
pub use envelope::Envelope;
pub use session::QuerySession;
pub use transform::EnvelopeTransform;
