//! Normal forms (paper §3.3).
//!
//! Before any comparison, series are transformed to a *normal form* that
//! factors out the distortions a hummer is allowed:
//!
//! 1. **Shift invariance** — subtract the mean pitch (absolute pitch does not
//!    matter).
//! 2. **Tempo invariance** — Uniform Time Warping: resample every series to a
//!    canonical length so that global tempo cancels.
//! 3. Optionally, **amplitude normalization** — divide by the standard
//!    deviation. This is *off* for music (intervals carry meaning in
//!    semitones) and *on* for the heterogeneous benchmark datasets, matching
//!    the paper's "subtracted the mean from each time series" protocol plus
//!    cross-dataset comparability.

use hum_linalg::vec_ops::{center, std_dev};

use crate::upsample::resample;

/// Configuration of the normal-form pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalForm {
    /// Canonical length every series is resampled to.
    pub length: usize,
    /// Subtract the mean (shift invariance). Nearly always `true`.
    pub center: bool,
    /// Divide by the standard deviation after centering.
    pub scale_to_unit_variance: bool,
    /// Centered moving-average window applied after resampling (0 or 1 =
    /// off). One of the query transformations of Rafiei & Mendelzon that
    /// the paper cites (§2); useful for suppressing frame-level pitch
    /// wobble before matching.
    pub smoothing_window: usize,
}

impl Default for NormalForm {
    fn default() -> Self {
        NormalForm { length: 128, center: true, scale_to_unit_variance: false, smoothing_window: 0 }
    }
}

impl NormalForm {
    /// A normal form with the given canonical length, centering only.
    pub fn with_length(length: usize) -> Self {
        NormalForm { length, ..NormalForm::default() }
    }

    /// A normal form with centering and unit-variance scaling (used for the
    /// cross-dataset tightness experiments).
    pub fn z_normalized(length: usize) -> Self {
        NormalForm { length, center: true, scale_to_unit_variance: true, ..NormalForm::default() }
    }

    /// This normal form with a centered moving-average smoother of the
    /// given window.
    pub fn with_smoothing(self, window: usize) -> Self {
        NormalForm { smoothing_window: window, ..self }
    }

    /// Applies the pipeline to an arbitrary-length series.
    ///
    /// # Panics
    /// Panics if the input is empty or `self.length == 0`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert!(!x.is_empty(), "normal form of empty series");
        assert!(self.length > 0, "canonical length must be positive");
        let mut out = resample(x, self.length);
        if self.smoothing_window > 1 {
            out = moving_average(&out, self.smoothing_window);
        }
        if self.center {
            center(&mut out);
        }
        if self.scale_to_unit_variance {
            let sd = std_dev(&out);
            if sd > 1e-12 {
                for v in &mut out {
                    *v /= sd;
                }
            }
        }
        out
    }
}

/// Centered moving average with a window of `w` samples (edges use the
/// available partial window, so the output length equals the input length).
///
/// Interior points average exactly `w` samples: `(w − 1) / 2` before the
/// center and `w / 2` after it — symmetric for odd `w`, one extra trailing
/// sample for even `w`. (A naive `[i − w/2, i + w/2]` span would silently
/// average `w + 1` samples whenever `w` is even.)
pub fn moving_average(x: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    let n = x.len();
    let half_lo = (w - 1) / 2;
    let half_hi = w / 2;
    // Prefix sums for O(1) window means.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &v in x {
        prefix.push(prefix.last().expect("nonempty") + v);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half_lo);
            let hi = (i + half_hi).min(n - 1);
            (prefix[hi + 1] - prefix[lo]) / (hi + 1 - lo) as f64
        })
        .collect()
}

/// Convenience: centered, canonical-length normal form of `x`.
pub fn normal_form(x: &[f64], length: usize) -> Vec<f64> {
    NormalForm::with_length(length).apply(x)
}

/// `true` if two raw series have identical normal forms up to tolerance —
/// i.e. they differ only by shift and global tempo.
pub fn equivalent_up_to_shift_and_tempo(x: &[f64], y: &[f64], length: usize, tol: f64) -> bool {
    let nx = normal_form(x, length);
    let ny = normal_form(y, length);
    nx.iter().zip(&ny).all(|(a, b)| (a - b).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upsample::upsample;
    use hum_linalg::vec_ops::mean;

    #[test]
    fn output_has_canonical_length_and_zero_mean() {
        let x: Vec<f64> = (0..37).map(|i| (i as f64 * 0.4).sin() + 60.0).collect();
        let nf = NormalForm::with_length(128).apply(&x);
        assert_eq!(nf.len(), 128);
        assert!(mean(&nf).abs() < 1e-9);
    }

    #[test]
    fn shift_invariance() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).cos()).collect();
        let shifted: Vec<f64> = x.iter().map(|v| v + 12.0).collect();
        assert!(equivalent_up_to_shift_and_tempo(&x, &shifted, 128, 1e-9));
    }

    #[test]
    fn tempo_invariance_for_exact_upsampling() {
        // Doubling every sample is the same melody at half tempo.
        let x: Vec<f64> = (0..32).map(|i| ((i / 4) % 5) as f64).collect();
        let slow = upsample(&x, 2);
        assert!(equivalent_up_to_shift_and_tempo(&x, &slow, 64, 1e-9));
    }

    #[test]
    fn distinct_melodies_stay_distinct() {
        let x: Vec<f64> = (0..64).map(|i| ((i / 8) % 4) as f64).collect();
        let y: Vec<f64> = (0..64).map(|i| ((i / 8) % 3) as f64 * 2.0).collect();
        assert!(!equivalent_up_to_shift_and_tempo(&x, &y, 64, 1e-3));
    }

    #[test]
    fn z_normalization_gives_unit_variance() {
        let x: Vec<f64> = (0..100).map(|i| (i as f64 * 0.21).sin() * 40.0 + 7.0).collect();
        let nf = NormalForm::z_normalized(128).apply(&x);
        let sd = std_dev(&nf);
        assert!((sd - 1.0).abs() < 1e-9, "sd = {sd}");
    }

    #[test]
    fn constant_series_survives_z_normalization() {
        let x = vec![5.0; 40];
        let nf = NormalForm::z_normalized(64).apply(&x);
        assert!(nf.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn default_is_centering_only() {
        let d = NormalForm::default();
        assert!(d.center && !d.scale_to_unit_variance);
        assert_eq!(d.length, 128);
        assert_eq!(d.smoothing_window, 0);
    }

    #[test]
    fn moving_average_flattens_wobble_preserves_constants() {
        let x = vec![5.0; 40];
        assert_eq!(moving_average(&x, 5), x);
        // Alternating wobble around a ramp gets suppressed.
        let wobbly: Vec<f64> =
            (0..64).map(|i| i as f64 * 0.1 + if i % 2 == 0 { 0.5 } else { -0.5 }).collect();
        let smooth = moving_average(&wobbly, 4);
        let wobble = |s: &[f64]| -> f64 {
            s.windows(3).map(|w| (w[0] - 2.0 * w[1] + w[2]).abs()).sum()
        };
        assert!(wobble(&smooth) < 0.3 * wobble(&wobbly));
        assert_eq!(smooth.len(), wobbly.len());
    }

    #[test]
    fn moving_average_window_covers_exactly_w_samples() {
        // Averaging a unit impulse recovers each position's effective
        // sample count: out[i] = 1/count(i) where the window covers the
        // impulse, so the impulse's own output pins the interior count and
        // the number of covered positions pins the window span. Regression
        // for the even-window bug where w = 4 silently averaged 5 samples.
        let n = 32;
        let center = n / 2;
        for w in [2usize, 3, 4, 5, 8, 9] {
            let mut x = vec![0.0; n];
            x[center] = 1.0;
            let out = moving_average(&x, w);
            assert!(
                (out[center] - 1.0 / w as f64).abs() < 1e-12,
                "w={w}: interior window averaged {} samples, expected {w}",
                (1.0 / out[center]).round()
            );
            let covered = out.iter().filter(|v| **v > 0.0).count();
            assert_eq!(covered, w, "w={w}: window span must be exactly {w} positions");
        }
    }

    #[test]
    fn moving_average_odd_window_is_symmetric() {
        // A symmetric window leaves a linear ramp unchanged away from the
        // edges; the even window is deliberately half-a-sample asymmetric.
        let ramp: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let odd = moving_average(&ramp, 5);
        for i in 2..22 {
            assert!((odd[i] - ramp[i]).abs() < 1e-12, "i={i}");
        }
        let even = moving_average(&ramp, 4);
        for i in 2..21 {
            assert!((even[i] - (ramp[i] + 0.5)).abs() < 1e-12, "i={i}");
        }
    }

    #[test]
    fn smoothing_in_the_pipeline_is_applied() {
        let noisy: Vec<f64> =
            (0..128).map(|i| 60.0 + if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let plain = NormalForm::with_length(128).apply(&noisy);
        let smoothed = NormalForm::with_length(128).with_smoothing(4).apply(&noisy);
        let energy = |s: &[f64]| s.iter().map(|v| v * v).sum::<f64>();
        assert!(energy(&smoothed) < 0.2 * energy(&plain));
    }
}
