//! Segmented storage view: one query over many engine units.
//!
//! The LSM-style store in `hum-qbh` keeps the corpus as a write-optimized
//! *memtable* (recent inserts) over a list of immutable *segments* (flushed
//! batches). Each unit is a full [`ShardedEngine`] over its sub-corpus, so
//! per-unit answers inherit the sharding layer's bit-identity contract; this
//! module adds the cross-unit layer:
//!
//! * [`query_segmented`] fans a request over every unit and merges the
//!   per-unit sorted match lists with the same k-way `(distance, id, shard)`
//!   heap the sharding layer uses. Ids are unique across units, so the merge
//!   reproduces exactly the matches a monolithic engine over the union
//!   corpus would return — at every segment count × shard count × thread
//!   count. (Counters follow the sharding convention: absorbed in unit
//!   order; wall-clock-dependent fields never appear in results.)
//! * [`SegmentMeta`] carries per-segment pruning metadata: a feature-space
//!   bounding box over the segment's projected features and a bloom-style
//!   id filter. For an indexed ε-range query the engine admits a candidate
//!   only when `feature_box.min_dist_point(features) <= radius`
//!   (the GEMINI lower-bound filter), and for every feature inside the
//!   segment's box `min_dist_point >= min_dist_rect(box)` — so a segment
//!   with `min_dist_rect(box) > radius` cannot contribute a candidate, let
//!   alone a match, and is skipped without being touched. k-NN and the
//!   scan paths are never pruned (their thresholds are not known up
//!   front), keeping the no-false-negative guarantee trivial.
//!
//! # Deadlines
//!
//! A budget expiry inside any unit aborts the whole query with
//! [`EngineError::DeadlineExceeded`] carrying the absorbed partial counters
//! of every unit visited so far — the same contract as the sharding layer.

use hum_index::{Rect, SpatialIndex};

use crate::batch::{parallel_map_chunked, BatchOptions};
use crate::engine::{
    BatchOutcome, EngineError, EngineStats, QueryOutcome, QueryRequest, QueryResult,
    QueryScratch, RequestKind,
};
use crate::envelope::Envelope;
use crate::obs::{Metric, MetricsSink, QueryKind, QueryTrace, Timer};
use crate::shard::{merge_sorted_matches, query_kind, ShardedEngine};
use crate::transform::EnvelopeTransform;

/// The splitmix64 finalizer (same mixing steps as [`crate::shard::shard_for`]):
/// decorrelates clustered id ranges before they index bloom-filter bits.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A bloom-style set of melody ids: ~10 bits and 6 probes per expected id
/// (false-positive rate under 1%), no false negatives. Point operations
/// (duplicate checks, removals, lookups) use it to skip segments that
/// cannot hold an id.
#[derive(Debug, Clone)]
pub struct IdFilter {
    bits: Vec<u64>,
    probes: u32,
}

impl IdFilter {
    /// An empty filter sized for `expected` ids (clamped to at least one
    /// 64-bit word).
    pub fn new(expected: usize) -> Self {
        let bit_count = expected.saturating_mul(10).next_power_of_two().max(64);
        IdFilter { bits: vec![0u64; bit_count / 64], probes: 6 }
    }

    /// Double hashing over two independent splitmix64 streams; `h2 | 1`
    /// keeps the stride odd, so probes cycle the power-of-two bit table.
    fn bit_positions(words: usize, probes: u32, id: u64) -> impl Iterator<Item = usize> {
        let h1 = mix64(id.wrapping_add(0x9E37_79B9_7F4A_7C15));
        let h2 = mix64(id ^ 0xD1B5_4A32_D192_ED03) | 1;
        let mask = (words as u64 * 64) - 1;
        (0..probes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) & mask) as usize)
    }

    /// Records `id` in the filter.
    pub fn insert(&mut self, id: u64) {
        for pos in Self::bit_positions(self.bits.len(), self.probes, id) {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
    }

    /// `false` means `id` is definitely absent; `true` means it may be
    /// present.
    pub fn may_contain(&self, id: u64) -> bool {
        Self::bit_positions(self.bits.len(), self.probes, id)
            .all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }
}

/// Per-segment pruning metadata: the bounding box of the segment's
/// projected feature vectors plus an [`IdFilter`] over its melody ids.
/// Rebuilt from the segment's contents on load (never persisted — it is
/// derived state, and recomputing it keeps the on-disk format small and
/// the metadata impossible to desynchronize).
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    mbr: Option<Rect>,
    filter: IdFilter,
    len: usize,
}

impl SegmentMeta {
    /// Empty metadata expecting `expected` entries.
    pub fn new(expected: usize) -> Self {
        SegmentMeta { mbr: None, filter: IdFilter::new(expected), len: 0 }
    }

    /// Records one entry: its id and its *projected* feature vector.
    pub fn add(&mut self, id: u64, features: &[f64]) {
        match &mut self.mbr {
            Some(rect) => rect.extend_point(features),
            None => self.mbr = Some(Rect::from_point(features)),
        }
        self.filter.insert(id);
        self.len += 1;
    }

    /// Entries recorded so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The feature-space bounding box (`None` for an empty segment).
    pub fn mbr(&self) -> Option<&Rect> {
        self.mbr.as_ref()
    }

    /// `false` means the segment definitely does not hold `id`.
    pub fn may_contain_id(&self, id: u64) -> bool {
        self.len > 0 && self.filter.may_contain(id)
    }

    /// Conservative ε-range admission test: `false` only when *no* feature
    /// vector in the segment can pass the engine's index-level lower-bound
    /// filter (`min_dist_point(f) <= radius`), because every stored feature
    /// lies inside the box and `min_dist_rect` lower-bounds
    /// `min_dist_point` over it.
    pub fn may_intersect_range(&self, feature_box: &Rect, radius: f64) -> bool {
        match &self.mbr {
            Some(rect) => feature_box.min_dist_rect(rect) <= radius,
            None => false,
        }
    }
}

/// One storage unit in a segmented query: an engine over a sub-corpus,
/// with optional pruning metadata (the memtable carries `None` — it is
/// always queried).
pub struct SegmentUnit<'a, T, I> {
    /// The unit's engine (memtable or segment), sharded like every other.
    pub engine: &'a ShardedEngine<T, I>,
    /// Pruning metadata, when the unit is an immutable segment.
    pub meta: Option<&'a SegmentMeta>,
}

/// Executes one request across every unit and merges the results; records
/// the merged query once into `metrics`. With a single unit this delegates
/// wholesale to that unit's scatter-gather, so matches, counters, *and*
/// trace are exactly the sharded engine's own (and with one shard, the
/// monolithic engine's own).
///
/// # Errors
/// The validation errors of the underlying engines, plus
/// [`EngineError::DeadlineExceeded`] carrying partial counters when the
/// request's budget expires inside any unit.
pub fn query_segmented<T, I>(
    units: &[SegmentUnit<'_, T, I>],
    request: &QueryRequest,
    scratch: &mut QueryScratch,
    metrics: &MetricsSink,
) -> Result<QueryOutcome, EngineError>
where
    T: EnvelopeTransform + Sync,
    I: SpatialIndex + Sync,
{
    let started = metrics.start_timer();
    let outcome = run_segmented(units, request, scratch, None)?;
    metrics.record_query(query_kind(request), &outcome.result.stats, started);
    Ok(outcome)
}

/// Batched [`query_segmented`]: every request runs against every unit,
/// fanned across [`BatchOptions::threads`] in deterministic fixed-size
/// chunks (per-unit fan-out is 1 — the only parallelism is across
/// requests, mirroring the sharded batch path). Results are bit-identical
/// to sequential [`query_segmented`] calls at every thread count.
///
/// # Errors
/// The first validation error among the requests, or the earliest
/// [`EngineError::DeadlineExceeded`] in submission order.
pub fn query_segmented_batch<T, I>(
    units: &[SegmentUnit<'_, T, I>],
    requests: &[QueryRequest],
    options: &BatchOptions,
    metrics: &MetricsSink,
) -> Result<BatchOutcome, EngineError>
where
    T: EnvelopeTransform + Sync,
    I: SpatialIndex + Sync,
{
    let started = metrics.start_timer();
    let runs = parallel_map_chunked(requests, options, QueryScratch::new, |scratch, _i, request| {
        let per_query = metrics.start_timer();
        let outcome = run_segmented(units, request, scratch, Some(1))?;
        metrics.record_query(query_kind(request), &outcome.result.stats, per_query);
        Ok(outcome)
    });
    let mut outcomes = Vec::with_capacity(runs.len());
    for run in runs {
        outcomes.push(run?);
    }
    let mut stats = EngineStats::default();
    for outcome in &outcomes {
        stats.absorb(&outcome.result.stats);
    }
    metrics.add(Metric::Batches, 1);
    metrics.observe_since(Timer::Batch, started);
    Ok(BatchOutcome { outcomes, stats })
}

/// The fan-and-merge core. `fanout_override` caps each unit's internal
/// scatter width (the batch path pins it to 1).
fn run_segmented<T, I>(
    units: &[SegmentUnit<'_, T, I>],
    request: &QueryRequest,
    scratch: &mut QueryScratch,
    fanout_override: Option<usize>,
) -> Result<QueryOutcome, EngineError>
where
    T: EnvelopeTransform + Sync,
    I: SpatialIndex + Sync,
{
    let Some(first) = units.first() else {
        // No units at all (not even a memtable): an empty corpus answers
        // with no matches and untouched counters.
        return Ok(QueryOutcome { result: QueryResult::default(), trace: None });
    };
    let unit_fanout = |unit: &SegmentUnit<'_, T, I>| {
        fanout_override.unwrap_or_else(|| unit.engine.fanout())
    };
    if units.len() == 1 {
        // Single unit: the layer is the identity; matches, counters, and
        // trace are the unit engine's own.
        return first.engine.run_sharded(request, scratch, unit_fanout(first));
    }

    // Validate once up front so a malformed request errors even when
    // pruning would skip every prunable unit.
    if let Some(shard) = first.engine.shards().first() {
        shard.validate_query(request.series(), request.band())?;
    }

    // Conservative segment pruning, indexed ε-range only: a segment whose
    // feature box sits farther than `radius` from the query's envelope box
    // cannot contribute an index candidate (see the module docs).
    let feature_box = match request.kind() {
        RequestKind::Range { .. } if !request.scan_enabled() => {
            let envelope = Envelope::compute(request.series(), request.band());
            Some(first.engine.transform().project_envelope(&envelope))
        }
        _ => None,
    };
    let survives = |unit: &SegmentUnit<'_, T, I>| match (&feature_box, unit.meta, request.kind()) {
        (Some(fb), Some(meta), RequestKind::Range { radius }) => {
            meta.may_intersect_range(fb, radius)
        }
        _ => true,
    };

    // Per-unit runs share the request with tracing off; the merged trace is
    // built once at the top from the absorbed counters.
    let sub = request.clone().with_trace(false);
    let mut stats = EngineStats::default();
    let mut pools = Vec::with_capacity(units.len());
    let mut expired = false;
    for unit in units {
        if !survives(unit) {
            continue;
        }
        match unit.engine.run_sharded(&sub, scratch, unit_fanout(unit)) {
            Ok(outcome) => {
                stats.absorb(&outcome.result.stats);
                pools.push(outcome.result.matches);
            }
            Err(EngineError::DeadlineExceeded { stats: partial }) => {
                stats.absorb(&partial);
                expired = true;
            }
            Err(other) => return Err(other),
        }
    }
    if expired {
        stats.matches = 0;
        return Err(EngineError::DeadlineExceeded { stats });
    }

    // Ids are unique across units, so merging the per-unit sorted lists
    // (each exact over its sub-corpus) reproduces the monolithic order; a
    // k-NN keeps the k global best — every unit reported its own k best,
    // so no global top-k item can be missing from the merge.
    let mut matches = merge_sorted_matches(pools);
    if let RequestKind::Knn { k } = request.kind() {
        matches.truncate(k);
    }
    stats.matches = matches.len() as u64;
    let result = QueryResult { matches, stats };

    let trace = request.trace_enabled().then(|| {
        let kind = query_kind(request);
        let candidates_in = match kind {
            QueryKind::Range | QueryKind::Knn => result.stats.index.candidates,
            // Scan paths are never pruned, so the cascade saw every unit.
            QueryKind::ScanRange | QueryKind::ScanKnn => {
                units.iter().map(|u| u.engine.len() as u64).sum()
            }
        };
        QueryTrace::from_stats(kind, request.band(), candidates_in, &result.stats)
    });
    Ok(QueryOutcome { result, trace })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_filter_has_no_false_negatives_and_few_false_positives() {
        let mut filter = IdFilter::new(500);
        for id in 0..500u64 {
            filter.insert(id * 7 + 3);
        }
        for id in 0..500u64 {
            assert!(filter.may_contain(id * 7 + 3), "false negative on {id}");
        }
        let false_positives = (10_000..20_000u64).filter(|&id| filter.may_contain(id)).count();
        assert!(false_positives < 300, "{false_positives} false positives in 10k probes");
    }

    #[test]
    fn segment_meta_prunes_only_unreachable_boxes() {
        let mut meta = SegmentMeta::new(4);
        meta.add(1, &[0.0, 0.0]);
        meta.add(2, &[1.0, 2.0]);
        // Query box well inside the segment's reach.
        let near = Rect::new(vec![0.5, 0.5], vec![0.6, 0.6]);
        assert!(meta.may_intersect_range(&near, 0.0));
        // Query box 10 away in x: radius 5 cannot reach, radius 20 can.
        let far = Rect::new(vec![11.0, 0.0], vec![12.0, 0.0]);
        assert!(!meta.may_intersect_range(&far, 5.0));
        assert!(meta.may_intersect_range(&far, 20.0));
        // Empty segments never match anything.
        let empty = SegmentMeta::new(0);
        assert!(!empty.may_intersect_range(&near, 1e9));
        assert!(!empty.may_contain_id(1));
    }
}
