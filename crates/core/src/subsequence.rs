//! Subsequence matching (paper §3.2, method 1).
//!
//! The paper's system segments songs into phrases and runs *whole-sequence*
//! matching because "most people will hum melodic sections". The alternative
//! it cites — match the hum against every position of every full melody — is
//! implemented here on top of the same engine: each source series is sliced
//! into overlapping sliding windows, every window is brought to the engine's
//! normal form and indexed, and hits are mapped back to `(source, offset)`.
//! As the paper warns, "subsequence queries are generally slower than whole
//! sequence queries because the size of the potential candidate sequences is
//! much larger" — the window/hop trade-off below is exactly that cost.

use std::collections::HashMap;

use hum_index::{ItemId, SpatialIndex};

use crate::batch::{parallel_map_chunked, BatchOptions};
use crate::engine::{DtwIndexEngine, EngineConfig, EngineError, EngineStats, QueryRequest};
use crate::normal::NormalForm;
use crate::transform::EnvelopeTransform;

/// Subsequence indexing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsequenceConfig {
    /// Window length in source samples.
    pub window: usize,
    /// Hop between consecutive windows in source samples. Smaller hops find
    /// matches at finer offsets at the cost of more indexed windows.
    pub hop: usize,
    /// Normal form applied to every window and query (its `length` is the
    /// engine's series length; windows are resampled to it).
    pub normal: NormalForm,
}

impl Default for SubsequenceConfig {
    fn default() -> Self {
        SubsequenceConfig { window: 64, hop: 16, normal: NormalForm::with_length(128) }
    }
}

/// One subsequence hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsequenceMatch {
    /// Source series identifier.
    pub source: ItemId,
    /// Window start offset in source samples.
    pub offset: usize,
    /// Band-constrained DTW distance between the normal forms.
    pub distance: f64,
}

/// Result of a subsequence query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubsequenceResult {
    /// Hits sorted by ascending distance.
    pub matches: Vec<SubsequenceMatch>,
    /// Engine counters.
    pub stats: EngineStats,
}

/// A sliding-window subsequence index over long series.
pub struct SubsequenceIndex<T, I> {
    engine: DtwIndexEngine<T, I>,
    config: SubsequenceConfig,
    /// window id → (source, offset). Keyed (not a Vec indexed by window id)
    /// because removing a source leaves id holes.
    windows: HashMap<ItemId, (ItemId, usize)>,
    /// source → its window ids, so a source can be removed as a unit.
    source_windows: HashMap<ItemId, Vec<ItemId>>,
    /// Next window id; never reused after removal.
    next_wid: ItemId,
}

impl<T: EnvelopeTransform, I: SpatialIndex> SubsequenceIndex<T, I> {
    /// Creates an empty subsequence index.
    ///
    /// # Panics
    /// Panics on a zero window/hop, or if the transform's input length
    /// differs from the normal-form length.
    pub fn new(transform: T, index: I, config: SubsequenceConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(config.hop > 0, "hop must be positive");
        assert_eq!(
            transform.input_len(),
            config.normal.length,
            "transform input length must equal the normal-form length"
        );
        SubsequenceIndex {
            engine: DtwIndexEngine::new(transform, index, EngineConfig::default()),
            config,
            windows: HashMap::new(),
            source_windows: HashMap::new(),
            next_wid: 0,
        }
    }

    /// Number of indexed windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &SubsequenceConfig {
        &self.config
    }

    /// Indexes every window of a source series. Sources shorter than one
    /// window contribute a single (whole-series) window.
    ///
    /// # Panics
    /// Panics on any [`EngineError`] the `try_` form would return.
    pub fn insert_source(&mut self, source: ItemId, series: &[f64]) {
        self.try_insert_source(source, series).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`SubsequenceIndex::insert_source`]: validates the whole
    /// series up front, so on error nothing was indexed.
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`] on an empty series,
    /// [`EngineError::NonFiniteSample`] on NaN/infinite samples, and
    /// [`EngineError::DuplicateId`] when `source` is already indexed
    /// (remove it first to replace it).
    pub fn try_insert_source(
        &mut self,
        source: ItemId,
        series: &[f64],
    ) -> Result<(), EngineError> {
        if series.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        crate::engine::check_finite(series, "source series")?;
        if self.source_windows.contains_key(&source) {
            return Err(EngineError::DuplicateId(source));
        }
        let window = self.config.window.min(series.len());
        let mut wids = Vec::new();
        let mut offset = 0;
        loop {
            let slice = &series[offset..(offset + window).min(series.len())];
            let wid = self.next_wid;
            self.next_wid += 1;
            self.windows.insert(wid, (source, offset));
            wids.push(wid);
            // Cannot fail: the slice is validated above and `wid` is fresh.
            self.engine.insert(wid, self.config.normal.apply(slice));
            if offset + window >= series.len() {
                break;
            }
            offset += self.config.hop;
            // Final partial window snaps to the series end so the tail is
            // always covered exactly once.
            if offset + window > series.len() {
                offset = series.len() - window;
            }
        }
        self.source_windows.insert(source, wids);
        Ok(())
    }

    /// Removes every window of `source` from the engine and the index.
    /// Returns `true` if the source was present.
    /// `true` when `source` is currently indexed.
    pub fn contains_source(&self, source: ItemId) -> bool {
        self.source_windows.contains_key(&source)
    }

    pub fn remove_source(&mut self, source: ItemId) -> bool {
        let Some(wids) = self.source_windows.remove(&source) else {
            return false;
        };
        for wid in wids {
            self.windows.remove(&wid);
            let removed = self.engine.remove(wid);
            debug_assert!(removed, "window table and engine must stay in lockstep");
        }
        true
    }

    /// All windows whose band-`k` DTW distance to the query's normal form is
    /// at most `radius`.
    pub fn range_query(&self, query: &[f64], band: usize, radius: f64) -> SubsequenceResult {
        let normal_query = self.config.normal.apply(query);
        let request = QueryRequest::range(radius).with_series(normal_query).with_band(band);
        self.annotate(self.engine.query(&request).result)
    }

    /// The `k` nearest windows. With `dedupe_sources`, only the best window
    /// per source is kept (so `k` distinct sources are returned when
    /// available).
    pub fn knn(
        &self,
        query: &[f64],
        band: usize,
        k: usize,
        dedupe_sources: bool,
    ) -> SubsequenceResult {
        // The query's normal form is the same on every iteration — compute
        // it once, outside the over-fetch loop.
        let normal_query = self.config.normal.apply(query);
        if !dedupe_sources {
            let request = QueryRequest::knn(k).with_series(normal_query).with_band(band);
            return self.annotate(self.engine.query(&request).result);
        }
        // Over-fetch, keep the best hit per source, refill until k sources
        // or the index is exhausted.
        let mut fetch = k.max(1) * 4;
        loop {
            let request =
                QueryRequest::knn(fetch).with_series(normal_query.clone()).with_band(band);
            let result = self.engine.query(&request).result;
            let fetched = result.matches.len();
            let mut annotated = self.annotate(result);
            let mut best: HashMap<ItemId, SubsequenceMatch> = HashMap::new();
            for m in annotated.matches.drain(..) {
                best.entry(m.source)
                    .and_modify(|cur| {
                        if m.distance < cur.distance {
                            *cur = m;
                        }
                    })
                    .or_insert(m);
            }
            let mut matches: Vec<SubsequenceMatch> = best.into_values().collect();
            matches.sort_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .expect("finite distances")
                    .then(a.source.cmp(&b.source))
            });
            // Terminate once k sources are covered, every window has been
            // fetched, or the engine returned fewer matches than requested —
            // in that last case the index is exhausted (no larger fetch can
            // return more), so growing `fetch` again would spin forever.
            if matches.len() >= k || fetched >= self.windows.len() || fetched < fetch {
                matches.truncate(k);
                annotated.matches = matches;
                return annotated;
            }
            fetch = (fetch * 2).min(self.windows.len());
        }
    }

    /// Batched [`SubsequenceIndex::knn`]: one result per query, in query
    /// order, computed across [`BatchOptions::threads`] workers with
    /// bit-identical, thread-count-invariant results.
    pub fn knn_batch(
        &self,
        queries: &[Vec<f64>],
        band: usize,
        k: usize,
        dedupe_sources: bool,
        options: &BatchOptions,
    ) -> Vec<SubsequenceResult>
    where
        T: Sync,
        I: Sync,
    {
        parallel_map_chunked(queries, options, || (), |(), _i, q| {
            self.knn(q, band, k, dedupe_sources)
        })
    }

    /// Batched [`SubsequenceIndex::range_query`]: one result per query, in
    /// query order, with bit-identical, thread-count-invariant results.
    pub fn range_query_batch(
        &self,
        queries: &[Vec<f64>],
        band: usize,
        radius: f64,
        options: &BatchOptions,
    ) -> Vec<SubsequenceResult>
    where
        T: Sync,
        I: Sync,
    {
        parallel_map_chunked(queries, options, || (), |(), _i, q| {
            self.range_query(q, band, radius)
        })
    }

    fn annotate(&self, result: crate::engine::QueryResult) -> SubsequenceResult {
        let matches = result
            .matches
            .into_iter()
            .map(|(wid, distance)| {
                let (source, offset) =
                    *self.windows.get(&wid).expect("hit maps to an indexed window");
                SubsequenceMatch { source, offset, distance }
            })
            .collect();
        SubsequenceResult { matches, stats: result.stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::paa::NewPaa;
    use hum_index::RStarTree;

    fn noise(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(442695);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(442695);
                ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 4.0
            })
            .collect()
    }

    fn motif(len: usize) -> Vec<f64> {
        (0..len).map(|i| 10.0 * (i as f64 * 0.3).sin() + (i / 8) as f64).collect()
    }

    fn build() -> (SubsequenceIndex<NewPaa, RStarTree>, usize) {
        let config = SubsequenceConfig {
            window: 64,
            hop: 8,
            normal: NormalForm::with_length(64),
        };
        let mut index =
            SubsequenceIndex::new(NewPaa::new(64, 8), RStarTree::new(8), config);
        // Source 0: noise with the motif planted at offset 96.
        let plant_at = 96;
        let mut source0 = noise(256, 1);
        source0.splice(plant_at..plant_at + 64, motif(64));
        index.insert_source(0, &source0);
        // Sources 1..4: pure noise.
        for s in 1..4u64 {
            index.insert_source(s, &noise(256, s * 11 + 5));
        }
        (index, plant_at)
    }

    #[test]
    fn planted_motif_is_found_at_the_right_offset() {
        let (index, plant_at) = build();
        let result = index.knn(&motif(64), 2, 1, false);
        let top = result.matches[0];
        assert_eq!(top.source, 0);
        assert_eq!(top.offset, plant_at);
        assert!(top.distance < 1e-9, "exact window should match exactly");
    }

    #[test]
    fn motif_found_despite_tempo_change() {
        // The same motif hummed at half tempo (twice the samples): UTW
        // normal form cancels the stretch.
        let (index, plant_at) = build();
        let slow: Vec<f64> = motif(64).iter().flat_map(|&v| [v, v]).collect();
        let result = index.knn(&slow, 2, 1, false);
        assert_eq!(result.matches[0].source, 0);
        assert_eq!(result.matches[0].offset, plant_at);
    }

    #[test]
    fn dedupe_returns_distinct_sources() {
        let (index, _) = build();
        let result = index.knn(&motif(64), 2, 3, true);
        assert_eq!(result.matches.len(), 3);
        let mut sources: Vec<u64> = result.matches.iter().map(|m| m.source).collect();
        sources.dedup();
        assert_eq!(sources.len(), 3, "sources must be distinct");
        assert_eq!(result.matches[0].source, 0);
    }

    #[test]
    fn window_count_and_tail_coverage() {
        let config = SubsequenceConfig {
            window: 64,
            hop: 32,
            normal: NormalForm::with_length(64),
        };
        let mut index =
            SubsequenceIndex::new(NewPaa::new(64, 8), RStarTree::new(8), config);
        index.insert_source(0, &noise(100, 3));
        // Offsets: 0, 32, then snapped tail 36.
        assert_eq!(index.window_count(), 3);
        let mut offsets: Vec<usize> = index.windows.values().map(|w| w.1).collect();
        offsets.sort_unstable();
        assert_eq!(offsets, vec![0, 32, 36]);
    }

    #[test]
    fn short_sources_become_one_window() {
        let config = SubsequenceConfig {
            window: 64,
            hop: 16,
            normal: NormalForm::with_length(64),
        };
        let mut index =
            SubsequenceIndex::new(NewPaa::new(64, 8), RStarTree::new(8), config);
        index.insert_source(9, &noise(20, 4));
        assert_eq!(index.window_count(), 1);
        let result = index.knn(&noise(20, 4), 1, 1, false);
        assert_eq!(result.matches[0].source, 9);
        assert!(result.matches[0].distance < 1e-9);
    }

    #[test]
    fn range_query_maps_windows_back() {
        let (index, plant_at) = build();
        let result = index.range_query(&motif(64), 2, 1.0);
        assert!(!result.matches.is_empty());
        assert!(result
            .matches
            .iter()
            .any(|m| m.source == 0 && m.offset == plant_at));
    }

    #[test]
    fn dedupe_with_k_beyond_sources_terminates_with_all_sources() {
        // Only 4 distinct sources exist; asking for 10 must return the 4
        // and terminate (the over-fetch loop's exhaustion guard).
        let (index, _) = build();
        let result = index.knn(&motif(64), 2, 10, true);
        assert_eq!(result.matches.len(), 4);
        let mut sources: Vec<u64> = result.matches.iter().map(|m| m.source).collect();
        sources.sort_unstable();
        sources.dedup();
        assert_eq!(sources.len(), 4);
    }

    #[test]
    fn batched_queries_match_single_queries_for_every_thread_count() {
        let (index, _) = build();
        let queries: Vec<Vec<f64>> =
            (0..5).map(|s| noise(80, 100 + s)).chain([motif(64)]).collect();
        let expected_knn: Vec<SubsequenceResult> =
            queries.iter().map(|q| index.knn(q, 2, 2, true)).collect();
        let expected_range: Vec<SubsequenceResult> =
            queries.iter().map(|q| index.range_query(q, 2, 4.0)).collect();
        for threads in [1, 2, 8] {
            let options = BatchOptions::new(threads, 2);
            assert_eq!(index.knn_batch(&queries, 2, 2, true, &options), expected_knn);
            assert_eq!(
                index.range_query_batch(&queries, 2, 4.0, &options),
                expected_range,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn removed_source_is_unfindable_and_reinsertable() {
        let (mut index, plant_at) = build();
        let before = index.window_count();
        assert!(index.remove_source(0));
        assert!(!index.remove_source(0), "second removal finds nothing");
        assert!(index.window_count() < before);

        let result = index.knn(&motif(64), 2, 4, true);
        assert!(
            result.matches.iter().all(|m| m.source != 0),
            "removed source must not appear in results"
        );

        // Re-inserting under the same source id works after removal, and
        // the motif is found at its offset again.
        let mut source0 = noise(256, 1);
        source0.splice(plant_at..plant_at + 64, motif(64));
        index.try_insert_source(0, &source0).unwrap();
        assert_eq!(index.window_count(), before);
        let top = index.knn(&motif(64), 2, 1, false).matches[0];
        assert_eq!((top.source, top.offset), (0, plant_at));
    }

    #[test]
    fn insert_source_rejects_duplicates_and_bad_input() {
        let (mut index, _) = build();
        assert_eq!(
            index.try_insert_source(0, &noise(64, 9)).unwrap_err(),
            EngineError::DuplicateId(0)
        );
        assert_eq!(index.try_insert_source(50, &[]).unwrap_err(), EngineError::EmptyQuery);
        let mut bad = noise(100, 9);
        bad[5] = f64::INFINITY;
        let before = index.window_count();
        match index.try_insert_source(50, &bad) {
            Err(EngineError::NonFiniteSample { index: i, .. }) => assert_eq!(i, 5),
            other => panic!("expected NonFiniteSample, got {other:?}"),
        }
        assert_eq!(index.window_count(), before, "failed insert indexes nothing");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let config = SubsequenceConfig {
            window: 0,
            hop: 1,
            normal: NormalForm::with_length(64),
        };
        let _ = SubsequenceIndex::new(NewPaa::new(64, 8), RStarTree::new(8), config);
    }
}
