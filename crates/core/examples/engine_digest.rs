//! Prints a bit-exact digest of engine answers and counters over a fixed
//! pseudo-random workload, for before/after comparison of engine changes.
//!
//! `ci.sh` runs this with the `simd` feature off and on, under
//! `HUM_THREADS=1` and `8`, and diffs the four outputs byte-for-byte: the
//! kernel layer (and the f32 prefilter, exercised by the mode-2 vs mode-3
//! sections) may change speed but never bits. GridFile's internal
//! counters depend on `HashMap` iteration order, so its lines print
//! matches and match-bits only.

use hum_core::batch::BatchOptions;
use hum_core::engine::{DtwIndexEngine, EngineConfig, QueryRequest};
use hum_core::transform::paa::NewPaa;
use hum_index::{GridFile, ItemId, LinearScan, RStarTree, SpatialIndex};

fn lcg_series(n: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut next = move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n)
        .map(|_| {
            let mut acc = 0.0;
            let mut s: Vec<f64> = (0..len).map(|_| { acc += next(); acc }).collect();
            hum_linalg::vec_ops::center(&mut s);
            s
        })
        .collect()
}

fn match_bits(matches: &[(ItemId, f64)]) -> u64 {
    matches
        .iter()
        .fold(0u64, |h, (id, d)| h.wrapping_mul(31).wrapping_add(id.wrapping_add(d.to_bits())))
}

fn config_for(mode: usize) -> EngineConfig {
    match mode {
        0 => EngineConfig {
            envelope_refinement: false,
            lb_improved_refinement: false,
            early_abandon: false,
            ..EngineConfig::default()
        },
        1 => EngineConfig {
            envelope_refinement: true,
            lb_improved_refinement: false,
            early_abandon: false,
            ..EngineConfig::default()
        },
        3 => EngineConfig { prefilter: false, ..EngineConfig::default() },
        _ => EngineConfig::default(),
    }
}

fn digest<I: SpatialIndex>(name: &str, make: impl Fn() -> I, mode: usize, stable_counters: bool) {
    let refine = mode;
    let series = lcg_series(400, 64, 11);
    let queries = lcg_series(12, 64, 777);
    let mut engine = DtwIndexEngine::new(NewPaa::new(64, 8), make(), config_for(mode));
    for (i, s) in series.iter().enumerate() {
        engine.insert(i as ItemId, s.clone());
    }
    for (qi, q) in queries.iter().enumerate() {
        for (band, radius) in [(0usize, 1.2), (3, 2.0), (6, 3.5)] {
            let r = engine
                .query(&QueryRequest::range(radius).with_series(q.clone()).with_band(band))
                .result;
            let mbits = match_bits(&r.matches);
            if stable_counters {
                println!(
                    "{name} refine={refine} q{qi} range b{band} r{radius}: m={} bits={mbits:x} cand={} pages={} pts={}",
                    r.matches.len(), r.stats.index.candidates, r.stats.index.node_accesses, r.stats.index.points_examined
                );
            } else {
                println!(
                    "{name} refine={refine} q{qi} range b{band} r{radius}: m={} bits={mbits:x}",
                    r.matches.len()
                );
            }
            let s = engine.scan_range(q, band, radius);
            let sbits = match_bits(&s.matches);
            println!("{name} refine={refine} q{qi} scanrange b{band}: m={} bits={sbits:x}", s.matches.len());
        }
        for (band, k) in [(0usize, 1), (3, 5), (6, 17)] {
            let r = engine
                .query(&QueryRequest::knn(k).with_series(q.clone()).with_band(band))
                .result;
            let mbits = match_bits(&r.matches);
            if stable_counters {
                println!(
                    "{name} refine={refine} q{qi} knn b{band} k{k}: m={} bits={mbits:x} cand={} pages={} pts={}",
                    r.matches.len(), r.stats.index.candidates, r.stats.index.node_accesses, r.stats.index.points_examined
                );
            } else {
                println!(
                    "{name} refine={refine} q{qi} knn b{band} k{k}: m={} bits={mbits:x}",
                    r.matches.len()
                );
            }
            let s = engine.scan_knn(q, band, k);
            let sbits = match_bits(&s.matches);
            println!("{name} refine={refine} q{qi} scanknn b{band} k{k}: m={} bits={sbits:x}", s.matches.len());
        }
    }
}

/// Batched execution digest under `BatchOptions::default()`, which honors
/// `HUM_THREADS` — so the ci.sh thread-count sweep exercises the parallel
/// fan-out path, whose results must be thread-count-invariant.
fn batch_digest<I: SpatialIndex + Sync>(name: &str, make: impl Fn() -> I) {
    let series = lcg_series(400, 64, 11);
    let queries = lcg_series(12, 64, 777);
    let mut engine = DtwIndexEngine::new(NewPaa::new(64, 8), make(), EngineConfig::default());
    for (i, s) in series.iter().enumerate() {
        engine.insert(i as ItemId, s.clone());
    }
    let mut batch = Vec::new();
    for q in &queries {
        batch.push(QueryRequest::range(2.0).with_series(q.clone()).with_band(3));
        batch.push(QueryRequest::knn(9).with_series(q.clone()).with_band(6));
    }
    let out = engine
        .try_query_batch(&batch, &BatchOptions::default())
        .expect("digest workload is well-formed");
    let bits = out
        .outcomes
        .iter()
        .fold(0u64, |h, o| h.wrapping_mul(37).wrapping_add(match_bits(&o.result.matches)));
    let m: usize = out.outcomes.iter().map(|o| o.result.matches.len()).sum();
    println!("{name} batch: m={m} bits={bits:x}");
}

fn main() {
    // mode 0: no cascade; 1: envelope filter only (the pre-cascade default);
    // 2: the full cascade (current default config, f32 prefilter on);
    // 3: the full cascade with the f32 prefilter off — answers AND counters
    // must digest identically to mode 2 apart from the refine= label.
    for mode in [1, 0, 2, 3] {
        digest("rstar", || RStarTree::with_page_size(8, 1024), mode, true);
        digest("grid", || GridFile::with_params(8, 4, 32, 1024), mode, false);
        digest("linear", || LinearScan::with_page_size(8, 1024), mode, true);
    }
    batch_digest("rstar", || RStarTree::with_page_size(8, 1024));
    batch_digest("grid", || GridFile::with_params(8, 4, 32, 1024));
    batch_digest("linear", || LinearScan::with_page_size(8, 1024));
}
