//! Prints a bit-exact digest of engine answers and counters over a fixed
//! pseudo-random workload, for before/after comparison of engine changes.

use hum_core::engine::{DtwIndexEngine, EngineConfig};
use hum_core::transform::paa::NewPaa;
use hum_index::{GridFile, ItemId, LinearScan, RStarTree, SpatialIndex};

fn lcg_series(n: usize, len: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut next = move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n)
        .map(|_| {
            let mut acc = 0.0;
            let mut s: Vec<f64> = (0..len).map(|_| { acc += next(); acc }).collect();
            hum_linalg::vec_ops::center(&mut s);
            s
        })
        .collect()
}

fn digest<I: SpatialIndex>(name: &str, make: impl Fn() -> I, mode: usize) {
    let refine = mode;
    let series = lcg_series(400, 64, 11);
    let queries = lcg_series(12, 64, 777);
    let mut engine = DtwIndexEngine::new(
        NewPaa::new(64, 8),
        make(),
        match mode {
            0 => EngineConfig {
                envelope_refinement: false,
                lb_improved_refinement: false,
                early_abandon: false,
            },
            1 => EngineConfig {
                envelope_refinement: true,
                lb_improved_refinement: false,
                early_abandon: false,
            },
            _ => EngineConfig::default(),
        },
    );
    for (i, s) in series.iter().enumerate() {
        engine.insert(i as ItemId, s.clone());
    }
    for (qi, q) in queries.iter().enumerate() {
        for (band, radius) in [(0usize, 1.2), (3, 2.0), (6, 3.5)] {
            let r = engine.range_query(q, band, radius);
            let mbits: u64 = r
                .matches
                .iter()
                .fold(0u64, |h, (id, d)| h.wrapping_mul(31).wrapping_add(id.wrapping_add(d.to_bits())));
            println!(
                "{name} refine={refine} q{qi} range b{band} r{radius}: m={} bits={mbits:x} cand={} pages={} pts={}",
                r.matches.len(), r.stats.index.candidates, r.stats.index.node_accesses, r.stats.index.points_examined
            );
            let s = engine.scan_range(q, band, radius);
            let sbits: u64 = s
                .matches
                .iter()
                .fold(0u64, |h, (id, d)| h.wrapping_mul(31).wrapping_add(id.wrapping_add(d.to_bits())));
            println!("{name} refine={refine} q{qi} scanrange b{band}: m={} bits={sbits:x}", s.matches.len());
        }
        for (band, k) in [(0usize, 1), (3, 5), (6, 17)] {
            let r = engine.knn(q, band, k);
            let mbits: u64 = r
                .matches
                .iter()
                .fold(0u64, |h, (id, d)| h.wrapping_mul(31).wrapping_add(id.wrapping_add(d.to_bits())));
            println!(
                "{name} refine={refine} q{qi} knn b{band} k{k}: m={} bits={mbits:x} cand={} pages={} pts={}",
                r.matches.len(), r.stats.index.candidates, r.stats.index.node_accesses, r.stats.index.points_examined
            );
            let s = engine.scan_knn(q, band, k);
            let sbits: u64 = s
                .matches
                .iter()
                .fold(0u64, |h, (id, d)| h.wrapping_mul(31).wrapping_add(id.wrapping_add(d.to_bits())));
            println!("{name} refine={refine} q{qi} scanknn b{band} k{k}: m={} bits={sbits:x}", s.matches.len());
        }
    }
}

fn main() {
    // mode 0: no cascade; 1: envelope filter only (the pre-cascade default);
    // 2: the full cascade (current default config).
    for mode in [1, 0, 2] {
        digest("rstar", || RStarTree::with_page_size(8, 1024), mode);
        digest("grid", || GridFile::with_params(8, 4, 32, 1024), mode);
        digest("linear", || LinearScan::with_page_size(8, 1024), mode);
    }
}
