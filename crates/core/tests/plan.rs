//! Property-based tests for the build-time transform planner: given the
//! same corpus, band, grid, and seeded options the plan is a pure function
//! of its inputs; the chosen candidate's measured tightness dominates every
//! rejected one; and every evidence row stays in its documented range.

use hum_core::plan::{plan_transform, PlanFamily, PlannerOptions};
use proptest::prelude::*;

const LEN: usize = 32;

fn corpus() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(-20.0f64..20.0, LEN..=LEN),
        2..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn same_seed_same_plan(
        series in corpus(),
        band in 0usize..6,
        seed in any::<u64>(),
        sample in 2usize..32,
        pair_cap in 8usize..256,
    ) {
        let options = PlannerOptions { sample, pair_cap, seed };
        let grid = [4usize, 8, 16];
        let a = plan_transform(&series, band, &grid, &options).unwrap();
        let b = plan_transform(&series, band, &grid, &options).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn chosen_tightness_dominates_every_rejected_candidate(
        series in corpus(),
        band in 0usize..6,
        seed in any::<u64>(),
    ) {
        let options = PlannerOptions { sample: 16, pair_cap: 128, seed };
        let plan = plan_transform(&series, band, &[4, 8, 16], &options).unwrap();
        let chosen = plan.chosen().expect("chosen candidate is in the evidence");
        prop_assert_eq!(chosen.mean_tightness, plan.mean_tightness);
        for c in &plan.candidates {
            prop_assert!(
                plan.mean_tightness >= c.mean_tightness,
                "rejected {}/d{} tighter than the plan: {} > {}",
                c.family.name(), c.dims, c.mean_tightness, plan.mean_tightness
            );
            // Exact tightness ties must fall to the cost model.
            if c.mean_tightness == plan.mean_tightness {
                prop_assert!(plan.score >= c.score);
            }
        }
    }

    #[test]
    fn evidence_stays_in_documented_ranges(
        series in corpus(),
        band in 0usize..4,
        seed in any::<u64>(),
    ) {
        let options = PlannerOptions { sample: 12, pair_cap: 64, seed };
        let plan = plan_transform(&series, band, &[4, 8], &options).unwrap();
        prop_assert_eq!(plan.input_len, LEN);
        prop_assert_eq!(plan.band, band);
        prop_assert_eq!(plan.seed, seed);
        prop_assert!(plan.sample_len <= series.len().min(12));
        for c in &plan.candidates {
            prop_assert!(c.family.supports(LEN, c.dims));
            prop_assert!((0.0..=1.0).contains(&c.mean_tightness));
            prop_assert!((0.0..=1.0).contains(&c.est_candidate_ratio));
            prop_assert!(c.projection_cost >= 0.0);
            prop_assert!(c.score.is_finite());
        }
        // LEN = 32 is a power of two and divisible by 4 and 8: all four
        // families are measurable at every grid point.
        for family in PlanFamily::ALL {
            prop_assert!(plan.candidates.iter().any(|c| c.family == family));
        }
    }

    #[test]
    fn sample_cap_bounds_the_measurement_not_the_validity(
        series in corpus(),
        cap in 1usize..8,
        seed in any::<u64>(),
    ) {
        let options = PlannerOptions { sample: cap, pair_cap: 64, seed };
        let plan = plan_transform(&series, 2, &[8], &options).unwrap();
        prop_assert!(plan.sample_len <= cap);
        prop_assert!(plan.pairs <= 64);
        prop_assert!(plan.chosen().is_some());
    }
}
