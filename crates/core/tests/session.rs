//! The linchpin invariant of streaming sessions: `refine()` after any
//! sequence of appends is **bit-identical** — matches, counters, and trace
//! — to a one-shot query over the same prefix, at every shard count and
//! [`KernelMode`], for range and k-NN alike. Plus the compensated-mean and
//! incremental-envelope properties that keep the session's internal state
//! honest over long streams.

use std::time::Duration;

use hum_core::engine::{
    DtwIndexEngine, EngineConfig, EngineError, QueryBudget, QueryRequest, QueryScratch,
};
use hum_core::kernel::KernelMode;
use hum_core::normal::NormalForm;
use hum_core::session::{kahan_sum, IncrementalEnvelope, KahanSum, QuerySession};
use hum_core::shard::ShardedEngine;
use hum_core::transform::paa::NewPaa;
use hum_core::Envelope;
use hum_index::{ItemId, RStarTree};
use proptest::prelude::*;

const LEN: usize = 64;
const DIMS: usize = 8;
const BAND: usize = 4;

/// Deterministic raw "hums": random-walk pitch contours of varying length,
/// the shape the session ingests before normalization.
fn raw_hums(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut next = move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n)
        .map(|i| {
            let len = 48 + (i * 13) % 90;
            let mut pitch = 60.0;
            (0..len)
                .map(|_| {
                    pitch += next() * 2.0;
                    pitch
                })
                .collect()
        })
        .collect()
}

fn sharded(
    corpus: &[Vec<f64>],
    normal: &NormalForm,
    shards: usize,
    kernel: KernelMode,
) -> ShardedEngine<NewPaa, RStarTree> {
    let config = EngineConfig { kernel, ..EngineConfig::default() };
    let mut engine = ShardedEngine::build(shards, |_| {
        DtwIndexEngine::new(NewPaa::new(LEN, DIMS), RStarTree::with_page_size(DIMS, 1024), config)
    });
    for (i, hum) in corpus.iter().enumerate() {
        engine.try_insert(i as ItemId, normal.apply(hum)).expect("insert normal form");
    }
    engine
}

/// The one-shot path a non-streaming caller takes: normalize the whole
/// prefix, build a request, query.
fn one_shot(
    engine: &ShardedEngine<NewPaa, RStarTree>,
    normal: &NormalForm,
    template: &QueryRequest,
    prefix: &[f64],
) -> Result<hum_core::engine::QueryOutcome, EngineError> {
    let request =
        template.clone().with_series(normal.apply(prefix)).with_budget(QueryBudget::unlimited());
    engine.try_query(&request)
}

/// The linchpin: stream a hum in uneven chunks; after every append the
/// session's refinement equals the one-shot answer over the same prefix —
/// whole [`QueryOutcome`]s compared (matches AND counters AND trace), over
/// shards {1, 4} × KernelMode {Scalar, Unrolled} × {k-NN, range}.
#[test]
fn refine_is_bit_identical_to_one_shot_over_every_prefix() {
    let corpus = raw_hums(40, 7);
    let query_hum = raw_hums(41, 99).pop().expect("one hum");
    let normal = NormalForm::with_length(LEN);
    let templates = [
        QueryRequest::knn(5).with_band(BAND).with_trace(true),
        QueryRequest::range(2.5).with_band(BAND).with_trace(true),
    ];
    for shards in [1usize, 4] {
        for kernel in [KernelMode::Scalar, KernelMode::Unrolled] {
            let engine = sharded(&corpus, &normal, shards, kernel);
            for template in &templates {
                let mut session = QuerySession::new(template.clone(), normal);
                let mut scratch = QueryScratch::new();
                let mut consumed = 0usize;
                // Uneven chunk sizes exercise append batching; every
                // checkpoint must agree with the one-shot prefix query.
                for chunk in [3usize, 1, 7, 11, 2, 19, 30].iter().cycle() {
                    if consumed >= query_hum.len() {
                        break;
                    }
                    let end = (consumed + chunk).min(query_hum.len());
                    session.append(&query_hum[consumed..end]).expect("finite frames");
                    consumed = end;
                    let refined = session
                        .refine(&engine, QueryBudget::unlimited(), &mut scratch)
                        .expect("refine");
                    let reference = one_shot(&engine, &normal, template, &query_hum[..consumed])
                        .expect("one-shot");
                    assert_eq!(
                        refined, reference,
                        "refine != one-shot at prefix {consumed} (shards={shards}, {kernel:?})"
                    );
                }
                assert_eq!(consumed, query_hum.len());
            }
        }
    }
}

/// Refining an empty session is a typed error, not a panic or an empty
/// answer; the session stays usable afterwards.
#[test]
fn refine_on_empty_session_is_a_typed_error() {
    let corpus = raw_hums(10, 3);
    let normal = NormalForm::with_length(LEN);
    let engine = sharded(&corpus, &normal, 2, KernelMode::default());
    let mut session = QuerySession::new(QueryRequest::knn(3).with_band(BAND), normal);
    let mut scratch = QueryScratch::new();
    assert_eq!(
        session.refine(&engine, QueryBudget::unlimited(), &mut scratch).unwrap_err(),
        EngineError::EmptyQuery
    );
    session.append(&corpus[0]).expect("finite frames");
    assert!(session.refine(&engine, QueryBudget::unlimited(), &mut scratch).is_ok());
}

/// An already-expired budget aborts the refinement with the partial work
/// counters — the session itself is untouched and refines fine afterwards.
#[test]
fn expired_budget_mid_refine_returns_partial_stats() {
    let corpus = raw_hums(30, 5);
    let normal = NormalForm::with_length(LEN);
    let engine = sharded(&corpus, &normal, 1, KernelMode::default());
    let mut session = QuerySession::new(QueryRequest::knn(4).with_band(BAND), normal);
    let mut scratch = QueryScratch::new();
    session.append(&corpus[7]).expect("finite frames");
    match session.refine(&engine, QueryBudget::within(Duration::ZERO), &mut scratch) {
        Err(EngineError::DeadlineExceeded { stats }) => {
            // Partial counters report work-so-far; matches are never
            // partially reported.
            assert_eq!(stats.matches, 0);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let ok = session.refine(&engine, QueryBudget::unlimited(), &mut scratch).expect("refine");
    assert_eq!(ok.result.matches.len(), 4);
}

/// Monolithic refinement equals sharded refinement (the session adds no
/// engine-shape dependence of its own).
#[test]
fn monolithic_and_sharded_refinement_agree() {
    let corpus = raw_hums(25, 11);
    let normal = NormalForm::with_length(LEN);
    let config = EngineConfig::default();
    let mut mono =
        DtwIndexEngine::new(NewPaa::new(LEN, DIMS), RStarTree::with_page_size(DIMS, 1024), config);
    for (i, hum) in corpus.iter().enumerate() {
        mono.try_insert(i as ItemId, normal.apply(hum)).expect("insert");
    }
    let engine = sharded(&corpus, &normal, 4, KernelMode::default());
    let mut session = QuerySession::new(QueryRequest::knn(6).with_band(BAND), normal);
    let mut scratch = QueryScratch::new();
    session.append(&corpus[12]).expect("finite frames");
    let via_mono =
        session.refine_monolithic(&mono, QueryBudget::unlimited(), &mut scratch).expect("mono");
    let via_shards =
        session.refine(&engine, QueryBudget::unlimited(), &mut scratch).expect("sharded");
    assert_eq!(via_mono.result.matches, via_shards.result.matches);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite bugfix invariant: the session's incremental compensated
    /// mean matches a full compensated recompute **to the last ulp** after
    /// 10^4 appends in arbitrary chunkings, on adversarial magnitudes.
    #[test]
    fn incremental_kahan_mean_matches_batch_recompute_over_1e4_appends(
        seed in any::<u64>(),
        scale_exp in -6i32..7,
    ) {
        let scale = 10f64.powi(scale_exp);
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let frames: Vec<f64> = (0..10_000).map(|i| {
            // Mix magnitudes so naive summation actually drifts.
            let wobble = if i % 97 == 0 { 1e6 } else { 1.0 };
            next() * scale * wobble + 60.0
        }).collect();

        let mut acc = KahanSum::new();
        let mut session = QuerySession::new(
            QueryRequest::knn(1).with_band(BAND),
            NormalForm::with_length(LEN),
        );
        let mut consumed = 0usize;
        let mut chunk = 1usize;
        while consumed < frames.len() {
            let end = (consumed + chunk).min(frames.len());
            for &v in &frames[consumed..end] {
                acc.add(v);
            }
            session.append(&frames[consumed..end]).expect("finite frames");
            consumed = end;
            chunk = chunk % 37 + 1;
            // Every checkpoint, not just the end: the incremental mean is
            // bitwise the batch compensated recompute over the prefix.
            let batch = kahan_sum(&frames[..consumed]) / consumed as f64;
            prop_assert_eq!(session.running_mean().to_bits(), batch.to_bits());
        }
        prop_assert_eq!(acc.value().to_bits(), kahan_sum(&frames).to_bits());
    }

    /// The extend-on-append envelope is bitwise the full recompute on
    /// every prefix, for arbitrary data and window widths — including the
    /// deque's latest-wins tie rule (signed zeros pinned in unit tests).
    #[test]
    fn incremental_envelope_matches_full_recompute(
        xs in proptest::collection::vec(-50.0f64..50.0, 1..160),
        k in 0usize..12,
    ) {
        let mut inc = IncrementalEnvelope::new(k);
        for (n, &v) in xs.iter().enumerate() {
            inc.append(v);
            let full = Envelope::compute(&xs[..=n], k);
            prop_assert_eq!(inc.lower(), full.lower());
            prop_assert_eq!(inc.upper(), full.upper());
        }
    }

    /// The session's shift-normalized envelope equals the envelope of the
    /// explicitly shifted series, bit for bit (min/max commute with the
    /// shift), at every prefix.
    #[test]
    fn session_envelope_tracks_the_shifted_series(
        xs in proptest::collection::vec(30.0f64..90.0, 1..120),
        band in 0usize..8,
    ) {
        let mut session = QuerySession::new(
            QueryRequest::knn(1).with_band(band),
            NormalForm::with_length(16),
        );
        for (n, &v) in xs.iter().enumerate() {
            session.append(&[v]).expect("finite frames");
            let mu = session.running_mean();
            let shifted: Vec<f64> = xs[..=n].iter().map(|x| x - mu).collect();
            let expected = Envelope::compute(&shifted, band);
            let got = session.envelope().expect("non-empty");
            let bits = |s: &[f64]| s.iter().map(|v| v.to_bits()).collect::<Vec<u64>>();
            prop_assert_eq!(bits(got.lower()), bits(expected.lower()));
            prop_assert_eq!(bits(got.upper()), bits(expected.upper()));
        }
    }
}
