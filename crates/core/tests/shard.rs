//! Sharded-vs-monolithic invariance: a [`ShardedEngine`] over any shard
//! count must return *bit-identical* matches to one [`DtwIndexEngine`]
//! holding the whole corpus, for range and k-NN, indexed and scan, at every
//! fan-out width — and its stats/traces must be pure functions of
//! `(query, corpus, shard count)`, never of the thread count.

use hum_core::batch::BatchOptions;
use hum_core::engine::{
    DtwIndexEngine, EngineConfig, EngineError, QueryBudget, QueryRequest,
};
use hum_core::shard::{shard_for, ShardedEngine};
use hum_core::transform::paa::NewPaa;
use hum_index::{ItemId, RStarTree};

const LEN: usize = 64;
const DIMS: usize = 8;
const BAND: usize = 4;

fn lcg_series(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut next = move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n)
        .map(|_| {
            let mut acc = 0.0;
            let mut s: Vec<f64> = (0..LEN)
                .map(|_| {
                    acc += next();
                    acc
                })
                .collect();
            hum_linalg::vec_ops::center(&mut s);
            s
        })
        .collect()
}

fn monolithic(series: &[Vec<f64>]) -> DtwIndexEngine<NewPaa, RStarTree> {
    let mut engine = DtwIndexEngine::new(
        NewPaa::new(LEN, DIMS),
        RStarTree::with_page_size(DIMS, 1024),
        EngineConfig::default(),
    );
    for (i, s) in series.iter().enumerate() {
        engine.insert(i as ItemId, s.clone());
    }
    engine
}

fn sharded(series: &[Vec<f64>], shards: usize, fanout: usize) -> ShardedEngine<NewPaa, RStarTree> {
    let mut engine = ShardedEngine::build(shards, |_| {
        DtwIndexEngine::new(
            NewPaa::new(LEN, DIMS),
            RStarTree::with_page_size(DIMS, 1024),
            EngineConfig::default(),
        )
    })
    .with_fanout(fanout);
    for (i, s) in series.iter().enumerate() {
        engine.insert(i as ItemId, s.clone());
    }
    engine
}

fn requests(series: &[Vec<f64>]) -> Vec<QueryRequest> {
    let mut out = Vec::new();
    for (qi, radius, k) in [(3usize, 2.0, 5usize), (17, 4.0, 1), (41, 3.0, 12), (59, 0.5, 120)] {
        let q = series[qi].clone();
        out.push(QueryRequest::range(radius).with_series(q.clone()).with_band(BAND));
        out.push(QueryRequest::knn(k).with_series(q.clone()).with_band(BAND));
        out.push(
            QueryRequest::range(radius).with_series(q.clone()).with_band(BAND).with_scan(true),
        );
        out.push(QueryRequest::knn(k).with_series(q).with_band(BAND).with_scan(true));
    }
    out
}

#[test]
fn sharded_matches_are_bit_identical_to_monolithic() {
    let series = lcg_series(120, 7);
    let mono = monolithic(&series);
    for shards in [1usize, 2, 3, 8] {
        for fanout in [1usize, 4] {
            let sharded = sharded(&series, shards, fanout);
            for request in requests(&series) {
                let expected = mono.query(&request.clone().with_trace(true));
                let got = sharded.query(&request.clone().with_trace(true));
                assert_eq!(
                    expected.result.matches, got.result.matches,
                    "matches diverged at shards={shards} fanout={fanout} for {request:?}"
                );
                // Shard count 1 is the monolithic engine, full stop: stats
                // and trace included.
                if shards == 1 {
                    assert_eq!(expected, got, "shards=1 must be fully identical");
                }
                assert_eq!(
                    got.result.stats.matches,
                    got.result.matches.len() as u64,
                    "stats.matches must count the merged result"
                );
            }
        }
    }
}

#[test]
fn sharded_stats_and_traces_are_fanout_invariant() {
    let series = lcg_series(100, 11);
    for shards in [2usize, 8] {
        let narrow = sharded(&series, shards, 1);
        let wide = sharded(&series, shards, 4);
        for request in requests(&series) {
            let traced = request.clone().with_trace(true);
            assert_eq!(
                narrow.query(&traced),
                wide.query(&traced),
                "outcome varied with fanout at shards={shards} for {request:?}"
            );
        }
    }
}

#[test]
fn sharded_batch_equals_sequential_queries_at_every_thread_count() {
    let series = lcg_series(80, 13);
    let engine = sharded(&series, 4, 2);
    let requests = requests(&series);
    let expected: Vec<_> = requests.iter().map(|r| engine.try_query(r).unwrap()).collect();
    for threads in [1usize, 8] {
        let options = BatchOptions::new(threads, 2);
        let outcome = engine.try_query_batch(&requests, &options).expect("valid batch");
        assert_eq!(outcome.outcomes, expected, "batch diverged at threads={threads}");
    }
}

#[test]
fn sharded_batch_query_api_matches_monolithic() {
    let series = lcg_series(60, 17);
    let mono = monolithic(&series);
    let engine = sharded(&series, 3, 2);
    let batch: Vec<QueryRequest> = vec![
        QueryRequest::range(2.5).with_series(series[5].clone()).with_band(BAND),
        QueryRequest::knn(7).with_series(series[9].clone()).with_band(BAND),
    ];
    let options = BatchOptions::new(2, 1);
    let mono_result = mono.try_query_batch(&batch, &options).expect("well-formed batch");
    let sharded_result = engine.try_query_batch(&batch, &options).expect("well-formed batch");
    for (m, s) in mono_result.outcomes.iter().zip(&sharded_result.outcomes) {
        assert_eq!(m.result.matches, s.result.matches);
    }
}

#[test]
fn inserts_route_by_hash_and_removals_round_trip() {
    let series = lcg_series(50, 19);
    let mut engine = sharded(&series, 4, 1);
    assert_eq!(engine.len(), 50);
    for (i, s) in series.iter().enumerate() {
        let id = i as ItemId;
        assert_eq!(engine.shard_of(id), shard_for(id, 4));
        assert_eq!(engine.get(id), Some(s.as_slice()));
    }
    // Duplicate ids are rejected globally (same id → same shard).
    assert!(matches!(
        engine.try_insert(7, series[7].clone()),
        Err(EngineError::DuplicateId(7))
    ));
    assert!(engine.remove(7));
    assert!(!engine.remove(7));
    assert_eq!(engine.len(), 49);
    assert_eq!(engine.get(7), None);
    // Re-insert lands back on the same shard and is queryable again.
    engine.insert(7, series[7].clone());
    let request = QueryRequest::knn(1).with_series(series[7].clone()).with_band(BAND);
    let result = engine.query(&request).result;
    assert_eq!(result.matches[0].0, 7);
}

#[test]
fn sharded_validation_mirrors_monolithic() {
    let series = lcg_series(20, 23);
    let engine = sharded(&series, 2, 1);
    let empty = QueryRequest::knn(3);
    assert!(matches!(engine.try_query(&empty), Err(EngineError::EmptyQuery)));
    let short = QueryRequest::knn(3).with_series(vec![1.0, 2.0]);
    assert!(matches!(
        engine.try_query(&short),
        Err(EngineError::LengthMismatch { .. })
    ));
    let wide = QueryRequest::knn(3).with_series(series[0].clone()).with_band(LEN);
    assert!(matches!(engine.try_query(&wide), Err(EngineError::BandTooWide { .. })));
}

#[test]
fn expired_budget_reports_partial_counters_with_zero_matches() {
    let series = lcg_series(120, 29);
    let engine = sharded(&series, 4, 2);
    let expired = QueryBudget::with_deadline(std::time::Instant::now());
    std::thread::sleep(std::time::Duration::from_millis(1));
    for request in [
        QueryRequest::range(3.0).with_series(series[0].clone()).with_band(BAND),
        QueryRequest::knn(5).with_series(series[0].clone()).with_band(BAND),
    ] {
        match engine.try_query(&request.with_budget(expired)) {
            Err(EngineError::DeadlineExceeded { stats }) => {
                assert_eq!(stats.matches, 0, "partial runs must never report matches");
            }
            other => panic!("expected deadline abort, got {other:?}"),
        }
    }
}

#[test]
fn edge_shard_counts_behave() {
    let series = lcg_series(10, 31);
    // More shards than items: some shards stay empty and must contribute
    // nothing (not even to k-NN probe unions).
    let engine = sharded(&series, 8, 2);
    let mono = monolithic(&series);
    let q = &series[3];
    let knn20 = QueryRequest::knn(20).with_series(q.clone()).with_band(BAND);
    let range5 = QueryRequest::range(5.0).with_series(q.clone()).with_band(BAND);
    assert_eq!(engine.query(&knn20).result.matches, mono.query(&knn20).result.matches);
    assert_eq!(engine.query(&range5).result.matches, mono.query(&range5).result.matches);
    // k = 0 and an empty corpus are still no-ops.
    let knn0 = QueryRequest::knn(0).with_series(q.clone()).with_band(BAND);
    assert!(engine.query(&knn0).result.matches.is_empty());
    let empty = ShardedEngine::build(3, |_| {
        DtwIndexEngine::new(
            NewPaa::new(LEN, DIMS),
            RStarTree::with_page_size(DIMS, 1024),
            EngineConfig::default(),
        )
    });
    let knn5 = QueryRequest::knn(5).with_series(q.clone()).with_band(BAND);
    assert!(empty.query(&knn5).result.matches.is_empty());
    assert!(empty.query(&range5).result.matches.is_empty());
}
