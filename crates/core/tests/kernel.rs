//! Property tests for the kernel layer's two load-bearing contracts:
//!
//! 1. **Conservativeness** — the `f32` prefilter never exceeds the exact
//!    `f64` envelope bound, so a prefilter prune is always an envelope
//!    prune (zero false negatives), and the engine's answers *and
//!    counters* are bit-identical with the prefilter on or off.
//! 2. **Mode invariance** — `KernelMode::Scalar` and
//!    `KernelMode::Unrolled` return identical bits from every kernel, and
//!    the kernel-layer DTW matches a reference transcription of the
//!    classic branchy row loop bit for bit.

use hum_core::dtw::{ldtw_distance_sq_bounded_with_mode, DtwWorkspace};
use hum_core::engine::{DtwIndexEngine, EngineConfig, QueryRequest, QueryScratch};
use hum_core::envelope::Envelope;
use hum_core::kernel::lb::env_lb_sq_bounded;
use hum_core::kernel::prefilter::{
    conservative_lb_sq, f32_down, f32_up, prefilter_exceeds, PrefilterEnvelope, SeriesMirror,
};
use hum_core::kernel::KernelMode;
use hum_core::transform::paa::NewPaa;
use hum_index::{LinearScan, RStarTree};
use proptest::prelude::*;

const LEN: usize = 32;
const MODES: [KernelMode; 2] = [KernelMode::Scalar, KernelMode::Unrolled];

fn series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-20.0f64..20.0, LEN..=LEN)
}

/// Series drawn from a wide dynamic range, to stress the directed
/// rounding far from 1.0.
fn wild_series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            -20.0f64..20.0,
            -1e-6f64..1e-6,
            -1e12f64..1e12,
            Just(0.0f64),
        ],
        LEN..=LEN,
    )
}

/// Reference transcription of the pre-kernel-layer banded DTW row loop
/// (branchy three-way min, full O(width) row reset), kept here as the
/// bit-identity oracle for the restructured kernel.
#[allow(clippy::needless_range_loop)] // explicit i/j indices mirror the DP recurrence
fn ldtw_reference(x: &[f64], y: &[f64], k: usize, threshold_sq: f64) -> f64 {
    let n = x.len();
    let k = k.min(n - 1);
    let width = 2 * k + 1;
    let inf = f64::INFINITY;
    let mut prev = vec![inf; width];
    let mut curr = vec![inf; width];
    let mut acc = 0.0;
    for j in 0..=k.min(n - 1) {
        let d = x[0] - y[j];
        acc += d * d;
        prev[j + k] = acc;
    }
    if prev[k] > threshold_sq {
        return inf;
    }
    for i in 1..n {
        curr.iter_mut().for_each(|v| *v = inf);
        let j_lo = i.saturating_sub(k);
        let j_hi = (i + k).min(n - 1);
        let mut row_min = inf;
        for j in j_lo..=j_hi {
            let slot = j + k - i;
            let d = x[i] - y[j];
            let cost = d * d;
            let mut best = inf;
            if slot + 1 < width {
                best = best.min(prev[slot + 1]);
            }
            best = best.min(prev[slot]);
            if slot > 0 {
                best = best.min(curr[slot - 1]);
            }
            let cell = cost + best;
            curr[slot] = cell;
            row_min = row_min.min(cell);
        }
        if row_min > threshold_sq {
            return inf;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[k]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn directed_rounding_brackets_every_value(v in prop_oneof![
        -1e300f64..1e300,
        -20.0f64..20.0,
        -1e-30f64..1e-30,
        Just(0.0f64),
        Just(-0.0f64),
    ]) {
        prop_assert!((f32_down(v) as f64) <= v, "down({v}) = {}", f32_down(v));
        prop_assert!((f32_up(v) as f64) >= v, "up({v}) = {}", f32_up(v));
        prop_assert!(f32_down(v) != f32::INFINITY);
        prop_assert!(f32_up(v) != f32::NEG_INFINITY);
    }

    #[test]
    fn mirror_and_staged_envelope_bracket(y in wild_series(), x in wild_series(), k in 0usize..10) {
        let mirror = SeriesMirror::build(&x);
        for (i, &v) in x.iter().enumerate() {
            prop_assert!((mirror.down()[i] as f64) <= v);
            prop_assert!((mirror.up()[i] as f64) >= v);
        }
        let env = Envelope::compute(&y, k);
        let mut staged = PrefilterEnvelope::new();
        staged.stage(&env);
        prop_assert_eq!(staged.len(), env.len());
    }

    /// The linchpin: the deflated f32 sum never exceeds the f64 kernel's
    /// envelope bound, for either mode.
    #[test]
    fn conservative_bound_below_f64_bound(y in wild_series(), x in wild_series(), k in 0usize..10) {
        let env = Envelope::compute(&y, k);
        let mut staged = PrefilterEnvelope::new();
        staged.stage(&env);
        let mirror = SeriesMirror::build(&x);
        for mode in MODES {
            let lo = conservative_lb_sq(mode, &staged, &mirror);
            let exact = env.distance_sq_mode(&x, mode);
            prop_assert!(
                !lo.is_finite() || lo <= exact,
                "mode {mode:?}: conservative {lo} > exact {exact}"
            );
        }
    }

    /// A prefilter prune implies the exact f64 chain prunes at the same
    /// threshold (the bounded kernel reports the excess as +inf).
    #[test]
    fn prefilter_prune_implies_f64_prune(
        y in series(),
        x in series(),
        k in 0usize..10,
        radius in 0.0f64..50.0,
    ) {
        let threshold_sq = radius * radius;
        let env = Envelope::compute(&y, k);
        let mut staged = PrefilterEnvelope::new();
        staged.stage(&env);
        let mirror = SeriesMirror::build(&x);
        for mode in MODES {
            if prefilter_exceeds(mode, &staged, &mirror, threshold_sq) {
                let exact = env.distance_sq_bounded_mode(&x, threshold_sq, mode);
                prop_assert!(
                    exact.is_infinite(),
                    "prefilter pruned but exact bound {exact} ≤ {threshold_sq}"
                );
            }
        }
    }

    /// Scalar and unrolled modes return identical bits from all three
    /// kernels, bounded or not.
    #[test]
    fn modes_are_bit_identical(
        y in series(),
        x in series(),
        k in 0usize..10,
        thr in prop_oneof![0.0f64..400.0, Just(f64::INFINITY)],
    ) {
        let env = Envelope::compute(&y, k);
        let a = env_lb_sq_bounded(KernelMode::Scalar, env.lower(), env.upper(), &x, thr);
        let b = env_lb_sq_bounded(KernelMode::Unrolled, env.lower(), env.upper(), &x, thr);
        prop_assert_eq!(a.to_bits(), b.to_bits(), "env lb: {} vs {}", a, b);

        let mut ws = DtwWorkspace::new();
        let da = ldtw_distance_sq_bounded_with_mode(&mut ws, &x, &y, k, thr, KernelMode::Scalar);
        let db = ldtw_distance_sq_bounded_with_mode(&mut ws, &x, &y, k, thr, KernelMode::Unrolled);
        prop_assert_eq!(da.to_bits(), db.to_bits(), "dtw: {} vs {}", da, db);

        let mut staged = PrefilterEnvelope::new();
        staged.stage(&env);
        let mirror = SeriesMirror::build(&x);
        let pa = conservative_lb_sq(KernelMode::Scalar, &staged, &mirror);
        let pb = conservative_lb_sq(KernelMode::Unrolled, &staged, &mirror);
        prop_assert_eq!(pa.to_bits(), pb.to_bits(), "prefilter: {} vs {}", pa, pb);
    }

    /// The restructured DTW kernel is bit-identical to the classic branchy
    /// loop — distance and abandon behavior both.
    #[test]
    fn dtw_kernel_matches_classic_loop(
        x in series(),
        y in series(),
        k in 0usize..=LEN,
        thr in prop_oneof![0.0f64..400.0, Just(f64::INFINITY)],
    ) {
        let reference = ldtw_reference(&x, &y, k, thr);
        let mut ws = DtwWorkspace::new();
        for mode in MODES {
            let got = ldtw_distance_sq_bounded_with_mode(&mut ws, &x, &y, k, thr, mode);
            prop_assert_eq!(got.to_bits(), reference.to_bits(), "mode {:?}: {} vs {}", mode, got, reference);
        }
    }

    /// Engine-level: answers AND counters are bit-identical with the
    /// prefilter on and off, and across kernel modes, on indexed and scan
    /// paths alike.
    #[test]
    fn engine_invariant_to_prefilter_and_mode(
        seed in any::<u64>(),
        band in 0usize..6,
        k in 1usize..6,
        radius in 0.5f64..6.0,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let database: Vec<Vec<f64>> = (0..60)
            .map(|_| {
                let mut acc = 0.0;
                (0..LEN).map(|_| { acc += next(); acc }).collect()
            })
            .collect();
        let query: Vec<f64> = {
            let mut acc = 0.0;
            (0..LEN).map(|_| { acc += next(); acc }).collect()
        };

        let configs = [
            EngineConfig::default(),
            EngineConfig { prefilter: false, ..EngineConfig::default() },
            EngineConfig { kernel: KernelMode::Scalar, ..EngineConfig::default() },
            EngineConfig { kernel: KernelMode::Unrolled, ..EngineConfig::default() },
            EngineConfig {
                kernel: KernelMode::Unrolled,
                prefilter: false,
                ..EngineConfig::default()
            },
        ];
        let mut reference = None;
        for config in configs {
            let mut engine =
                DtwIndexEngine::new(NewPaa::new(LEN, 4), RStarTree::new(4), config);
            let mut linear = DtwIndexEngine::new(
                NewPaa::new(LEN, 4),
                LinearScan::with_page_size(4, 1024),
                config,
            );
            for (i, s) in database.iter().enumerate() {
                engine.insert(i as u64, s.clone());
                linear.insert(i as u64, s.clone());
            }
            let mut scratch = QueryScratch::new();
            let range = QueryRequest::range(radius).with_series(query.clone()).with_band(band);
            let knn = QueryRequest::knn(k).with_series(query.clone()).with_band(band);
            let outputs = (
                engine.query_with(&range, &mut scratch).result,
                engine.query_with(&knn, &mut scratch).result,
                engine.scan_range(&query, band, radius),
                linear.query(&range).result,
                linear.query(&knn).result,
            );
            match &reference {
                None => reference = Some(outputs),
                Some(want) => prop_assert_eq!(want, &outputs, "config {:?}", config),
            }
        }
    }
}

#[test]
fn scratch_reuse_across_mixed_queries_is_invisible() {
    // One scratch reused across queries of different bands/lengths of
    // staging must not leak state between queries.
    let database: Vec<Vec<f64>> = (0..40)
        .map(|s| (0..LEN).map(|t| ((t * (s + 2)) as f64 * 0.13).sin() * 3.0).collect())
        .collect();
    let query: Vec<f64> = (0..LEN).map(|t| (t as f64 * 0.21).cos() * 2.0).collect();
    let mut engine =
        DtwIndexEngine::new(NewPaa::new(LEN, 4), RStarTree::new(4), EngineConfig::default());
    for (i, s) in database.iter().enumerate() {
        engine.insert(i as u64, s.clone());
    }
    let mut scratch = QueryScratch::new();
    let mut first = Vec::new();
    for (band, radius) in [(0usize, 2.0), (5, 8.0), (2, 4.0), (7, 1.0)] {
        let request = QueryRequest::range(radius).with_series(query.clone()).with_band(band);
        first.push(engine.query_with(&request, &mut scratch).result);
    }
    // Same queries, fresh scratch each: must agree exactly.
    for ((band, radius), want) in [(0usize, 2.0), (5, 8.0), (2, 4.0), (7, 1.0)].iter().zip(&first)
    {
        let request = QueryRequest::range(*radius).with_series(query.clone()).with_band(*band);
        let got = engine.query_with(&request, &mut QueryScratch::new()).result;
        assert_eq!(&got, want);
    }
}
