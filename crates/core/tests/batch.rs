//! Determinism contract of the batched query layer: for any thread count
//! and chunk size, `try_query_batch` must reproduce the sequential
//! single-query loop bit for bit — both the matches and every
//! [`EngineStats`] counter — and a batch's answers must be a per-query
//! function, so permuting the batch permutes the results and leaves the
//! merged counters untouched.
//!
//! Run under `HUM_THREADS=1` and `HUM_THREADS=8` in CI; the env override
//! only feeds `BatchOptions::default()`, so the explicit sweeps here cover
//! both regardless, and the `default_options` test exercises whatever the
//! environment selected.

use hum_core::batch::BatchOptions;
use hum_core::engine::{
    DtwIndexEngine, EngineConfig, EngineStats, QueryRequest, QueryResult,
};
use hum_core::transform::paa::NewPaa;
use hum_index::{GridFile, LinearScan, RStarTree, SpatialIndex};
use proptest::prelude::*;

const LEN: usize = 32;

/// Deterministic pseudo-random walks from a seed, centered like the
/// engine's normal form expects.
fn lcg_series(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut next = move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n)
        .map(|_| {
            let mut acc = 0.0;
            let mut s: Vec<f64> = (0..LEN)
                .map(|_| {
                    acc += next();
                    acc
                })
                .collect();
            hum_linalg::vec_ops::center(&mut s);
            s
        })
        .collect()
}

fn build<I: SpatialIndex>(index: I, database: &[Vec<f64>]) -> DtwIndexEngine<NewPaa, I> {
    let mut engine = DtwIndexEngine::new(NewPaa::new(LEN, 4), index, EngineConfig::default());
    for (i, s) in database.iter().enumerate() {
        engine.insert(i as u64, s.clone());
    }
    engine
}

/// A mixed range/k-NN batch from seeded queries.
fn mixed_batch(queries: &[Vec<f64>]) -> Vec<QueryRequest> {
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            if i % 2 == 0 {
                QueryRequest::knn(5).with_series(q.clone()).with_band(3)
            } else {
                QueryRequest::range(2.0).with_series(q.clone()).with_band(2)
            }
        })
        .collect()
}

fn run_batch<T, I>(
    engine: &DtwIndexEngine<T, I>,
    batch: &[QueryRequest],
    options: &BatchOptions,
) -> (Vec<QueryResult>, EngineStats)
where
    T: hum_core::transform::EnvelopeTransform + Sync,
    I: SpatialIndex + Sync,
{
    let out = engine.try_query_batch(batch, options).expect("well-formed batch");
    (out.outcomes.into_iter().map(|o| o.result).collect(), out.stats)
}

fn sequential_answers<T, I>(
    engine: &DtwIndexEngine<T, I>,
    batch: &[QueryRequest],
) -> (Vec<QueryResult>, EngineStats)
where
    T: hum_core::transform::EnvelopeTransform,
    I: SpatialIndex,
{
    let results: Vec<QueryResult> =
        batch.iter().map(|request| engine.query(request).result).collect();
    let mut stats = EngineStats::default();
    for r in &results {
        stats.absorb(&r.stats);
    }
    (results, stats)
}

/// Runs the full thread/chunk sweep against one backend and asserts every
/// combination reproduces the sequential loop bit for bit.
fn assert_backend_deterministic<I: SpatialIndex + Sync>(
    name: &str,
    index: I,
    database: &[Vec<f64>],
    batch: &[QueryRequest],
) {
    let engine = build(index, database);
    let (expected_results, expected_stats) = sequential_answers(&engine, batch);
    for threads in [1, 2, 8] {
        for chunk in [1, 3, 64] {
            let (results, stats) = run_batch(&engine, batch, &BatchOptions::new(threads, chunk));
            assert_eq!(
                results, expected_results,
                "{name}: threads={threads} chunk={chunk} changed the answers"
            );
            assert_eq!(
                stats, expected_stats,
                "{name}: threads={threads} chunk={chunk} changed the counters"
            );
        }
    }
}

#[test]
fn batch_is_bit_identical_to_sequential_on_every_backend() {
    let database = lcg_series(80, 11);
    let batch = mixed_batch(&lcg_series(10, 1213));
    assert_backend_deterministic("rstar", RStarTree::new(4), &database, &batch);
    assert_backend_deterministic("grid", GridFile::new(4), &database, &batch);
    assert_backend_deterministic("scan", LinearScan::new(4), &database, &batch);
}

#[test]
fn default_options_honor_environment() {
    // `BatchOptions::default()` reads HUM_THREADS; whatever CI sets, the
    // answers must match the explicit single-thread configuration.
    let database = lcg_series(40, 5);
    let engine = build(RStarTree::new(4), &database);
    let batch = mixed_batch(&lcg_series(6, 99));
    let via_default = run_batch(&engine, &batch, &BatchOptions::default());
    let via_one = run_batch(&engine, &batch, &BatchOptions::new(1, 8));
    assert_eq!(via_default, via_one);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Permutation invariance: each query's answer depends only on that
    /// query and the index, so reordering the batch reorders the results
    /// the same way and leaves the merged counters unchanged.
    #[test]
    fn batch_results_are_permutation_equivariant(
        seed in any::<u64>(),
        threads in 1usize..=8,
        chunk in 1usize..=5,
        rotation in 0usize..8,
    ) {
        let database = lcg_series(50, seed);
        let engine = build(RStarTree::new(4), &database);
        let batch = mixed_batch(&lcg_series(8, seed ^ 0xdead_beef));
        let options = BatchOptions::new(threads, chunk);

        let (base_results, base_stats) = run_batch(&engine, &batch, &options);

        let mut rotated = batch.clone();
        rotated.rotate_left(rotation);
        let (got_results, got_stats) = run_batch(&engine, &rotated, &options);

        let mut expected = base_results.clone();
        expected.rotate_left(rotation);
        prop_assert_eq!(got_results, expected);
        prop_assert_eq!(got_stats, base_stats);
    }
}
