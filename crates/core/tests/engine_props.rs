//! Engine-level properties of the verification cascade: every stage
//! (envelope bound, `LB_Improved`, early-abandoning DTW) is exact with
//! respect to its prune threshold, so turning the cascade on or off must be
//! invisible in the answers — same ids, bit-identical distances — on every
//! index backend.

use hum_core::engine::{DtwIndexEngine, EngineConfig, QueryRequest};
use hum_core::transform::paa::NewPaa;
use hum_index::{GridFile, LinearScan, RStarTree, SpatialIndex};
use proptest::prelude::*;

const LEN: usize = 32;
const N: usize = 60;

/// Deterministic pseudo-random walks from a seed, centered like the
/// engine's normal form expects.
fn lcg_series(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut next = move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n)
        .map(|_| {
            let mut acc = 0.0;
            let mut s: Vec<f64> = (0..LEN)
                .map(|_| {
                    acc += next();
                    acc
                })
                .collect();
            hum_linalg::vec_ops::center(&mut s);
            s
        })
        .collect()
}

/// Bit-exact images of the four query answers under one backend + config.
#[allow(clippy::type_complexity)]
fn answers<I: SpatialIndex>(
    make: impl Fn() -> I,
    config: EngineConfig,
    database: &[Vec<f64>],
    query: &[f64],
    band: usize,
    radius: f64,
    k: usize,
) -> Vec<Vec<(u64, u64)>> {
    let mut engine = DtwIndexEngine::new(NewPaa::new(LEN, 4), make(), config);
    for (i, s) in database.iter().enumerate() {
        engine.insert(i as u64, s.clone());
    }
    let bits = |matches: &[(u64, f64)]| {
        matches.iter().map(|&(id, d)| (id, d.to_bits())).collect::<Vec<_>>()
    };
    let range = QueryRequest::range(radius).with_series(query).with_band(band);
    let knn = QueryRequest::knn(k).with_series(query).with_band(band);
    vec![
        bits(&engine.query(&range).result.matches),
        bits(&engine.query(&knn).result.matches),
        bits(&engine.query(&range.clone().with_scan(true)).result.matches),
        bits(&engine.query(&knn.clone().with_scan(true)).result.matches),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cascade_and_backend_are_invisible_in_answers(
        seed in any::<u64>(),
        band in 0usize..8,
        k in 1usize..8,
        radius in 0.5f64..4.0,
    ) {
        let database = lcg_series(N, seed);
        let query = lcg_series(1, seed ^ 0x00ab_cdef).remove(0);
        let off = EngineConfig {
            envelope_refinement: false,
            lb_improved_refinement: false,
            early_abandon: false,
            ..EngineConfig::default()
        };
        let reference = answers(
            || LinearScan::with_page_size(4, 1024),
            off,
            &database,
            &query,
            band,
            radius,
            k,
        );
        prop_assert!(
            reference[0].len() <= N && reference[1].len() == k.min(N),
            "reference answers malformed"
        );
        for config in [off, EngineConfig::default()] {
            let variants = [
                answers(|| RStarTree::with_page_size(4, 1024), config, &database, &query, band, radius, k),
                answers(|| GridFile::with_params(4, 4, 32, 1024), config, &database, &query, band, radius, k),
                answers(|| LinearScan::with_page_size(4, 1024), config, &database, &query, band, radius, k),
            ];
            for got in &variants {
                prop_assert_eq!(got, &reference);
            }
        }
    }
}
