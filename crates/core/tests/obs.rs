//! The observability layer's contract, end to end:
//!
//! * a disabled sink is a no-op — answers and counters are bit-identical
//!   with metrics on or off;
//! * trace totals equal `EngineStats` on every path (the drift guard);
//! * batch trace merge is permutation-invariant: the trace stream is the
//!   same for every thread count and chunk size, including the
//!   `HUM_THREADS`-driven default that `ci.sh` pins to 1 and 8;
//! * every `EngineError` variant round-trips through a `QueryRequest`;
//! * the registry's counters equal the sum of the absorbed per-query stats.

use std::sync::Arc;

use hum_core::batch::BatchOptions;
use hum_core::engine::{
    DtwIndexEngine, EngineConfig, EngineError, EngineStats, QueryRequest,
};
use hum_core::obs::{
    metrics_to_text, to_json_string, trace_to_text, Metric, MetricsRegistry, MetricsSink,
};
use hum_core::transform::paa::NewPaa;
use hum_index::RStarTree;
use proptest::prelude::*;

const LEN: usize = 32;

fn lcg_series(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    let mut next = move || {
        state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n)
        .map(|_| {
            let mut acc = 0.0;
            let mut s: Vec<f64> = (0..LEN)
                .map(|_| {
                    acc += next();
                    acc
                })
                .collect();
            hum_linalg::vec_ops::center(&mut s);
            s
        })
        .collect()
}

fn build_engine(series: &[Vec<f64>]) -> DtwIndexEngine<NewPaa, RStarTree> {
    let mut engine = DtwIndexEngine::new(
        NewPaa::new(LEN, 4),
        RStarTree::with_page_size(4, 1024),
        EngineConfig::default(),
    );
    for (i, s) in series.iter().enumerate() {
        engine.insert(i as u64, s.clone());
    }
    engine
}

fn mixed_requests(queries: &[Vec<f64>], trace: bool) -> Vec<QueryRequest> {
    queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let r = match i % 4 {
                0 => QueryRequest::range(2.0),
                1 => QueryRequest::knn(5),
                2 => QueryRequest::range(1.0).with_scan(true),
                _ => QueryRequest::knn(3).with_scan(true),
            };
            r.with_series(q.clone()).with_band(i % 6).with_trace(trace)
        })
        .collect()
}

#[test]
fn disabled_sink_changes_nothing() {
    let series = lcg_series(70, 11);
    let queries = lcg_series(8, 2222);
    let plain = build_engine(&series);
    let recorded = build_engine(&series).with_metrics(MetricsSink::enabled());
    for request in mixed_requests(&queries, true) {
        assert_eq!(plain.query(&request), recorded.query(&request));
    }
    // The recording engine really did record on the side.
    let snapshot = recorded.metrics().registry().unwrap().snapshot();
    assert_eq!(snapshot.counter(Metric::RangeQueries), 2);
    assert_eq!(snapshot.counter(Metric::KnnQueries), 2);
    assert_eq!(snapshot.counter(Metric::ScanRangeQueries), 2);
    assert_eq!(snapshot.counter(Metric::ScanKnnQueries), 2);
}

#[test]
fn registry_counters_equal_summed_stats() {
    let series = lcg_series(60, 13);
    let queries = lcg_series(12, 3333);
    let engine = build_engine(&series).with_metrics(MetricsSink::enabled());
    let mut total = EngineStats::default();
    for request in mixed_requests(&queries, false) {
        total.absorb(&engine.query(&request).result.stats);
    }
    let snapshot = engine.metrics().registry().unwrap().snapshot();
    assert_eq!(snapshot.counter(Metric::IndexNodeAccesses), total.index.node_accesses);
    assert_eq!(snapshot.counter(Metric::IndexCandidates), total.index.candidates);
    assert_eq!(snapshot.counter(Metric::LbPruned), total.lb_pruned);
    assert_eq!(snapshot.counter(Metric::LbImprovedPruned), total.lb_improved_pruned);
    assert_eq!(snapshot.counter(Metric::ExactStarted), total.exact_computations);
    assert_eq!(snapshot.counter(Metric::EarlyAbandoned), total.early_abandoned);
    assert_eq!(snapshot.counter(Metric::DpCells), total.dp_cells);
    assert_eq!(snapshot.counter(Metric::Matches), total.matches);
    // Per-kind latency histograms saw one observation per query.
    let timers: u64 = snapshot.timers.iter().map(|t| t.histogram.count).sum();
    assert_eq!(timers, queries.len() as u64);
}

#[test]
fn insert_and_remove_are_counted() {
    let series = lcg_series(5, 17);
    let registry = Arc::new(MetricsRegistry::new());
    let mut engine = build_engine(&series); // inserts before the sink: uncounted
    engine.set_metrics(MetricsSink::Enabled(registry.clone()));
    engine.insert(100, series[0].clone());
    assert!(engine.remove(100));
    assert!(!engine.remove(100), "second removal is a no-op");
    assert_eq!(registry.get(Metric::Inserts), 1);
    assert_eq!(registry.get(Metric::Removals), 1);
}

#[test]
fn batch_trace_merge_is_permutation_invariant() {
    let series = lcg_series(60, 19);
    let queries = lcg_series(10, 4444);
    let engine = build_engine(&series);
    let requests = mixed_requests(&queries, true);
    // Sequential reference at threads=1, plus the HUM_THREADS-driven
    // default (ci.sh runs this suite under HUM_THREADS=1 and 8).
    let reference = engine.try_query_batch(&requests, &BatchOptions::new(1, 2)).unwrap();
    for options in [BatchOptions::new(2, 3), BatchOptions::new(8, 1), BatchOptions::default()] {
        let got = engine.try_query_batch(&requests, &options).unwrap();
        assert_eq!(got, reference, "{options:?}");
    }
    // Each merged outcome carries its trace, in submission order.
    for (outcome, request) in reference.outcomes.iter().zip(&requests) {
        let trace = outcome.trace.expect("all requests traced");
        assert_eq!(trace.totals(), outcome.result.stats);
        assert_eq!(trace.band, request.band());
    }
}

#[test]
fn every_error_variant_round_trips_through_a_request() {
    let series = lcg_series(3, 23);
    let mut engine = build_engine(&series[..1]);

    let cases: Vec<(QueryRequest, EngineError)> = vec![
        (QueryRequest::range(1.0), EngineError::EmptyQuery),
        (
            QueryRequest::knn(2).with_series(vec![0.5; LEN - 1]),
            EngineError::LengthMismatch { context: "query", expected: LEN, got: LEN - 1 },
        ),
        (
            QueryRequest::range(1.0).with_series(series[1].clone()).with_band(LEN),
            EngineError::BandTooWide { band: LEN, len: LEN },
        ),
    ];
    for (request, expected) in cases {
        assert_eq!(engine.try_query(&request), Err(expected));
        // The scan fallback validates identically.
        assert_eq!(engine.try_query(&request.clone().with_scan(true)), Err(expected));
        // Batched validation reports the same error up front.
        assert_eq!(
            engine.try_query_batch(&[request], &BatchOptions::new(1, 1)).unwrap_err(),
            expected
        );
    }

    let mut bad = series[1].clone();
    bad[4] = f64::INFINITY;
    match engine.try_query(&QueryRequest::knn(1).with_series(bad)) {
        Err(EngineError::NonFiniteSample { context, index, value }) => {
            assert_eq!((context, index, value), ("query", 4, f64::INFINITY));
        }
        other => panic!("expected NonFiniteSample, got {other:?}"),
    }
    assert_eq!(engine.try_insert(0, series[2].clone()), Err(EngineError::DuplicateId(0)));

    // Every variant's Display is stable enough to grep in a panic message.
    for error in [
        EngineError::EmptyQuery,
        EngineError::LengthMismatch { context: "query", expected: 2, got: 1 },
        EngineError::NonFiniteSample { context: "query", index: 0, value: f64::NAN },
        EngineError::BandTooWide { band: 9, len: 9 },
        EngineError::DuplicateId(1),
    ] {
        assert!(!error.to_string().is_empty());
    }
}

#[test]
fn exporters_render_live_traces_and_metrics() {
    let series = lcg_series(50, 29);
    let engine = build_engine(&series).with_metrics(MetricsSink::enabled());
    let request =
        QueryRequest::range(2.0).with_series(series[7].clone()).with_band(3).with_trace(true);
    let trace = engine.query(&request).trace.unwrap();
    let text = trace_to_text(&trace);
    assert!(text.contains("envelope_lb"));
    let json = to_json_string(&trace);
    assert!(json.contains("\"kind\": \"range\""));
    let snapshot = engine.metrics().registry().unwrap().snapshot();
    assert!(metrics_to_text(&snapshot).contains("engine.queries.range"));
    assert!(to_json_string(&snapshot).contains("\"latency.range_query\""));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any workload: tracing and metrics recording never change the
    /// answer, trace totals always equal the stats, and the range-path
    /// cascade funnel closes exactly (every index candidate is pruned by
    /// exactly one stage or verified).
    #[test]
    fn tracing_is_free_and_consistent(
        seed in any::<u64>(),
        band in 0usize..6,
        radius in 0.5f64..3.0,
    ) {
        let series = lcg_series(40, seed);
        let query = lcg_series(1, seed ^ 0xfeed).remove(0);
        let plain = build_engine(&series);
        let recorded = build_engine(&series).with_metrics(MetricsSink::enabled());
        let untraced = QueryRequest::range(radius).with_series(query.clone()).with_band(band);
        let traced = untraced.clone().with_trace(true);

        let baseline = plain.query(&untraced);
        prop_assert_eq!(&plain.query(&traced).result, &baseline.result);
        let outcome = recorded.query(&traced);
        prop_assert_eq!(&outcome.result, &baseline.result);

        let trace = outcome.trace.expect("trace requested");
        prop_assert_eq!(trace.totals(), outcome.result.stats);
        prop_assert_eq!(
            trace.lb_pruned + trace.lb_improved_pruned + trace.exact_started,
            trace.candidates_in
        );
        prop_assert_eq!(trace.verified, trace.exact_started - trace.early_abandoned);
        prop_assert!(trace.matches <= trace.verified);
    }
}
