//! Property-based tests for the paper's central inequalities, over
//! arbitrary series:
//!
//! ```text
//! feature LB  ≤  full-envelope LB  ≤  banded DTW  ≤  Euclidean
//! Keogh_PAA LB ≤ New_PAA LB
//! x ∈ Env_k(x);  z ∈ e ⇒ T(z) ∈ T(e)   (container invariance)
//! ```

use hum_core::dtw::{
    dtw_distance_sq, ldtw_distance, ldtw_distance_sq, ldtw_distance_sq_bounded,
    ldtw_distance_sq_bounded_with, DtwWorkspace,
};
use hum_core::envelope::{lb_improved_sq, Envelope};
use hum_core::transform::dft::Dft;
use hum_core::transform::dwt::Dwt;
use hum_core::transform::paa::{KeoghPaa, NewPaa};
use hum_core::transform::{feature_lower_bound, EnvelopeTransform};
use hum_linalg::vec_ops::sq_euclidean;
use proptest::prelude::*;

const LEN: usize = 32;

fn series() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-20.0f64..20.0, LEN..=LEN)
}

fn transforms() -> Vec<Box<dyn EnvelopeTransform>> {
    vec![
        Box::new(NewPaa::new(LEN, 4)),
        Box::new(KeoghPaa::new(LEN, 4)),
        Box::new(Dft::new(LEN, 5)),
        Box::new(Dwt::new(LEN, 4)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn chain_of_lower_bounds(x in series(), y in series(), k in 0usize..10) {
        let euclid = sq_euclidean(&x, &y);
        let dtw = ldtw_distance_sq(&x, &y, k);
        prop_assert!(dtw <= euclid + 1e-9);

        let env = Envelope::compute(&y, k);
        let lb_env = env.distance_sq(&x);
        prop_assert!(lb_env <= dtw + 1e-9);

        for t in transforms() {
            let lb_feat =
                feature_lower_bound(&t.project_envelope(&env), &t.project(&x)).powi(2);
            prop_assert!(
                lb_feat <= dtw + 1e-6,
                "{}: {} > {}", t.name(), lb_feat, dtw
            );
        }
    }

    #[test]
    fn new_paa_dominates_keogh_paa(x in series(), y in series(), k in 0usize..10) {
        let env = Envelope::compute(&y, k);
        let new = NewPaa::new(LEN, 4);
        let keogh = KeoghPaa::new(LEN, 4);
        let lb_new = feature_lower_bound(&new.project_envelope(&env), &new.project(&x));
        let lb_keogh = feature_lower_bound(&keogh.project_envelope(&env), &keogh.project(&x));
        prop_assert!(lb_new + 1e-9 >= lb_keogh);
    }

    #[test]
    fn envelope_contains_banded_shifts(y in series(), k in 0usize..8, shift in 0usize..8) {
        prop_assume!(shift <= k);
        let env = Envelope::compute(&y, k);
        prop_assert!(env.contains(&y));
        let shifted: Vec<f64> = (0..LEN).map(|i| y[(i + shift).min(LEN - 1)]).collect();
        prop_assert!(env.contains(&shifted));
    }

    #[test]
    fn container_invariance_for_random_members(
        y in series(),
        k in 1usize..8,
        mix in proptest::collection::vec(0.0f64..1.0, LEN..=LEN),
    ) {
        let env = Envelope::compute(&y, k);
        // A random convex combination of the bounds lies in the envelope.
        let z: Vec<f64> = env
            .lower()
            .iter()
            .zip(env.upper())
            .zip(&mix)
            .map(|((l, u), m)| l + (u - l) * m * 0.999)
            .collect();
        prop_assert!(env.contains(&z));
        for t in transforms() {
            let feature_box = t.project_envelope(&env);
            let feats = t.project(&z);
            prop_assert!(
                feature_box.min_dist_point(&feats) < 1e-7,
                "{} violates container invariance", t.name()
            );
        }
    }

    #[test]
    fn dtw_triangle_like_symmetry_and_identity(x in series(), y in series(), k in 0usize..8) {
        prop_assert!(ldtw_distance(&x, &x, k) < 1e-12);
        let a = ldtw_distance(&x, &y, k);
        let b = ldtw_distance(&y, &x, k);
        prop_assert!((a - b).abs() < 1e-9);
        prop_assert!(a >= 0.0);
    }

    #[test]
    fn widening_the_band_never_increases_dtw(x in series(), y in series()) {
        let mut last = f64::INFINITY;
        for k in 0..8 {
            let d = ldtw_distance_sq(&x, &y, k);
            prop_assert!(d <= last + 1e-9);
            last = d;
        }
        prop_assert!(dtw_distance_sq(&x, &y) <= last + 1e-9);
    }

    #[test]
    fn unconstrained_dtw_lower_bounds_banded(x in series(), y in series(), k in 0usize..6) {
        prop_assert!(dtw_distance_sq(&x, &y) <= ldtw_distance_sq(&x, &y, k) + 1e-9);
    }

    #[test]
    fn bounded_kernel_is_exact_under_threshold_and_over_it_otherwise(
        x in series(),
        y in series(),
        k in 0usize..10,
        frac in 0.0f64..2.0,
    ) {
        let exact = ldtw_distance_sq(&x, &y, k);
        let threshold = exact * frac;
        let bounded = ldtw_distance_sq_bounded(&x, &y, k, threshold);
        if exact <= threshold {
            // Same float-op order as the unbounded kernel, so bit-identical.
            prop_assert_eq!(bounded.to_bits(), exact.to_bits());
        } else {
            prop_assert!(bounded > threshold, "{} not above {}", bounded, threshold);
        }
    }

    #[test]
    fn workspace_reuse_does_not_change_the_kernel(
        xs in proptest::collection::vec(series(), 3..=3),
        y in series(),
        k in 0usize..10,
    ) {
        let mut ws = DtwWorkspace::new();
        for x in &xs {
            let fresh = ldtw_distance_sq(x, &y, k);
            let reused = ldtw_distance_sq_bounded_with(&mut ws, x, &y, k, f64::INFINITY);
            prop_assert_eq!(reused.to_bits(), fresh.to_bits());
        }
    }

    #[test]
    fn lb_improved_sits_between_envelope_bound_and_dtw(
        q in series(),
        s in series(),
        k in 0usize..10,
    ) {
        let lb_env = Envelope::compute(&q, k).distance_sq(&s);
        let lb_imp = lb_improved_sq(&q, &s, k);
        let dtw = ldtw_distance_sq(&q, &s, k);
        prop_assert!(lb_env <= lb_imp + 1e-9, "{} > {}", lb_env, lb_imp);
        prop_assert!(lb_imp <= dtw + 1e-9, "{} > {}", lb_imp, dtw);
    }
}
