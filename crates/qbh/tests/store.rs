//! The segmented storage engine, end to end: a memtable over immutable
//! segments must answer **bit-identically** to the monolithic build at
//! every segment layout and shard count, survive reloads unchanged, and
//! make removals durable — a crash-and-reload can never resurrect a
//! removed melody, whether it died in the memtable or in a segment.

use std::path::{Path, PathBuf};
use std::time::Duration;

use hum_core::batch::BatchOptions;
use hum_core::engine::{EngineError, QueryRequest};
use hum_core::obs::{Metric, MetricsSink};
use hum_music::{HummingSimulator, SingerProfile, Songbook, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::fault::flip_bit;
use hum_qbh::songsearch::{SongSearch, SongSearchConfig};
use hum_qbh::storage::StorageError;
use hum_qbh::store::{self, Manifest, SegmentEntry, SegmentRef};
use hum_qbh::system::{QbhConfig, QbhMatch, QbhSystem, StoreOptions};
use hum_server::{Server, ServerConfig};

fn database() -> MelodyDatabase {
    MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 10,
        phrases_per_song: 5,
        ..SongbookConfig::default()
    })
}

fn hums(db: &MelodyDatabase, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let target = (i * 13) as u64 % db.len() as u64;
            let mut singer = HummingSimulator::new(SingerProfile::good(), 700 + i as u64);
            singer.sing_series(db.entry(target).unwrap().melody(), 0.01)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qbh-store-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config_with_shards(shards: usize) -> QbhConfig {
    QbhConfig { shards, ..QbhConfig::default() }
}

fn series_of(db: &MelodyDatabase, id: u64) -> Vec<f64> {
    db.entry(id).unwrap().melody().to_time_series(QbhConfig::default().samples_per_beat)
}

/// Ingests the whole database into a fresh store at `dir`, flushing a
/// segment every `per_segment` melodies. With `flush_tail` false the
/// trailing partial batch stays in the memtable, so queries cover the
/// mixed memtable-plus-segments case.
fn build_store(
    db: &MelodyDatabase,
    dir: &Path,
    shards: usize,
    per_segment: usize,
    flush_tail: bool,
) -> QbhSystem {
    let config = config_with_shards(shards);
    let options = StoreOptions { memtable_capacity: per_segment, ..StoreOptions::default() };
    let mut system = QbhSystem::try_create_store(dir, &config, options).unwrap();
    for entry in db.entries() {
        let series = entry.melody().to_time_series(config.samples_per_beat);
        system.try_insert_melody(entry.id(), entry.song(), entry.phrase(), &series).unwrap();
        if system.needs_flush() {
            system.flush().unwrap();
        }
    }
    if flush_tail {
        system.flush().unwrap();
    }
    system
}

fn assert_bit_identical(got: &[QbhMatch], want: &[QbhMatch], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: match counts differ");
    for (g, w) in got.iter().zip(want) {
        assert_eq!((g.id, g.song, g.phrase), (w.id, w.song, w.phrase), "{context}");
        assert_eq!(
            g.distance.to_bits(),
            w.distance.to_bits(),
            "{context}: distance {} vs {} not bit-identical",
            g.distance,
            w.distance
        );
    }
}

#[test]
fn every_segment_layout_answers_bit_identically_to_the_monolithic_build() {
    let db = database();
    let queries = hums(&db, 4);
    for shards in [1usize, 3] {
        let monolithic = QbhSystem::build(&db, &config_with_shards(shards));
        let band = monolithic.band();
        // One flushed segment; two segments plus a 16-melody memtable;
        // seven segments plus a 1-melody memtable.
        for per_segment in [db.len(), 17, 7] {
            let dir = temp_dir(&format!("layout-{shards}-{per_segment}"));
            let system = build_store(&db, &dir, shards, per_segment, per_segment == db.len());
            assert!(system.is_store_backed());
            assert_eq!(system.len(), db.len());
            for (i, q) in queries.iter().enumerate() {
                let context = format!("#{i} x{shards}sh /{per_segment}");
                let want = monolithic.query_series(q, 10);
                let got = system.query_series(q, 10);
                assert_bit_identical(&got.matches, &want.matches, &format!("knn {context}"));

                let request = QueryRequest::range(6.0).with_band(band);
                let want = monolithic.try_query_request(q, request.clone()).unwrap().0;
                let got = system.try_query_request(q, request).unwrap().0;
                assert_bit_identical(&got.matches, &want.matches, &format!("range {context}"));
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn batch_and_session_queries_are_segment_invariant() {
    let db = database();
    let queries = hums(&db, 5);
    let monolithic = QbhSystem::build(&db, &config_with_shards(2));
    let dir = temp_dir("batch-session");
    let system = build_store(&db, &dir, 2, 11, false);

    let sequential: Vec<_> = queries.iter().map(|q| monolithic.query_series(q, 8)).collect();
    for threads in [1usize, 8] {
        let batch = system.query_series_batch(&queries, 8, &BatchOptions::new(threads, 1));
        for (i, result) in batch.iter().enumerate() {
            assert_bit_identical(
                &result.matches,
                &sequential[i].matches,
                &format!("batch #{i} @{threads}t"),
            );
        }
    }

    // Streaming refinement: both systems see the same growing prefix and
    // must agree after every chunk.
    let hum = &queries[0];
    let template = QueryRequest::knn(6).with_band(monolithic.band());
    let mut mono_session = monolithic.open_session(template.clone());
    let mut store_session = system.open_session(template);
    for (round, chunk) in hum.chunks(hum.len().div_ceil(4).max(1)).enumerate() {
        mono_session.append(chunk).unwrap();
        store_session.append(chunk).unwrap();
        let (want, _) = monolithic.try_refine_session(&mono_session).unwrap();
        let (got, _) = system.try_refine_session(&store_session).unwrap();
        assert_bit_identical(&got.matches, &want.matches, &format!("refine round {round}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_reloaded_store_answers_identically() {
    let db = database();
    let queries = hums(&db, 3);
    let dir = temp_dir("reload");
    let system = build_store(&db, &dir, 2, 11, true);
    let segments = system.segment_count();
    let before: Vec<_> = queries.iter().map(|q| system.query_series(q, 10)).collect();
    drop(system);

    let reloaded = QbhSystem::try_open_store(&dir).unwrap();
    assert_eq!(reloaded.len(), db.len());
    assert_eq!(reloaded.segment_count(), segments);
    assert_eq!(reloaded.memtable_len(), 0, "a reload starts with an empty memtable");
    for (i, q) in queries.iter().enumerate() {
        let got = reloaded.query_series(q, 10);
        assert_bit_identical(&got.matches, &before[i].matches, &format!("reload knn #{i}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_segment_resident_removal_survives_reload_and_compaction() {
    let db = database();
    let dir = temp_dir("remove-durable");
    let mut system = build_store(&db, &dir, 1, 10, true);
    let victim = db.entries()[23].id();

    assert!(system.try_remove(victim).unwrap());
    assert!(!system.try_remove(victim).unwrap(), "second removal finds nothing");
    assert_eq!(system.len(), db.len() - 1);
    drop(system); // no flush after the removal: the tombstone alone must persist

    let mut reloaded = QbhSystem::try_open_store(&dir).unwrap();
    assert_eq!(reloaded.len(), db.len() - 1, "removal resurrected across reload");
    assert_eq!(reloaded.store_stats().unwrap().tombstones, 1);
    let hits = reloaded.query_series(&series_of(&db, victim), db.len());
    assert!(hits.matches.iter().all(|m| m.id != victim), "tombstoned id still queryable");

    // Compaction rewrites the segments without the tombstoned melody and
    // clears the tombstone; the removal stays durable afterwards too.
    assert!(reloaded.compact().unwrap());
    assert_eq!(reloaded.store_stats().unwrap().tombstones, 0);
    drop(reloaded);
    let compacted = QbhSystem::try_open_store(&dir).unwrap();
    assert_eq!(compacted.len(), db.len() - 1);
    let hits = compacted.query_series(&series_of(&db, victim), db.len());
    assert!(hits.matches.iter().all(|m| m.id != victim), "removal resurrected by compaction");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_memtable_resident_removal_never_resurrects() {
    let db = database();
    let dir = temp_dir("remove-memtable");
    // Capacity above the corpus size: everything stays in the memtable.
    let mut system = build_store(&db, &dir, 1, db.len() + 10, false);
    let victim = db.entries()[7].id();

    assert!(system.try_remove(victim).unwrap());
    system.flush().unwrap();
    drop(system);

    let reloaded = QbhSystem::try_open_store(&dir).unwrap();
    assert_eq!(reloaded.len(), db.len() - 1);
    let hits = reloaded.query_series(&series_of(&db, victim), db.len());
    assert!(hits.matches.iter().all(|m| m.id != victim), "pre-flush removal resurrected");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_tombstoned_id_stays_reserved_until_compaction() {
    let db = database();
    let dir = temp_dir("tombstone-reserved");
    let mut system = build_store(&db, &dir, 1, 10, true);
    let victim = db.entries()[31].id();
    let series = series_of(&db, victim);

    assert!(system.try_remove(victim).unwrap());
    // Re-using the id now would make the on-disk segments overlap with the
    // tombstoned entry still physically present in its segment file.
    match system.try_insert_melody(victim, 0, 0, &series) {
        Err(EngineError::DuplicateId(id)) => assert_eq!(id, victim),
        other => panic!("expected DuplicateId for a tombstoned id, got {other:?}"),
    }

    assert!(system.compact().unwrap());
    system.try_insert_melody(victim, 0, 0, &series).expect("id free after compaction");
    let hits = system.query_series(&series, 3);
    assert!(hits.matches.iter().any(|m| m.id == victim));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A store whose manifest or segments lie must fail with a typed
/// [`StorageError`] — never a panic, and never a silently wrong load.
#[test]
fn corrupt_stores_fail_typed_never_panic() {
    let db = database();
    let config = config_with_shards(1);

    // Missing segment file.
    let dir = temp_dir("corrupt-missing");
    build_store(&db, &dir, 1, 17, true);
    let seg = store::segment_path(&dir, 0);
    std::fs::remove_file(&seg).unwrap();
    assert!(QbhSystem::try_open_store(&dir).is_err(), "missing segment file must fail");
    let _ = std::fs::remove_dir_all(&dir);

    // A flipped bit anywhere in a segment or the manifest.
    let dir = temp_dir("corrupt-flip");
    build_store(&db, &dir, 1, 17, true);
    for target in [store::segment_path(&dir, 1), store::manifest_path(&dir)] {
        let clean = std::fs::read(&target).unwrap();
        for index in [8usize, clean.len() / 2, clean.len() - 1] {
            let mut bytes = clean.clone();
            flip_bit(&mut bytes, index, 3);
            std::fs::write(&target, &bytes).unwrap();
            assert!(
                QbhSystem::try_open_store(&dir).is_err(),
                "flipped bit at {index} in {} must fail the load",
                target.display()
            );
        }
        std::fs::write(&target, &clean).unwrap();
        QbhSystem::try_open_store(&dir).expect("restored store loads again");
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Manifest-level lies: each starts from a tiny healthy store.
    let normal_len = config.normal_length;
    let entry = |id: u64| SegmentEntry {
        id,
        song: 0,
        phrase: id as usize,
        series: vec![60.0 + id as f64; normal_len],
    };
    let fresh = |tag: &str| {
        let dir = temp_dir(tag);
        store::save_segment(&dir, 0, &config, &[entry(1), entry(2)]).unwrap();
        store::save_segment(&dir, 1, &config, &[entry(3)]).unwrap();
        dir
    };
    let refs =
        |counts: &[(u64, u64)]| counts.iter().map(|&(id, count)| SegmentRef { id, count }).collect();

    // Duplicate segment id: the writer refuses to produce such a manifest
    // (and `read_manifest` independently rejects one written by anything
    // else), so a duplicated id can never reach the load path intact.
    let dir = fresh("corrupt-dup-seg");
    let manifest =
        Manifest { config, segments: refs(&[(0, 2), (0, 2)]), tombstones: Vec::new(), plan: None };
    match store::save_manifest(&dir, &manifest) {
        Err(StorageError::Unrepresentable(_)) => {}
        other => panic!("duplicate segment id: expected Unrepresentable, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    // Overlapping melody ids across segments.
    let dir = fresh("corrupt-overlap");
    store::save_segment(&dir, 1, &config, &[entry(2)]).unwrap(); // id 2 also lives in segment 0
    let manifest =
        Manifest { config, segments: refs(&[(0, 2), (1, 1)]), tombstones: Vec::new(), plan: None };
    store::save_manifest(&dir, &manifest).unwrap();
    match QbhSystem::try_open_store(&dir).err() {
        Some(StorageError::Corrupt(_)) => {}
        other => panic!("overlapping ids: expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    // A tombstone naming an id no segment holds.
    let dir = fresh("corrupt-dangling");
    let manifest = Manifest { config, segments: refs(&[(0, 2), (1, 1)]), tombstones: vec![99], plan: None };
    store::save_manifest(&dir, &manifest).unwrap();
    match QbhSystem::try_open_store(&dir).err() {
        Some(StorageError::Corrupt(_)) => {}
        other => panic!("dangling tombstone: expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    // A segment count that disagrees with the segment file.
    let dir = fresh("corrupt-count");
    let manifest =
        Manifest { config, segments: refs(&[(0, 5), (1, 1)]), tombstones: Vec::new(), plan: None };
    store::save_manifest(&dir, &manifest).unwrap();
    match QbhSystem::try_open_store(&dir).err() {
        Some(StorageError::Corrupt(_)) => {}
        other => panic!("count mismatch: expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn song_removal_survives_reload_through_the_removal_log() {
    let dir = temp_dir("songsearch-durable");
    let snapshot = dir.join("book.humidx");
    let log = dir.join("removals.humrml");
    let book_config = SongbookConfig { songs: 8, phrases_per_song: 4, ..SongbookConfig::default() };
    let db = MelodyDatabase::from_songbook(&book_config);
    hum_qbh::storage::save(&snapshot, &db, &QbhConfig::default()).unwrap();

    let search_config = SongSearchConfig::default();
    let sink = MetricsSink::Disabled;
    let mut search =
        SongSearch::try_load_durable(&snapshot, &log, &search_config, &sink).unwrap();
    let songs = search.song_count();
    assert!(search.try_remove_song(3).unwrap());
    assert!(!search.try_remove_song(3).unwrap(), "second removal finds nothing");
    assert_eq!(search.song_count(), songs - 1);
    drop(search); // the log write already happened — no explicit save step

    let mut reloaded =
        SongSearch::try_load_durable(&snapshot, &log, &search_config, &sink).unwrap();
    assert_eq!(reloaded.song_count(), songs - 1, "song removal resurrected across reload");
    let probe: Vec<f64> = db.entries()[3 * 4..3 * 4 + 2]
        .iter()
        .flat_map(|e| e.melody().to_time_series(search_config.samples_per_beat))
        .collect();
    let hits = reloaded.query(&probe, songs);
    assert!(hits.matches.iter().all(|m| m.song != 3), "removed song still matches");

    // The logged index stays reserved: re-inserting under it is rejected
    // (a reload would silently drop the new song).
    let book = Songbook::generate(&book_config);
    match reloaded.try_insert_song(3, &book.songs[3]) {
        Err(EngineError::DuplicateId(3)) => {}
        other => panic!("expected DuplicateId for a logged song index, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_maintenance_thread_compacts_a_store_backed_server() {
    let db = database();
    let dir = temp_dir("server-maintenance");
    let config = config_with_shards(1);
    let options = StoreOptions { memtable_capacity: 10, compact_at: 2 };
    let mut system = QbhSystem::try_create_store(&dir, &config, options).unwrap();
    for entry in db.entries().iter().take(20) {
        let series = entry.melody().to_time_series(config.samples_per_beat);
        system.try_insert_melody(entry.id(), entry.song(), entry.phrase(), &series).unwrap();
        if system.needs_flush() {
            system.flush().unwrap();
        }
    }
    assert_eq!(system.segment_count(), 2, "two segments ready for compaction");

    let metrics = MetricsSink::enabled();
    system.set_metrics(metrics.clone());
    let server_config = ServerConfig {
        maintenance_interval: Some(Duration::from_millis(10)),
        metrics: metrics.clone(),
        ..ServerConfig::default()
    };
    let server = Server::start(system, "127.0.0.1:0", server_config).expect("bind");
    let registry = metrics.registry().expect("metrics enabled");
    for _ in 0..400 {
        if registry.get(Metric::ServerMaintenanceTicks) >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(registry.get(Metric::ServerMaintenanceTicks) >= 2, "maintenance thread never ran");
    let system = server.shutdown().expect("service handed back");

    assert_eq!(registry.get(Metric::ServerMaintenanceErrors), 0);
    assert_eq!(system.segment_count(), 1, "background maintenance should have compacted");
    assert!(system.store_stats().unwrap().compactions >= 1);
    assert_eq!(system.len(), 20);
    let _ = std::fs::remove_dir_all(&dir);
}
