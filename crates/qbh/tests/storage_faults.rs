//! Fault-injection and corruption-fuzzing suite for `hum_qbh::storage`.
//!
//! The durability contract under test: every short write, injected I/O
//! error, truncation, or bit flip surfaces as a typed
//! [`StorageError`] — never a panic, and (for the checksummed `HUMIDX02`
//! format) never silently wrong data. The matrices below are exhaustive
//! over a small database image: every byte budget, every truncation
//! length, every single-bit corruption.

use std::io;
use std::path::{Path, PathBuf};

use hum_music::{HummingSimulator, Melody, Note, SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::fault::{flip_bit, FailingReader, FailingWriter, FaultMode, TempFile};
use hum_qbh::songsearch::{SongSearch, SongSearchConfig};
use hum_qbh::storage::{
    self, entries_equal, read_database, write_database, write_database_v1, StorageError,
};
use hum_qbh::store::{self as segstore, Manifest, SegmentEntry, SegmentRef};
use hum_qbh::system::{Backend, QbhConfig, QbhSystem, StoreOptions, TransformKind};
use proptest::prelude::*;

/// A small database so the O(bytes × bits) sweeps stay fast, but with
/// several songs and phrases so provenance grouping is exercised.
fn sample() -> (MelodyDatabase, QbhConfig) {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 3,
        phrases_per_song: 2,
        min_notes: 4,
        max_notes: 7,
        ..SongbookConfig::default()
    });
    (db, QbhConfig::default())
}

fn v2_image(db: &MelodyDatabase, config: &QbhConfig) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_database(&mut bytes, db, config).expect("serialize v2");
    bytes
}

fn v1_image(db: &MelodyDatabase, config: &QbhConfig) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_database_v1(&mut bytes, db, config).expect("serialize v1");
    bytes
}

fn databases_equal(a: &MelodyDatabase, b: &MelodyDatabase) -> bool {
    a.len() == b.len()
        && a.entries().iter().zip(b.entries()).all(|(x, y)| entries_equal(x, y))
}

// ---------------------------------------------------------------------------
// Write-side fault matrix.

#[test]
fn every_write_budget_fails_typed_in_both_modes() {
    let (db, config) = sample();
    let len = v2_image(&db, &config).len() as u64;
    for mode in [FaultMode::Error(io::ErrorKind::Other), FaultMode::Cutoff] {
        for budget in 0..len {
            let mut w = FailingWriter::new(Vec::new(), budget, mode);
            let err = write_database(&mut w, &db, &config)
                .expect_err("a write that cannot complete must error");
            assert!(
                matches!(err, StorageError::Io(_)),
                "budget {budget} mode {mode:?}: expected Io, got {err:?}"
            );
            // Never more bytes on the device than the budget allowed.
            assert!(w.into_inner().len() as u64 <= budget);
        }
    }
}

#[test]
fn v1_writer_under_faults_also_fails_typed() {
    let (db, config) = sample();
    let len = v1_image(&db, &config).len() as u64;
    // Sparse sweep: the v1 writer shares the fault path with v2.
    for budget in (0..len).step_by(7) {
        let mut w = FailingWriter::new(Vec::new(), budget, FaultMode::Cutoff);
        let err = write_database_v1(&mut w, &db, &config).expect_err("short write");
        assert!(matches!(err, StorageError::Io(_)), "budget {budget}: {err:?}");
    }
}

// ---------------------------------------------------------------------------
// Read-side fault matrix: injected errors, cutoffs, and plain truncation.

#[test]
fn every_read_budget_fails_typed_in_both_modes() {
    let (db, config) = sample();
    let image = v2_image(&db, &config);
    for mode in [FaultMode::Error(io::ErrorKind::Other), FaultMode::Cutoff] {
        for budget in 0..image.len() as u64 {
            let mut r = FailingReader::new(image.as_slice(), budget, mode);
            let err = read_database(&mut r)
                .expect_err("a read that cannot complete must error");
            assert!(
                matches!(err, StorageError::Io(_) | StorageError::BadMagic),
                "budget {budget} mode {mode:?}: got {err:?}"
            );
        }
    }
}

#[test]
fn every_truncation_of_either_format_fails_typed() {
    let (db, config) = sample();
    for image in [v2_image(&db, &config), v1_image(&db, &config)] {
        for cut in 0..image.len() {
            let err = read_database(&mut &image[..cut])
                .expect_err("a strict prefix is never a valid snapshot");
            assert!(
                matches!(err, StorageError::Io(_) | StorageError::BadMagic),
                "cut {cut}/{}: got {err:?}",
                image.len()
            );
        }
    }
}

#[test]
fn appended_trailing_bytes_are_rejected_for_v2() {
    let (db, config) = sample();
    let mut image = v2_image(&db, &config);
    image.push(0);
    let err = read_database(&mut image.as_slice()).expect_err("trailing byte");
    assert!(matches!(err, StorageError::Corrupt(_)), "got {err:?}");
}

// ---------------------------------------------------------------------------
// Bit-flip matrices.

/// Every single-bit corruption of a `HUMIDX02` image must fail typed: the
/// whole-file CRC32 guarantees no single-bit flip can round-trip, and the
/// per-section checksums plus bounded parsing guarantee it cannot panic or
/// allocate absurdly on the way to that error.
#[test]
fn every_single_bit_flip_of_a_v2_image_fails_typed() {
    let (db, config) = sample();
    let image = v2_image(&db, &config);
    for index in 0..image.len() {
        for bit in 0..8u8 {
            let mut corrupted = image.clone();
            flip_bit(&mut corrupted, index, bit);
            let err = read_database(&mut corrupted.as_slice()).expect_err("flipped bit");
            assert!(
                matches!(
                    err,
                    StorageError::BadMagic
                        | StorageError::Corrupt(_)
                        | StorageError::Checksum(_)
                        | StorageError::Io(_)
                ),
                "byte {index} bit {bit}: got {err:?}"
            );
        }
    }
}

/// `HUMIDX01` has no checksums, so a flip may load (possibly as different
/// data — that is the legacy format's documented weakness) or fail typed;
/// what it must never do is panic. A flip that *does* load must at least
/// not masquerade as the original database with a different byte image.
#[test]
fn every_single_bit_flip_of_a_v1_image_loads_or_fails_without_panicking() {
    let (db, config) = sample();
    let image = v1_image(&db, &config);
    let (original, original_config) =
        read_database(&mut image.as_slice()).expect("clean v1 loads");
    let mut silent = 0usize;
    for index in 0..image.len() {
        for bit in 0..8u8 {
            let mut corrupted = image.clone();
            flip_bit(&mut corrupted, index, bit);
            // Reaching the next iteration at all is the assertion: no panic,
            // no unbounded allocation, regardless of outcome.
            if let Ok((loaded, config)) = read_database(&mut corrupted.as_slice()) {
                if databases_equal(&loaded, &original) && config == original_config {
                    silent += 1;
                }
            }
        }
    }
    // Every byte of the v1 layout is semantically live, so even without
    // checksums a single flip cannot reproduce the original (db, config)
    // pair — it either changes what loads or fails the bounds checks.
    assert_eq!(silent, 0, "{silent} flips round-tripped as the original snapshot");
}

// ---------------------------------------------------------------------------
// Interrupted saves and stale temp files.

#[test]
fn failed_save_leaves_the_previous_snapshot_loadable() {
    let (db, config) = sample();
    let file = TempFile::unique("faults-prev");
    storage::save(file.path(), &db, &config).expect("first save");

    // A database the format cannot represent: colliding provenance.
    let melody: Melody = vec![Note::new(60, 1.0), Note::new(62, 0.5)].into_iter().collect();
    let bad = MelodyDatabase::from_provenanced(vec![
        (1, 1, melody.clone()),
        (1, 1, melody),
    ]);
    let err = storage::save(file.path(), &bad, &config).expect_err("duplicate provenance");
    assert!(matches!(err, StorageError::Unrepresentable(_)), "got {err:?}");

    let (loaded, loaded_config) = storage::load(file.path()).expect("old snapshot intact");
    assert!(databases_equal(&loaded, &db));
    assert_eq!(loaded_config, config);
}

#[test]
fn save_never_adopts_or_clobbers_a_foreign_temp_file() {
    let (db, config) = sample();
    let file = TempFile::unique("faults-stale");
    // Simulate a previous writer that died mid-save: a torn temp file is
    // sitting next to the target path. Temp names are unique per writer
    // (pid + sequence), so a new save must neither rename this garbage
    // into place nor touch it — it writes through its own temp.
    let tmp = file.path().with_file_name(format!(
        "{}.tmp.{}.0",
        file.path().file_name().unwrap().to_string_lossy(),
        std::process::id().wrapping_add(1)
    ));
    let garbage: &[u8] = b"HUMIDX02 torn garbage from a crashed writer";
    std::fs::write(&tmp, garbage).unwrap();

    storage::save(file.path(), &db, &config).expect("save next to stale temp");
    let (loaded, _) = storage::load(file.path()).expect("snapshot loads");
    assert!(databases_equal(&loaded, &db));
    // The foreign temp was never adopted (the snapshot is valid, not the
    // garbage) and never deleted (it is not this writer's to clean up).
    assert_eq!(std::fs::read(&tmp).unwrap(), garbage, "foreign temp must be untouched");
}

#[test]
fn concurrent_saves_to_one_path_never_tear_the_snapshot() {
    // The old scheme named temps `{path}.tmp.{pid}` — two threads saving
    // the same path interleaved writes through one temp file and could
    // rename a torn mixture into place. Unique per-save temps make the
    // last rename win with a complete file; both snapshots always load.
    let (db_a, config) = sample();
    let songbook = SongbookConfig { songs: 5, phrases_per_song: 2, ..SongbookConfig::default() };
    let db_b = MelodyDatabase::from_songbook(&songbook);
    let file = TempFile::unique("faults-concurrent");

    for round in 0..8 {
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            let path_a = file.path().to_path_buf();
            let path_b = file.path().to_path_buf();
            let (barrier_a, barrier_b) = (&barrier, &barrier);
            let (db_a, db_b, config) = (&db_a, &db_b, &config);
            let a = scope.spawn(move || {
                barrier_a.wait();
                storage::save(&path_a, db_a, config)
            });
            let b = scope.spawn(move || {
                barrier_b.wait();
                storage::save(&path_b, db_b, config)
            });
            a.join().expect("thread a").expect("save a");
            b.join().expect("thread b").expect("save b");
        });
        // Whichever rename landed last, the file is one complete snapshot.
        let (loaded, _) =
            storage::load(file.path()).unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert!(
            databases_equal(&loaded, &db_a) || databases_equal(&loaded, &db_b),
            "round {round}: loaded snapshot is neither writer's database"
        );
    }
}

#[test]
fn torn_file_at_the_target_path_is_a_typed_error_not_a_panic() {
    let (db, config) = sample();
    let image = v2_image(&db, &config);
    let file = TempFile::unique("faults-torn");
    // What a non-atomic writer would have left after a crash.
    std::fs::write(file.path(), &image[..image.len() / 2]).unwrap();
    let err = storage::load(file.path()).expect_err("torn file");
    assert!(matches!(err, StorageError::Io(_)), "got {err:?}");
}

// ---------------------------------------------------------------------------
// Cross-version compatibility: legacy files keep answering queries.

#[test]
fn v1_and_v2_snapshots_yield_identical_query_results() {
    let (db, config) = sample();
    let v1 = TempFile::unique("faults-compat-v1");
    let v2 = TempFile::unique("faults-compat-v2");
    std::fs::write(v1.path(), v1_image(&db, &config)).unwrap();
    storage::save(v2.path(), &db, &config).expect("v2 save");

    let direct = QbhSystem::build(&db, &config);
    let from_v1 = QbhSystem::try_load(v1.path()).expect("legacy snapshot loads");
    let from_v2 = QbhSystem::try_load(v2.path()).expect("current snapshot loads");

    for (i, entry) in db.entries().iter().enumerate().take(3) {
        let mut singer = HummingSimulator::new(SingerProfile::good(), 400 + i as u64);
        let hum = singer.sing_series(entry.melody(), 0.01);
        let expected = direct.query_series(&hum, 3);
        let got_v1 = from_v1.query_series(&hum, 3);
        let got_v2 = from_v2.query_series(&hum, 3);
        assert_eq!(got_v1.matches, expected.matches, "v1 diverged on hum {i}");
        assert_eq!(got_v2.matches, expected.matches, "v2 diverged on hum {i}");
    }
}

#[test]
fn song_search_loads_either_format_and_groups_by_provenance() {
    let (db, config) = sample();
    let file = TempFile::unique("faults-songsearch");
    storage::save(file.path(), &db, &config).expect("save");
    let search = SongSearch::try_load(file.path(), &SongSearchConfig::default())
        .expect("song search from snapshot");
    assert_eq!(search.song_count(), 3, "one reconstructed song per provenance group");
    assert!(search.window_count() > 0);
}

#[test]
fn try_load_propagates_typed_errors_with_no_partial_state() {
    let missing = TempFile::unique("faults-missing");
    let Err(err) = QbhSystem::try_load(missing.path()) else {
        panic!("loading a missing file must fail");
    };
    assert!(matches!(err, StorageError::Io(_)), "got {err:?}");

    let garbage = TempFile::unique("faults-garbage");
    std::fs::write(garbage.path(), b"not a snapshot at all").unwrap();
    let Err(err) = QbhSystem::try_load(garbage.path()) else {
        panic!("loading garbage must fail");
    };
    assert!(matches!(err, StorageError::BadMagic), "got {err:?}");
    let Err(err) = SongSearch::try_load(garbage.path(), &SongSearchConfig::default()) else {
        panic!("loading garbage must fail");
    };
    assert!(matches!(err, StorageError::BadMagic), "got {err:?}");
}

// ---------------------------------------------------------------------------
// Segmented-store compaction crash states.
//
// Compaction's on-disk order is: write the merged segment (temp + rename),
// swap the manifest (temp + rename), then delete the replaced segment
// files. A crash leaves one of four states; the first three must open as
// the *pre*-compaction view (the swap is the commit point), the last as
// the post-compaction view — and every state must answer queries
// identically, because compaction only rearranges bytes.

fn crash_temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qbh-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// k-NN answers over a few hums, as `(id, distance bits)` so comparison is
/// exact.
fn knn_answers(system: &QbhSystem, db: &MelodyDatabase) -> Vec<Vec<(u64, u64)>> {
    (0..3)
        .map(|i| {
            let target = (i * 5) as u64 % db.len() as u64;
            let mut singer = HummingSimulator::new(SingerProfile::good(), 900 + i as u64);
            let hum = singer.sing_series(db.entry(target).unwrap().melody(), 0.01);
            system
                .query_series(&hum, 8)
                .matches
                .iter()
                .map(|m| (m.id, m.distance.to_bits()))
                .collect()
        })
        .collect()
}

#[test]
fn every_compaction_crash_state_opens_and_answers_identically() {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 6,
        phrases_per_song: 3,
        ..SongbookConfig::default()
    });
    let config = QbhConfig::default();

    // Pre-compaction: three segments plus a tombstone, so compaction has
    // both merging and purging to do.
    let base = crash_temp_dir("compaction-base");
    let options = StoreOptions { memtable_capacity: 6, compact_at: usize::MAX };
    let mut system = QbhSystem::try_create_store(&base, &config, options).unwrap();
    for entry in db.entries() {
        let series = entry.melody().to_time_series(config.samples_per_beat);
        system.try_insert_melody(entry.id(), entry.song(), entry.phrase(), &series).unwrap();
        if system.needs_flush() {
            system.flush().unwrap();
        }
    }
    system.flush().unwrap();
    let victim = db.entries()[4].id();
    assert!(system.try_remove(victim).unwrap());
    let expected_len = system.len();
    let reference = knn_answers(&system, &db);
    drop(system);

    // Run a real compaction in a scratch copy to obtain the exact bytes a
    // crashed compaction would have been writing.
    let done = crash_temp_dir("compaction-done");
    copy_dir(&base, &done);
    let mut compacted = QbhSystem::try_open_store(&done).unwrap();
    assert!(compacted.compact().unwrap());
    drop(compacted);
    let base_files: std::collections::BTreeSet<String> = std::fs::read_dir(&base)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    let new_segment_name = std::fs::read_dir(&done)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .find(|name| name.ends_with(".humseg") && !base_files.contains(name))
        .expect("compaction wrote a fresh segment");
    let new_segment = std::fs::read(done.join(&new_segment_name)).unwrap();
    let new_manifest = std::fs::read(done.join(segstore::MANIFEST_FILE)).unwrap();

    let check = |dir: &Path, state: &str| {
        let system = QbhSystem::try_open_store(dir)
            .unwrap_or_else(|e| panic!("{state}: store must open, got {e}"));
        assert_eq!(system.len(), expected_len, "{state}: wrong melody count");
        assert_eq!(knn_answers(&system, &db), reference, "{state}: answers diverged");
    };

    // State 1: crashed mid-segment-write — a torn temp next to the store.
    // Crash states 1-3 precede the manifest swap, so each must open as the
    // pre-compaction view; state 4 is past the commit point.
    for cut in [0, new_segment.len() / 2, new_segment.len() - 1] {
        let dir = crash_temp_dir("compaction-torn-seg");
        copy_dir(&base, &dir);
        std::fs::write(
            dir.join(format!("{new_segment_name}.tmp.4242.0")),
            &new_segment[..cut],
        )
        .unwrap();
        check(&dir, &format!("torn segment temp (cut {cut})"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // State 2: the merged segment landed, but the manifest swap never ran
    // — the complete file is an orphan the manifest does not name.
    let dir = crash_temp_dir("compaction-orphan-seg");
    copy_dir(&base, &dir);
    std::fs::write(dir.join(&new_segment_name), &new_segment).unwrap();
    check(&dir, "orphan merged segment");
    let _ = std::fs::remove_dir_all(&dir);

    // State 3: crashed mid-manifest-write — merged segment plus a torn
    // manifest temp; the real manifest still names the old segments.
    for cut in [8, new_manifest.len() / 2, new_manifest.len() - 1] {
        let dir = crash_temp_dir("compaction-torn-man");
        copy_dir(&base, &dir);
        std::fs::write(dir.join(&new_segment_name), &new_segment).unwrap();
        std::fs::write(
            dir.join(format!("{}.tmp.4242.0", segstore::MANIFEST_FILE)),
            &new_manifest[..cut],
        )
        .unwrap();
        check(&dir, &format!("torn manifest temp (cut {cut})"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // State 4: manifest swapped but the replaced segment files were never
    // deleted — the post-compaction view, with the old segments orphaned.
    let dir = crash_temp_dir("compaction-undeleted");
    copy_dir(&base, &dir);
    std::fs::write(dir.join(&new_segment_name), &new_segment).unwrap();
    std::fs::write(dir.join(segstore::MANIFEST_FILE), &new_manifest).unwrap();
    check(&dir, "undeleted old segments");
    let _ = std::fs::remove_dir_all(&dir);

    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&done);
}

/// The segment and manifest codecs share the storage fault contract: every
/// write budget fails typed with no bytes beyond the budget, and (sparse
/// sweep) single-bit corruption of either image never parses.
#[test]
fn segment_and_manifest_codecs_fail_typed_under_faults() {
    let config = QbhConfig::default();
    let entries: Vec<SegmentEntry> = (0..3)
        .map(|i| SegmentEntry {
            id: i,
            song: i as usize,
            phrase: 0,
            series: vec![55.0 + i as f64; config.normal_length],
        })
        .collect();
    let manifest = Manifest {
        config,
        segments: vec![SegmentRef { id: 0, count: 2 }, SegmentRef { id: 1, count: 1 }],
        tombstones: vec![7],
        plan: None,
    };

    let mut segment_image = Vec::new();
    segstore::write_segment(&mut segment_image, &config, &entries).expect("serialize");
    let mut manifest_image = Vec::new();
    segstore::write_manifest(&mut manifest_image, &manifest).expect("serialize");

    for (name, image) in [("segment", &segment_image), ("manifest", &manifest_image)] {
        for budget in (0..image.len() as u64).step_by(5) {
            let mut w = FailingWriter::new(Vec::new(), budget, FaultMode::Cutoff);
            let err = if *name == *"segment" {
                segstore::write_segment(&mut w, &config, &entries).expect_err("short write")
            } else {
                segstore::write_manifest(&mut w, &manifest).expect_err("short write")
            };
            assert!(matches!(err, StorageError::Io(_)), "{name} budget {budget}: {err:?}");
            assert!(w.into_inner().len() as u64 <= budget, "{name}: wrote past the budget");
        }

        for index in (0..image.len()).step_by(3) {
            for bit in 0..8u8 {
                let mut corrupted = image.clone();
                flip_bit(&mut corrupted, index, bit);
                let err = if *name == *"segment" {
                    segstore::read_segment(&mut corrupted.as_slice())
                        .map(|_| ())
                        .expect_err("flipped segment bit")
                } else {
                    segstore::read_manifest(&mut corrupted.as_slice())
                        .map(|_| ())
                        .expect_err("flipped manifest bit")
                };
                assert!(
                    matches!(
                        err,
                        StorageError::BadMagic
                            | StorageError::Corrupt(_)
                            | StorageError::Checksum(_)
                            | StorageError::Io(_)
                    ),
                    "{name} byte {index} bit {bit}: got {err:?}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests: round-trips over arbitrary databases and configurations,
// plus randomized corruption beyond the exhaustive single-bit matrix.

fn melody_strategy() -> impl Strategy<Value = Melody> {
    proptest::collection::vec((30u8..100, 1u32..=16), 1..10)
        .prop_map(|notes| {
            notes.into_iter().map(|(pitch, q)| Note::new(pitch, f64::from(q) * 0.25)).collect()
        })
}

fn database_strategy() -> impl Strategy<Value = MelodyDatabase> {
    proptest::collection::vec(melody_strategy(), 1..6)
        .prop_map(MelodyDatabase::from_melodies)
}

fn config_strategy() -> impl Strategy<Value = QbhConfig> {
    (
        (
            prop_oneof![Just(64usize), Just(128usize)],
            prop_oneof![Just(4usize), Just(8usize)],
            1usize..6,
            0.0f64..0.3,
        ),
        (0u8..5, 0u8..3, 1usize..5),
    )
        .prop_map(|((normal_length, feature_dims, samples_per_beat, warping_width), (t, b, shards))| {
            QbhConfig {
                normal_length,
                feature_dims,
                samples_per_beat,
                warping_width,
                shards,
                transform: match t {
                    0 => TransformKind::NewPaa,
                    1 => TransformKind::KeoghPaa,
                    2 => TransformKind::Dft,
                    3 => TransformKind::Dwt,
                    _ => TransformKind::Svd,
                }
                .into(),
                backend: match b {
                    0 => Backend::RStar,
                    1 => Backend::Grid,
                    _ => Backend::Linear,
                },
                page_bytes: 4096,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_databases_round_trip_in_both_formats(
        db in database_strategy(),
        config in config_strategy(),
    ) {
        for v1 in [false, true] {
            let mut bytes = Vec::new();
            // The legacy format cannot record a partition: round-trip it at
            // one shard and expect exactly that back.
            let expected = if v1 { QbhConfig { shards: 1, ..config } } else { config };
            if v1 {
                write_database_v1(&mut bytes, &db, &expected).expect("serialize v1");
            } else {
                write_database(&mut bytes, &db, &expected).expect("serialize v3");
            }
            let (loaded, loaded_config) =
                read_database(&mut bytes.as_slice()).expect("round-trip read");
            prop_assert!(databases_equal(&loaded, &db), "v1={v1}: entries diverged");
            prop_assert_eq!(loaded_config, expected);
        }
    }

    #[test]
    fn random_multi_bit_corruption_of_v2_never_round_trips(
        db in database_strategy(),
        config in config_strategy(),
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..5),
    ) {
        let mut image = Vec::new();
        write_database(&mut image, &db, &config).expect("serialize v2");
        let pristine = image.clone();
        for (index, bit) in flips {
            flip_bit(&mut image, index, bit);
        }
        if image == pristine {
            // Flip pairs can cancel (same byte, same bit, twice).
            return Ok(());
        }
        let result = read_database(&mut image.as_slice());
        prop_assert!(result.is_err(), "corrupted image must not parse");
    }

    #[test]
    fn random_truncation_of_v2_fails_typed(
        db in database_strategy(),
        config in config_strategy(),
        fraction in 0.0f64..1.0,
    ) {
        let mut image = Vec::new();
        write_database(&mut image, &db, &config).expect("serialize v2");
        let cut = ((image.len() as f64) * fraction) as usize;
        if cut == image.len() {
            return Ok(());
        }
        let err = read_database(&mut &image[..cut]).expect_err("truncated image");
        prop_assert!(
            matches!(err, StorageError::Io(_) | StorageError::BadMagic),
            "cut {}/{}: {:?}", cut, image.len(), err
        );
    }
}
