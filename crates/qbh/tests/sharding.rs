//! Shard-count invariance, end to end: the same corpus partitioned into
//! 1, 2, 4, or 8 shards must return **bit-identical** matches — in
//! process, through the batch API at any thread count, over the wire at
//! any worker count, and after a save/load round trip with or without a
//! `--shards`-style override.
//!
//! Stats are a function of (query, corpus, shard count) — invariant under
//! fanout, threads, and workers, but *not* under shard count: a sharded
//! scatter does its own per-shard work, so only the matches themselves
//! carry the cross-shard-count guarantee.

use hum_core::batch::BatchOptions;
use hum_core::engine::QueryRequest;
use hum_core::obs::MetricsSink;
use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::system::{QbhConfig, QbhMatch, QbhSystem};
use hum_server::{Client, QueryOptions, Server, ServerConfig, ServiceMatch};

fn database() -> MelodyDatabase {
    MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 12,
        phrases_per_song: 6,
        ..SongbookConfig::default()
    })
}

fn hums(db: &MelodyDatabase, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let target = (i * 17) as u64 % db.len() as u64;
            let mut singer = HummingSimulator::new(SingerProfile::good(), 4400 + i as u64);
            singer.sing_series(db.entry(target).unwrap().melody(), 0.01)
        })
        .collect()
}

fn system_with_shards(db: &MelodyDatabase, shards: usize) -> QbhSystem {
    QbhSystem::build(db, &QbhConfig { shards, ..QbhConfig::default() })
}

fn assert_bit_identical(got: &[QbhMatch], want: &[QbhMatch], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: match counts differ");
    for (g, w) in got.iter().zip(want) {
        assert_eq!((g.id, g.song, g.phrase), (w.id, w.song, w.phrase), "{context}");
        assert_eq!(
            g.distance.to_bits(),
            w.distance.to_bits(),
            "{context}: distance {} vs {} not bit-identical",
            g.distance,
            w.distance
        );
    }
}

#[test]
fn every_shard_count_returns_bit_identical_matches_in_process() {
    let db = database();
    let queries = hums(&db, 5);
    let monolithic = system_with_shards(&db, 1);
    let band = monolithic.band();

    for shards in [2usize, 4, 8] {
        let sharded = system_with_shards(&db, shards);
        assert_eq!(sharded.shard_count(), shards);
        for (i, q) in queries.iter().enumerate() {
            let want = monolithic.query_series(q, 10);
            let got = sharded.query_series(q, 10);
            assert_bit_identical(&got.matches, &want.matches, &format!("knn #{i} x{shards}"));

            let want = monolithic
                .try_query_request(q, QueryRequest::range(6.0).with_band(band))
                .unwrap()
                .0;
            let got = sharded
                .try_query_request(q, QueryRequest::range(6.0).with_band(band))
                .unwrap()
                .0;
            assert_bit_identical(&got.matches, &want.matches, &format!("range #{i} x{shards}"));
        }
    }
}

#[test]
fn batch_queries_are_thread_and_shard_invariant() {
    let db = database();
    let queries = hums(&db, 6);
    let monolithic = system_with_shards(&db, 1);
    let sequential: Vec<_> = queries.iter().map(|q| monolithic.query_series(q, 8)).collect();

    for shards in [1usize, 2, 8] {
        let system = system_with_shards(&db, shards);
        // Stats must be thread-invariant too, so compare whole results
        // across thread counts within one shard count.
        let mut at_one_thread = None;
        for threads in [1usize, 8] {
            let batch =
                system.query_series_batch(&queries, 8, &BatchOptions::new(threads, 1));
            assert_eq!(batch.len(), queries.len());
            for (i, result) in batch.iter().enumerate() {
                assert_bit_identical(
                    &result.matches,
                    &sequential[i].matches,
                    &format!("batch #{i} x{shards} @{threads}t"),
                );
            }
            match &at_one_thread {
                None => at_one_thread = Some(batch),
                Some(reference) => {
                    for (i, (a, b)) in reference.iter().zip(&batch).enumerate() {
                        assert_eq!(
                            a.stats, b.stats,
                            "stats for query #{i} must not depend on threads (x{shards})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn served_sharded_queries_match_in_process_at_any_worker_count() {
    let db = database();
    let queries = hums(&db, 4);
    let monolithic = system_with_shards(&db, 1);
    let band = monolithic.band();
    let expected_matches: Vec<_> = queries
        .iter()
        .map(|q| monolithic.query_series_banded(q, band, 10).matches)
        .collect();

    // In-process sharded expectations pin the full reply — stats included —
    // that the served sharded system must reproduce exactly.
    let sharded = system_with_shards(&db, 4);
    let expected_replies: Vec<_> = queries
        .iter()
        .map(|q| {
            sharded.try_query_request(q, QueryRequest::knn(10).with_band(band)).unwrap().0
        })
        .collect();

    let mut system = Some(sharded);
    for workers in [1usize, 8] {
        let config = ServerConfig { workers, ..ServerConfig::default() };
        let server = Server::start(system.take().unwrap(), "127.0.0.1:0", config)
            .expect("bind ephemeral port");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for (i, q) in queries.iter().enumerate() {
            let reply = client.knn(q, 10, &QueryOptions::default()).expect("knn");
            assert_wire_matches(
                &reply.matches,
                &expected_replies[i].matches,
                &format!("wire knn #{i} at {workers} workers"),
            );
            assert_eq!(
                reply.stats, expected_replies[i].stats,
                "served stats must equal in-process sharded stats (#{i})"
            );
            assert_wire_matches(
                &reply.matches,
                &expected_matches[i],
                &format!("wire knn #{i} vs monolithic"),
            );
        }
        system = Some(server.shutdown().expect("system handed back"));
    }
}

fn assert_wire_matches(wire: &[ServiceMatch], local: &[QbhMatch], context: &str) {
    assert_eq!(wire.len(), local.len(), "{context}: match counts differ");
    for (w, l) in wire.iter().zip(local) {
        assert_eq!((w.id, w.song, w.phrase), (l.id, l.song, l.phrase), "{context}");
        assert_eq!(w.distance.to_bits(), l.distance.to_bits(), "{context}");
    }
}

#[test]
fn storage_round_trip_preserves_results_under_any_shard_override() {
    let db = database();
    let queries = hums(&db, 3);
    let monolithic = system_with_shards(&db, 1);
    let expected: Vec<_> = queries.iter().map(|q| monolithic.query_series(q, 10)).collect();

    let dir = std::env::temp_dir()
        .join(format!("qbh-sharding-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("corpus.humidx");
    let config = QbhConfig { shards: 4, ..QbhConfig::default() };
    hum_qbh::storage::save(&path, &db, &config).expect("save sharded snapshot");

    // None keeps the persisted shard count; Some(n) re-shards on load.
    for (override_, want_shards) in [(None, 4usize), (Some(1), 1), (Some(8), 8)] {
        let loaded =
            QbhSystem::try_load_with_shards(&path, &MetricsSink::Disabled, override_)
                .expect("load");
        assert_eq!(loaded.shard_count(), want_shards, "override {override_:?}");
        for (i, q) in queries.iter().enumerate() {
            let got = loaded.query_series(q, 10);
            assert_bit_identical(
                &got.matches,
                &expected[i].matches,
                &format!("loaded #{i} override {override_:?}"),
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
