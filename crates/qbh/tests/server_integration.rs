//! End-to-end serving tests: a real [`QbhSystem`] behind a TCP server on an
//! ephemeral port.
//!
//! The contract under test, per the serving design:
//! (a) served knn/range results are **bit-identical** to in-process
//!     queries at every worker count,
//! (b) a burst beyond the admission queue yields typed `Overloaded`
//!     rejections — every request gets a typed answer, none vanish,
//! (c) graceful shutdown drains in-flight requests, and the shared obs
//!     registry's totals equal the per-request stats summed client-side,
//! plus live mutation over the wire and deadline behavior.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use hum_core::engine::QueryRequest;
use hum_core::obs::{Metric, MetricsSink};
use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::system::{QbhConfig, QbhMatch, QbhSystem};
use hum_server::{Client, ClientError, QueryOptions, Server, ServerConfig, ServiceMatch};

fn database() -> MelodyDatabase {
    MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 20,
        phrases_per_song: 8,
        ..SongbookConfig::default()
    })
}

fn hums(db: &MelodyDatabase, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let target = (i * 13) as u64 % db.len() as u64;
            let mut singer = HummingSimulator::new(SingerProfile::good(), 900 + i as u64);
            singer.sing_series(db.entry(target).unwrap().melody(), 0.01)
        })
        .collect()
}

fn assert_matches_bit_identical(wire: &[ServiceMatch], local: &[QbhMatch], context: &str) {
    assert_eq!(wire.len(), local.len(), "{context}: match counts differ");
    for (w, l) in wire.iter().zip(local) {
        assert_eq!((w.id, w.song, w.phrase), (l.id, l.song, l.phrase), "{context}");
        assert_eq!(
            w.distance.to_bits(),
            l.distance.to_bits(),
            "{context}: distance {} vs {} not bit-identical",
            w.distance,
            l.distance
        );
    }
}

#[test]
fn served_queries_are_bit_identical_to_in_process_at_1_and_8_workers() {
    let db = database();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let queries = hums(&db, 6);

    // In-process expectations, computed before the server takes ownership.
    // The server defaults omitted bands to the system's configured width,
    // so the local requests pin the same band.
    let band = system.band();
    let expected_knn: Vec<_> = queries
        .iter()
        .map(|q| {
            system.try_query_request(q, QueryRequest::knn(10).with_band(band)).unwrap().0
        })
        .collect();
    let radius = 6.0;
    let expected_range: Vec<_> = queries
        .iter()
        .map(|q| {
            system.try_query_request(q, QueryRequest::range(radius).with_band(band)).unwrap().0
        })
        .collect();

    let mut system = Some(system);
    for workers in [1usize, 8] {
        let config = ServerConfig { workers, ..ServerConfig::default() };
        let server = Server::start(system.take().unwrap(), "127.0.0.1:0", config)
            .expect("bind ephemeral port");
        let mut client = Client::connect(server.local_addr()).unwrap();
        for (i, q) in queries.iter().enumerate() {
            let knn = client.knn(q, 10, &QueryOptions::default()).unwrap();
            assert_matches_bit_identical(
                &knn.matches,
                &expected_knn[i].matches,
                &format!("knn #{i} at {workers} workers"),
            );
            assert_eq!(knn.stats, expected_knn[i].stats, "knn #{i} stats");

            let range = client.range(q, radius, &QueryOptions::default()).unwrap();
            assert_matches_bit_identical(
                &range.matches,
                &expected_range[i].matches,
                &format!("range #{i} at {workers} workers"),
            );
            assert_eq!(range.stats, expected_range[i].stats, "range #{i} stats");
        }
        system = Some(server.shutdown().expect("system handed back"));
    }
}

#[test]
fn burst_beyond_queue_capacity_yields_typed_overload_never_silence() {
    let db = database();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let query = Arc::new(hums(&db, 1).remove(0));

    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        metrics: MetricsSink::enabled(),
        ..ServerConfig::default()
    };
    let server = Server::start(system, "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    // Fire synchronized bursts until the depth-1 queue overflows at least
    // once (with 24 simultaneous clients against one worker this is
    // near-certain on the first round). Every request must come back as a
    // typed response either way — a hang here fails the test by timeout.
    let mut overloaded = 0usize;
    let mut succeeded = 0usize;
    for _round in 0..10 {
        let clients = 24;
        let barrier = Arc::new(Barrier::new(clients));
        let threads: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let query = Arc::clone(&query);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr)?;
                    barrier.wait();
                    client.knn(&query, 5, &QueryOptions::default()).map(|_| ())
                })
            })
            .collect();
        for thread in threads {
            match thread.join().unwrap() {
                Ok(()) => succeeded += 1,
                Err(ClientError::Overloaded(_)) => overloaded += 1,
                Err(other) => panic!("only Ok or Overloaded is acceptable, got {other:?}"),
            }
        }
        if overloaded > 0 {
            break;
        }
    }
    assert!(overloaded > 0, "burst never overflowed the depth-1 queue");
    assert!(succeeded > 0, "some requests must still be served under overload");

    let registry = server.metrics().registry().unwrap().snapshot();
    assert_eq!(
        registry.counter(Metric::ServerRequestsAccepted),
        succeeded as u64,
        "accepted counter must match successful responses"
    );
    assert_eq!(
        registry.counter(Metric::ServerRequestsRejectedOverload),
        overloaded as u64,
        "every rejection must be counted, none dropped silently"
    );
    server.shutdown().expect("system handed back");
}

#[test]
fn shared_registry_totals_equal_summed_per_request_stats_after_shutdown() {
    let db = database();
    let mut system = QbhSystem::build(&db, &QbhConfig::default());
    let metrics = MetricsSink::enabled();
    // One registry sees both sides: the engine records each query's
    // counters, the server records transport counters.
    system.set_metrics(metrics.clone());
    let queries = hums(&db, 5);

    let config =
        ServerConfig { workers: 4, metrics: metrics.clone(), ..ServerConfig::default() };
    let server = Server::start(system, "127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut dp_cells = 0u64;
    let mut exact = 0u64;
    let mut candidates = 0u64;
    for q in &queries {
        let reply = client.knn(q, 7, &QueryOptions { trace: true, ..Default::default() }).unwrap();
        assert!(reply.trace.is_some(), "trace requested over the wire");
        dp_cells += reply.stats.dp_cells;
        exact += reply.stats.exact_computations;
        candidates += reply.stats.index.candidates;
    }
    server.shutdown().expect("drained");

    let snapshot = metrics.registry().unwrap().snapshot();
    assert_eq!(snapshot.counter(Metric::KnnQueries), queries.len() as u64);
    assert_eq!(snapshot.counter(Metric::ServerRequestsAccepted), queries.len() as u64);
    assert_eq!(snapshot.counter(Metric::DpCells), dp_cells);
    assert_eq!(snapshot.counter(Metric::ExactStarted), exact);
    assert_eq!(snapshot.counter(Metric::IndexCandidates), candidates);
}

#[test]
fn live_mutation_over_the_wire_including_duplicates_and_bad_samples() {
    let db = database();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let baseline = db.len() as u64;

    let server =
        Server::start(system, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert_eq!(client.ping().unwrap(), baseline);

    // Insert a distinctive melody far above the songbook register and find
    // it immediately, provenance intact.
    let series: Vec<f64> = (0..64).map(|i| 95.0 + 4.0 * (i as f64 * 0.8).sin()).collect();
    assert_eq!(client.insert(50_000, 77, 2, &series).unwrap(), baseline + 1);
    let reply = client.knn(&series, 1, &QueryOptions::default()).unwrap();
    assert_eq!(reply.matches[0].id, 50_000);
    assert_eq!((reply.matches[0].song, reply.matches[0].phrase), (77, 2));

    // Duplicate id: typed bad_request naming the id, nothing changed.
    match client.insert(50_000, 0, 0, &series) {
        Err(ClientError::BadRequest(message)) => {
            assert!(message.contains("duplicate id 50000"), "{message}")
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
    assert_eq!(client.ping().unwrap(), baseline + 1);

    // Non-finite samples cannot transit JSON (NaN serializes as null), so
    // the wire layer reports the bad element as a typed error.
    let mut poisoned = series.clone();
    poisoned[3] = f64::NAN;
    match client.insert(50_001, 0, 0, &poisoned) {
        Err(ClientError::BadRequest(message)) => {
            assert!(message.contains("pitch[3]"), "{message}")
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }

    assert_eq!(client.remove(50_000).unwrap(), (true, baseline));
    assert_eq!(client.remove(50_000).unwrap(), (false, baseline));
    let after = client.knn(&series, 1, &QueryOptions::default()).unwrap();
    assert!(after.matches[0].id != 50_000, "removed melody must be unfindable");
    server.shutdown().expect("system handed back");
}

#[test]
fn expired_deadline_over_the_wire_is_typed_with_stats_and_no_matches() {
    let db = database();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let query = hums(&db, 1).remove(0);

    let metrics = MetricsSink::enabled();
    let config = ServerConfig { metrics: metrics.clone(), ..ServerConfig::default() };
    let server = Server::start(system, "127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(server.local_addr()).unwrap();

    let options = QueryOptions { deadline_ms: Some(0), ..QueryOptions::default() };
    match client.knn(&query, 5, &options) {
        Err(ClientError::DeadlineExceeded { stats, message }) => {
            let stats = stats.expect("deadline errors carry their partial stats");
            assert_eq!(stats.matches, 0, "partial match sets are never returned");
            assert!(!message.is_empty());
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(
        metrics.registry().unwrap().get(Metric::ServerDeadlineExceeded),
        1,
        "the abort must be counted"
    );

    // The same query with a generous deadline succeeds and is not aborted.
    let generous = QueryOptions { deadline_ms: Some(60_000), ..QueryOptions::default() };
    let reply = client.knn(&query, 5, &generous).unwrap();
    assert_eq!(reply.matches.len(), 5);
    assert_eq!(metrics.registry().unwrap().get(Metric::ServerDeadlineExceeded), 1);
    server.shutdown().expect("system handed back");
}

#[test]
fn server_default_deadline_applies_when_the_request_has_none() {
    let db = database();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let query = hums(&db, 1).remove(0);

    let config = ServerConfig {
        default_deadline: Some(Duration::from_millis(0)),
        ..ServerConfig::default()
    };
    let server = Server::start(system, "127.0.0.1:0", config).expect("bind");
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.knn(&query, 5, &QueryOptions::default()) {
        Err(ClientError::DeadlineExceeded { .. }) => {}
        other => panic!("expected DeadlineExceeded from the default, got {other:?}"),
    }
    // A per-request deadline overrides the server default.
    let generous = QueryOptions { deadline_ms: Some(60_000), ..QueryOptions::default() };
    assert_eq!(client.knn(&query, 5, &generous).unwrap().matches.len(), 5);
    server.shutdown().expect("system handed back");
}
