//! End-to-end tests of the `qbh` command-line binary: generate a MIDI
//! corpus on disk, synthesize a hum to WAV, and query it back — all through
//! the real CLI surface.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn qbh(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qbh")).args(args).output().expect("binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qbh-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn generate_info_hum_query_pipeline() {
    let dir = temp_dir("pipeline");
    let dir_s = dir.to_str().unwrap();

    let generated = qbh(&["generate", dir_s, "--songs", "8", "--seed", "5"]);
    assert!(generated.status.success(), "{generated:?}");
    assert!(stdout(&generated).contains("Wrote 160 melodies"));
    assert_eq!(count_mid_files(&dir), 160);

    let info = qbh(&["info", dir_s]);
    assert!(info.status.success());
    assert!(stdout(&info).contains("160 melodies"));

    let wav = dir.join("hum.wav");
    let hum = qbh(&[
        "hum",
        dir_s,
        "song003_phrase04.mid",
        wav.to_str().unwrap(),
        "--singer",
        "good",
        "--seed",
        "9",
    ]);
    assert!(hum.status.success(), "{hum:?}");
    assert!(wav.exists());

    let query = qbh(&["query", dir_s, wav.to_str().unwrap(), "--top", "3"]);
    assert!(query.status.success(), "{query:?}");
    let out = stdout(&query);
    assert!(
        out.contains("1. song003_phrase04.mid"),
        "hummed melody should rank first:\n{out}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn index_file_query_matches_directory_query() {
    let dir = temp_dir("humidx");
    let dir_s = dir.to_str().unwrap();
    assert!(qbh(&["generate", dir_s, "--songs", "6", "--seed", "11"]).status.success());

    let wav = dir.join("hum.wav");
    assert!(qbh(&["hum", dir_s, "song002_phrase03.mid", wav.to_str().unwrap()])
        .status
        .success());

    let idx = dir.join("corpus.humidx");
    let indexed = qbh(&["index", dir_s, idx.to_str().unwrap()]);
    assert!(indexed.status.success(), "{indexed:?}");
    assert!(stdout(&indexed).contains("Persisted 120 melodies"));

    // The directory query names the file; the humidx query names the dense
    // id (BTreeMap order), which for song002_phrase03 is 2*20 + 3 = 43.
    let by_dir = qbh(&["query", dir_s, wav.to_str().unwrap(), "--top", "1"]);
    assert!(stdout(&by_dir).contains("1. song002_phrase03.mid"), "{}", stdout(&by_dir));
    let by_idx = qbh(&["query", idx.to_str().unwrap(), wav.to_str().unwrap(), "--top", "1"]);
    assert!(stdout(&by_idx).contains("1. melody #43"), "{}", stdout(&by_idx));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = qbh(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("usage"));
}

#[test]
fn query_on_missing_directory_fails_cleanly() {
    let out = qbh(&["query", "/definitely/not/a/dir", "/also/missing.wav"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn hum_of_unknown_melody_fails_cleanly() {
    let dir = temp_dir("unknown-melody");
    let dir_s = dir.to_str().unwrap();
    assert!(qbh(&["generate", dir_s, "--songs", "1"]).status.success());
    let out = qbh(&["hum", dir_s, "nope.mid", "/tmp/never.wav"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no melody named"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_is_a_result_and_goes_to_stdout() {
    let out = qbh(&["--help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("usage:"));
    assert!(stdout(&out).contains("qbh serve"));
    assert!(out.stderr.is_empty(), "help must not print to stderr");
}

#[test]
fn failed_query_leaves_stdout_empty_for_scripted_consumers() {
    let dir = temp_dir("stdout-clean");
    let dir_s = dir.to_str().unwrap();
    assert!(qbh(&["generate", dir_s, "--songs", "1"]).status.success());

    // The corpus loads and progress is reported (stderr) before the missing
    // WAV is discovered — stdout must still be empty on the failing run.
    let out = qbh(&["query", dir_s, "/definitely/not/a/hum.wav"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(out.stdout.is_empty(), "stdout polluted: {}", stdout(&out));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("Indexing"), "progress should be on stderr: {err}");
    assert!(err.contains("cannot read"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_prints_the_bound_address_and_shuts_down_cleanly_over_the_wire() {
    use std::io::{BufRead, BufReader, Read};

    let dir = temp_dir("serve");
    let dir_s = dir.to_str().unwrap();
    assert!(qbh(&["generate", dir_s, "--songs", "2", "--seed", "7"]).status.success());
    let idx = dir.join("corpus.humidx");
    assert!(qbh(&["index", dir_s, idx.to_str().unwrap()]).status.success());

    let mut child = Command::new(env!("CARGO_BIN_EXE_qbh"))
        .args([
            "serve",
            idx.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--shards",
            "2",
            "--allow-remote-shutdown",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");

    // The single stdout line announces the bound (ephemeral) address.
    let mut child_stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    child_stdout.read_line(&mut line).expect("address line");
    let addr = line.strip_prefix("listening on ").expect("address line").trim().to_string();

    let mut client = hum_server::Client::connect(addr.as_str()).expect("connect");
    assert_eq!(client.ping().expect("ping"), 40, "2 songs x 20 phrases");
    let pitch: Vec<f64> = (0..32).map(|i| 60.0 + (i as f64 * 0.4).sin()).collect();
    let reply = client.knn(&pitch, 3, &Default::default()).expect("knn over the wire");
    assert_eq!(reply.matches.len(), 3);
    client.shutdown().expect("shutdown accepted");

    // Graceful exit: status 0, and nothing but the address on stdout.
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "{status:?}");
    let mut rest = String::new();
    child_stdout.read_to_string(&mut rest).expect("drain stdout");
    assert!(rest.is_empty(), "stdout must stay clean after the address: {rest}");
    let mut err = String::new();
    child.stderr.take().unwrap().read_to_string(&mut err).expect("drain stderr");
    assert!(err.contains("draining in-flight requests"), "{err}");
    // Only queue-admitted work ops count; ping and shutdown are answered
    // inline on the connection thread.
    assert!(err.contains("served 1 requests"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_rejects_wire_shutdown_unless_explicitly_allowed() {
    use std::io::{BufRead, BufReader};

    let dir = temp_dir("serve-no-shutdown");
    let dir_s = dir.to_str().unwrap();
    assert!(qbh(&["generate", dir_s, "--songs", "1", "--seed", "3"]).status.success());
    let idx = dir.join("corpus.humidx");
    assert!(qbh(&["index", dir_s, idx.to_str().unwrap()]).status.success());

    // No --allow-remote-shutdown: the wire shutdown op must be refused and
    // the server must keep serving afterwards.
    let mut child = Command::new(env!("CARGO_BIN_EXE_qbh"))
        .args(["serve", idx.to_str().unwrap(), "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve starts");

    let mut child_stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    child_stdout.read_line(&mut line).expect("address line");
    let addr = line.strip_prefix("listening on ").expect("address line").trim().to_string();

    let mut client = hum_server::Client::connect(addr.as_str()).expect("connect");
    match client.shutdown() {
        Err(hum_server::ClientError::BadRequest(message)) => {
            assert!(message.contains("disabled"), "{message}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    assert_eq!(client.ping().expect("still serving"), 20, "1 song x 20 phrases");

    child.kill().expect("stop server");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

fn count_mid_files(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|x| x == "mid")
        })
        .count()
}
