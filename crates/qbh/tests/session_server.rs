//! Streaming-session serving tests: the v2 sessionful protocol end to end.
//!
//! The contract under test, per the streaming design:
//! (a) a `refine` over a session's appended frames is **bit-identical**
//!     to a one-shot `knn` over the same frames — at shard counts 1 and 4,
//!     and at every prefix of the hum, because both paths feed the engine
//!     through the same service call,
//! (b) the lifecycle answers are typed: append/refine after close is a
//!     `BadRequest` naming the closed session, idle-LRU eviction under the
//!     session cap answers `SessionEvicted`, the per-session byte cap
//!     answers `Overloaded` and leaves the session intact,
//! (c) version negotiation via `hello` reports both sides' versions and
//!     the op table; unknown ops and foreign versions are `Unsupported`,
//! (d) deadlines abort a refine exactly like a one-shot query: typed
//!     `DeadlineExceeded` carrying partial stats with zero matches.

use std::time::Duration;

use hum_core::engine::QueryRequest;
use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::system::{QbhConfig, QbhMatch, QbhSystem};
use hum_server::{
    Client, ClientError, QueryOptions, Server, ServerConfig, ServiceMatch, ServiceQuery,
    PROTOCOL_VERSION,
};

fn database() -> MelodyDatabase {
    MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 20,
        phrases_per_song: 8,
        ..SongbookConfig::default()
    })
}

fn hum(db: &MelodyDatabase, target: u64, seed: u64) -> Vec<f64> {
    let mut singer = HummingSimulator::new(SingerProfile::good(), seed);
    singer.sing_series(db.entry(target).unwrap().melody(), 0.01)
}

fn assert_matches_bit_identical(wire: &[ServiceMatch], local: &[QbhMatch], context: &str) {
    assert_eq!(wire.len(), local.len(), "{context}: match counts differ");
    for (w, l) in wire.iter().zip(local) {
        assert_eq!((w.id, w.song, w.phrase), (l.id, l.song, l.phrase), "{context}");
        assert_eq!(
            w.distance.to_bits(),
            l.distance.to_bits(),
            "{context}: distance {} vs {} not bit-identical",
            w.distance,
            l.distance
        );
    }
}

fn connect(server: &Server<QbhSystem>) -> Client {
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    client
}

/// (a): streamed refinement == one-shot knn at every chunk boundary, and
/// the equivalence holds per shard count so scatter-gather serving cannot
/// drift from monolithic serving under streaming either.
#[test]
fn streamed_refinement_is_bit_identical_to_one_shot_at_shards_1_and_4() {
    let db = database();
    let frames = hum(&db, 7, 901);
    let chunk = frames.len().div_ceil(5).max(1);

    for shards in [1usize, 4] {
        let system =
            QbhSystem::build(&db, &QbhConfig { shards, ..QbhConfig::default() });
        let band = system.band();

        // In-process expectations for every prefix, computed before the
        // server takes ownership of the system.
        let prefixes: Vec<&[f64]> =
            (chunk..=frames.len()).step_by(chunk).map(|end| &frames[..end]).collect();
        let expected: Vec<Vec<QbhMatch>> = prefixes
            .iter()
            .map(|prefix| {
                system
                    .try_query_request(prefix, QueryRequest::knn(10).with_band(band))
                    .expect("local query")
                    .0
                    .matches
            })
            .collect();

        let server = Server::start(system, "127.0.0.1:0", ServerConfig::default())
            .expect("bind");
        let mut client = connect(&server);
        let session = client
            .open_session(ServiceQuery::Knn { k: 10 }, &QueryOptions::default())
            .expect("open");

        let mut sent = 0usize;
        for (prefix, local) in prefixes.iter().zip(&expected) {
            let total =
                client.append_frames(session, &prefix[sent..]).expect("append");
            sent = prefix.len();
            assert_eq!(total as usize, sent, "server agrees on the frame count");

            let refined = client.refine(session, None).expect("refine");
            assert_eq!(refined.frames as usize, sent);
            assert_matches_bit_identical(
                &refined.reply.matches,
                local,
                &format!("shards={shards} prefix={sent}"),
            );

            // The streamed prefix must also match a one-shot knn over the
            // exact same frames on the same connection — the wire-level
            // statement that there is only one query path.
            let one_shot =
                client.knn(prefix, 10, &QueryOptions::default()).expect("one-shot");
            assert_matches_bit_identical(
                &one_shot.matches,
                local,
                &format!("shards={shards} one-shot prefix={sent}"),
            );
        }

        assert_eq!(client.close_session(session).expect("close") as usize, sent);
        drop(client);
        server.shutdown().expect("system handed back");
    }
}

/// (c): hello reports the negotiated version (min of both sides), the
/// server's own version, and an op table that names the session ops.
#[test]
fn hello_negotiates_versions_and_advertises_session_ops() {
    let db = database();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let server =
        Server::start(system, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = connect(&server);

    let hello = client.hello(PROTOCOL_VERSION).expect("hello");
    assert_eq!(hello.version, PROTOCOL_VERSION, "same versions negotiate to themselves");
    assert_eq!(hello.server_version, PROTOCOL_VERSION);
    for op in ["hello", "knn", "open_session", "append_frames", "refine", "close_session"] {
        assert!(hello.ops.iter().any(|o| o == op), "op table missing {op}: {:?}", hello.ops);
    }

    // A v1 client negotiates down; a far-future client negotiates to the
    // server's ceiling — the server never claims a version it can't speak.
    let old = client.hello(1).expect("v1 hello");
    assert_eq!((old.version, old.server_version), (1, PROTOCOL_VERSION));
    let future = client.hello(999).expect("future hello");
    assert_eq!((future.version, future.server_version), (PROTOCOL_VERSION, PROTOCOL_VERSION));

    server.shutdown().expect("system handed back");
}

/// (c): ops the server does not speak and versions it does not speak are
/// `Unsupported` — a distinct kind from `BadRequest`, so clients can fall
/// back instead of "fixing" a request that was never wrong.
#[test]
fn unknown_ops_and_foreign_versions_are_unsupported_over_the_wire() {
    let db = database();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let server =
        Server::start(system, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = connect(&server);

    match client.send_raw_frame(br#"{"op":"transcribe"}"#) {
        Err(ClientError::Unsupported(message)) => {
            assert!(message.contains("transcribe"), "{message}")
        }
        other => panic!("unknown op: want Unsupported, got {other:?}"),
    }
    match client.send_raw_frame(br#"{"op":"ping","v":99}"#) {
        Err(ClientError::Unsupported(message)) => {
            assert!(message.contains("99"), "{message}")
        }
        other => panic!("v:99: want Unsupported, got {other:?}"),
    }

    // The connection survives both rejections.
    assert_eq!(client.ping().expect("still serving"), db.len() as u64);
    server.shutdown().expect("system handed back");
}

/// (b): the lifecycle matrix — refine-on-empty, append/refine/close after
/// close, and plain unknown ids all get typed `BadRequest` answers that
/// say what happened, on a connection that keeps serving.
#[test]
fn lifecycle_violations_are_typed_and_the_connection_survives() {
    let db = database();
    let frames = hum(&db, 3, 902);
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let server =
        Server::start(system, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = connect(&server);

    let session = client
        .open_session(ServiceQuery::Knn { k: 5 }, &QueryOptions::default())
        .expect("open");

    // Refining before any frames have arrived is an empty query.
    match client.refine(session, None) {
        Err(ClientError::BadRequest(message)) => {
            assert!(message.contains("empty"), "{message}")
        }
        other => panic!("refine-on-empty: want BadRequest, got {other:?}"),
    }

    // The session is unharmed: frames land and refine works.
    client.append_frames(session, &frames).expect("append after empty refine");
    let refined = client.refine(session, None).expect("refine");
    assert_eq!(refined.reply.matches.len(), 5);

    // After close, every session op is a BadRequest naming the closure —
    // not eviction, not an unknown id.
    assert_eq!(client.close_session(session).expect("close"), frames.len() as u64);
    for (what, result) in [
        ("append", client.append_frames(session, &frames).map(|_| ())),
        ("refine", client.refine(session, None).map(|_| ())),
        ("close", client.close_session(session).map(|_| ())),
    ] {
        match result {
            Err(ClientError::BadRequest(message)) => {
                assert!(message.contains("closed"), "{what} after close: {message}")
            }
            other => panic!("{what} after close: want BadRequest, got {other:?}"),
        }
    }

    // A session id never handed out is "unknown", not "closed".
    match client.refine(session + 1000, None) {
        Err(ClientError::BadRequest(message)) => {
            assert!(message.contains("unknown"), "{message}")
        }
        other => panic!("unknown id: want BadRequest, got {other:?}"),
    }

    assert_eq!(client.ping().expect("still serving"), db.len() as u64);
    server.shutdown().expect("system handed back");
}

/// (b): at the session cap an idle session is evicted LRU-first and later
/// answers `SessionEvicted`. A zero idle timeout makes every session
/// instantly evictable, so the policy is exercised without wall-clock
/// sleeps.
#[test]
fn session_cap_evicts_the_lru_idle_session_with_a_typed_answer() {
    let db = database();
    let frames = hum(&db, 5, 903);
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let config = ServerConfig {
        max_sessions: 2,
        session_idle_timeout: Duration::ZERO,
        ..ServerConfig::default()
    };
    let server = Server::start(system, "127.0.0.1:0", config).expect("bind");
    let mut client = connect(&server);
    let options = QueryOptions::default();

    let first = client.open_session(ServiceQuery::Knn { k: 3 }, &options).expect("open 1");
    let second = client.open_session(ServiceQuery::Knn { k: 3 }, &options).expect("open 2");
    client.append_frames(second, &frames).expect("append 2");

    // Opening a third evicts the least recently used session — `first`,
    // because `second` was touched later by its append — which answers
    // SessionEvicted (not "unknown") from then on.
    let third = client.open_session(ServiceQuery::Knn { k: 3 }, &options).expect("open 3");
    match client.append_frames(first, &frames) {
        Err(ClientError::SessionEvicted(message)) => {
            assert!(message.contains("evicted"), "{message}")
        }
        other => panic!("evicted session: want SessionEvicted, got {other:?}"),
    }

    // The survivors are untouched and fully usable.
    client.append_frames(second, &frames).expect("survivor 2 still works");
    client.append_frames(third, &frames).expect("survivor 3 still works");
    assert_eq!(client.refine(third, None).expect("refine").reply.matches.len(), 3);

    server.shutdown().expect("system handed back");
}

/// (b): at the session cap with nothing idled past the timeout, the open
/// itself is refused with a typed `Overloaded` — existing sessions are
/// never sacrificed for a newcomer.
#[test]
fn session_cap_with_busy_sessions_refuses_opens_as_overloaded() {
    let db = database();
    let frames = hum(&db, 9, 907);
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let config = ServerConfig {
        max_sessions: 2,
        session_idle_timeout: Duration::from_secs(3600),
        ..ServerConfig::default()
    };
    let server = Server::start(system, "127.0.0.1:0", config).expect("bind");
    let mut client = connect(&server);
    let options = QueryOptions::default();

    let first = client.open_session(ServiceQuery::Knn { k: 3 }, &options).expect("open 1");
    let second = client.open_session(ServiceQuery::Knn { k: 3 }, &options).expect("open 2");
    match client.open_session(ServiceQuery::Knn { k: 3 }, &options) {
        Err(ClientError::Overloaded(message)) => {
            assert!(message.contains("session cap"), "{message}")
        }
        other => panic!("cap with busy sessions: want Overloaded, got {other:?}"),
    }

    // Both live sessions kept working through the refusal, and closing
    // one frees a slot for the next open.
    client.append_frames(first, &frames).expect("survivor 1 still works");
    client.append_frames(second, &frames).expect("survivor 2 still works");
    client.close_session(first).expect("close");
    let reopened = client.open_session(ServiceQuery::Knn { k: 3 }, &options).expect("open");
    client.append_frames(reopened, &frames).expect("fresh session works");
    assert_eq!(client.refine(reopened, None).expect("refine").reply.matches.len(), 3);

    server.shutdown().expect("system handed back");
}

/// (b): an append that would blow the per-session byte cap is refused
/// whole — typed `Overloaded`, nothing from the batch lands, and the
/// session keeps accepting batches that fit.
#[test]
fn per_session_byte_cap_refuses_whole_batches_and_keeps_the_session() {
    let db = database();
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let config = ServerConfig {
        // 32 frames of 8 bytes each.
        max_session_bytes: 256,
        ..ServerConfig::default()
    };
    let server = Server::start(system, "127.0.0.1:0", config).expect("bind");
    let mut client = connect(&server);

    let session = client
        .open_session(ServiceQuery::Knn { k: 2 }, &QueryOptions::default())
        .expect("open");
    let total = client.append_frames(session, &[60.0; 24]).expect("fits");
    assert_eq!(total, 24);

    match client.append_frames(session, &[61.0; 16]) {
        Err(ClientError::Overloaded(message)) => {
            assert!(message.contains("bytes"), "{message}")
        }
        other => panic!("byte cap: want Overloaded, got {other:?}"),
    }

    // Nothing from the refused batch landed, and a fitting batch still does.
    let total = client.append_frames(session, &[62.0; 8]).expect("still fits");
    assert_eq!(total, 32, "the refused batch left no partial frames behind");
    assert_eq!(client.close_session(session).expect("close"), 32);

    server.shutdown().expect("system handed back");
}

/// (d): a refine under an already-expired deadline aborts exactly like a
/// one-shot query — typed `DeadlineExceeded` with partial stats and zero
/// matches — and the session survives to refine successfully afterwards.
#[test]
fn deadline_mid_refine_returns_partial_stats_and_the_session_survives() {
    let db = database();
    let frames = hum(&db, 11, 904);
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let server =
        Server::start(system, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = connect(&server);

    let session = client
        .open_session(ServiceQuery::Knn { k: 5 }, &QueryOptions::default())
        .expect("open");
    client.append_frames(session, &frames).expect("append");

    match client.refine(session, Some(0)) {
        Err(ClientError::DeadlineExceeded { stats, .. }) => {
            let stats = stats.expect("partial stats attached");
            assert_eq!(stats.matches, 0, "an aborted refine reports no matches");
        }
        other => panic!("deadline 0: want DeadlineExceeded, got {other:?}"),
    }

    let refined = client.refine(session, None).expect("refine after abort");
    assert_eq!(refined.reply.matches.len(), 5);
    assert_eq!(refined.frames, frames.len() as u64);

    server.shutdown().expect("system handed back");
}

/// (a)+(b): two sessions interleaved on one connection stay independent —
/// each refines to exactly what a one-shot over its own frames returns,
/// never its neighbor's.
#[test]
fn interleaved_sessions_on_one_connection_do_not_cross_contaminate() {
    let db = database();
    let hum_a = hum(&db, 2, 905);
    let hum_b = hum(&db, 17, 906);
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let band = system.band();
    let expected_a = system
        .try_query_request(&hum_a, QueryRequest::knn(4).with_band(band))
        .expect("local a")
        .0
        .matches;
    let expected_b = system
        .try_query_request(&hum_b, QueryRequest::knn(4).with_band(band))
        .expect("local b")
        .0
        .matches;

    let server =
        Server::start(system, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut client = connect(&server);
    let options = QueryOptions::default();

    let a = client.open_session(ServiceQuery::Knn { k: 4 }, &options).expect("open a");
    let b = client.open_session(ServiceQuery::Knn { k: 4 }, &options).expect("open b");
    assert_ne!(a, b, "session ids are distinct");

    // Alternate append batches between the two sessions.
    let half_a = hum_a.len() / 2;
    let half_b = hum_b.len() / 2;
    client.append_frames(a, &hum_a[..half_a]).expect("a first half");
    client.append_frames(b, &hum_b[..half_b]).expect("b first half");
    client.append_frames(a, &hum_a[half_a..]).expect("a second half");
    client.append_frames(b, &hum_b[half_b..]).expect("b second half");

    let refined_a = client.refine(a, None).expect("refine a");
    let refined_b = client.refine(b, None).expect("refine b");
    assert_eq!(refined_a.frames, hum_a.len() as u64);
    assert_eq!(refined_b.frames, hum_b.len() as u64);
    assert_matches_bit_identical(&refined_a.reply.matches, &expected_a, "session a");
    assert_matches_bit_identical(&refined_b.reply.matches, &expected_b, "session b");

    client.close_session(a).expect("close a");
    client.close_session(b).expect("close b");
    server.shutdown().expect("system handed back");
}
