//! Wire-protocol hardening: feed the server malformed bytes — truncations,
//! bit flips, lying length prefixes, garbage JSON — and require a typed
//! protocol error or a clean close every time. The server must never panic,
//! never over-allocate from an untrusted prefix, and must keep serving
//! well-formed requests afterwards.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hum_music::SongbookConfig;
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::fault::flip_bit;
use hum_qbh::system::{QbhConfig, QbhSystem};
use hum_server::{Client, ClientError, Server, ServerConfig};

fn start_server() -> (Server<QbhSystem>, u64) {
    let db = MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 3,
        phrases_per_song: 2,
        min_notes: 4,
        max_notes: 7,
        ..SongbookConfig::default()
    });
    let len = db.len() as u64;
    let system = QbhSystem::build(&db, &QbhConfig::default());
    let server =
        Server::start(system, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    (server, len)
}

fn connect(addr: SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    client
}

/// The server is alive iff a fresh connection still answers a good request.
fn assert_still_serving(addr: SocketAddr, len: u64, context: &str) {
    let mut client = connect(addr);
    assert_eq!(client.ping().unwrap_or_else(|e| panic!("{context}: {e}")), len, "{context}");
}

/// One canonical, well-formed knn frame: header + compact JSON payload.
fn canonical_frame() -> Vec<u8> {
    let payload: &[u8] = br#"{"op":"knn","pitch":[60.0,62.5,64.0,62.5],"k":1}"#;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Writes raw bytes, half-closes, and drains whatever the server answers.
/// A clean close — including a TCP reset when the server hangs up with
/// unread bytes still in flight — is acceptable; the only failure mode is
/// a hang (read timeout), which is exactly what this suite exists to catch.
fn slam_bytes(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    if stream.write_all(bytes).is_err() {
        // The server already rejected and closed; nothing left to drain.
        return Vec::new();
    }
    let _ = stream.shutdown(Shutdown::Write);
    let mut drained = Vec::new();
    let mut buf = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return drained,
            Ok(n) => drained.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => return drained,
            Err(e) => panic!("server stopped responding mid-drain: {e}"),
        }
        assert!(Instant::now() < deadline, "drain did not finish: server hung");
    }
}

#[test]
fn garbage_json_and_wrong_shapes_get_typed_errors_on_a_live_connection() {
    let (server, len) = start_server();
    let mut client = connect(server.local_addr());

    // Each malformed payload below is framed correctly, so the connection
    // must survive: typed error back, next request still answered.
    let cases: &[(&[u8], &str)] = &[
        (b"not json at all", "protocol"),
        (b"", "protocol"),
        (b"{\"op\":\"knn\"", "protocol"),
        (b"\xff\xfe\x00garbage", "protocol"),
        (b"{\"op\":\"warp\"}", "unsupported"),
        (b"{\"op\":\"knn\",\"pitch\":\"sixty\",\"k\":3}", "bad_request"),
        (b"{\"op\":\"knn\",\"pitch\":[60.0],\"k\":-2}", "bad_request"),
        (b"{\"op\":\"knn\",\"pitch\":[60.0,null],\"k\":1}", "bad_request"),
        (b"{\"op\":\"insert\",\"id\":1,\"song\":0,\"phrase\":0}", "bad_request"),
        (b"[1,2,3]", "bad_request"),
        (b"42", "bad_request"),
    ];
    for (payload, expect) in cases {
        match client.send_raw_frame(payload) {
            Err(ClientError::Protocol(_)) => {
                assert_eq!(*expect, "protocol", "payload {payload:?}")
            }
            Err(ClientError::BadRequest(_)) => {
                assert_eq!(*expect, "bad_request", "payload {payload:?}")
            }
            Err(ClientError::Unsupported(_)) => {
                assert_eq!(*expect, "unsupported", "payload {payload:?}")
            }
            other => panic!("payload {payload:?}: want a typed error, got {other:?}"),
        }
        assert_eq!(client.ping().expect("connection survives"), len);
    }

    // A parser bomb (deep nesting) must hit the depth limit, not the stack.
    let mut bomb = Vec::new();
    bomb.extend(std::iter::repeat_n(b'[', 4096));
    bomb.extend(std::iter::repeat_n(b']', 4096));
    match client.send_raw_frame(&bomb) {
        Err(ClientError::Protocol(message)) => {
            assert!(message.contains("invalid JSON"), "{message}")
        }
        other => panic!("nesting bomb: want protocol error, got {other:?}"),
    }
    assert_eq!(client.ping().expect("connection survives the bomb"), len);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn resource_exhaustion_shapes_are_rejected_at_the_wire_boundary() {
    let (server, len) = start_server();
    let mut client = connect(server.local_addr());

    // `k` sizes result heaps and index walks downstream, so absurd values
    // must die at the parse boundary as typed errors — never reach the
    // engine, never allocate proportionally, never panic.
    match client.send_raw_frame(br#"{"op":"knn","pitch":[60.0],"k":1000000000000000}"#) {
        Err(ClientError::BadRequest(message)) => {
            assert!(message.contains("ceiling"), "{message}")
        }
        other => panic!("k=10^15: want bad_request naming the ceiling, got {other:?}"),
    }
    // u64::MAX is not exactly representable as f64, so the number layer
    // itself refuses it before the ceiling check can even run.
    match client.send_raw_frame(br#"{"op":"knn","pitch":[60.0],"k":18446744073709551615}"#) {
        Err(ClientError::BadRequest(message)) => {
            assert!(message.contains("'k'"), "{message}")
        }
        other => panic!("k=u64::MAX: want bad_request naming k, got {other:?}"),
    }
    // A negative radius is meaningless; typed rejection, not an engine trip.
    match client.send_raw_frame(br#"{"op":"range","pitch":[60.0],"radius":-1.0}"#) {
        Err(ClientError::BadRequest(message)) => {
            assert!(message.contains("radius"), "{message}")
        }
        other => panic!("radius=-1: want bad_request naming radius, got {other:?}"),
    }
    // A radius literal overflowing f64 never reaches request parsing: the
    // finite-only JSON layer rejects it as a protocol error.
    match client.send_raw_frame(br#"{"op":"range","pitch":[60.0],"radius":1e309}"#) {
        Err(ClientError::Protocol(message)) => {
            assert!(message.contains("invalid JSON"), "{message}")
        }
        other => panic!("radius=1e309: want protocol error, got {other:?}"),
    }
    // Remote shutdown is opt-in; the default config refuses the op and the
    // connection (and server) keep working.
    match client.send_raw_frame(br#"{"op":"shutdown"}"#) {
        Err(ClientError::BadRequest(message)) => {
            assert!(message.contains("disabled"), "{message}")
        }
        other => panic!("wire shutdown: want bad_request, got {other:?}"),
    }

    // The ceiling itself is serveable: a maximal-k request is clamped to
    // the corpus size internally and answers normally.
    let reply = client
        .knn(&[60.0, 62.5, 64.0], hum_server::MAX_WIRE_K as usize, &Default::default())
        .expect("k at the ceiling is legal");
    assert_eq!(reply.matches.len() as u64, len, "clamped to the whole corpus");

    assert_eq!(client.ping().expect("connection survives all of it"), len);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn lying_and_oversized_length_prefixes_are_rejected_without_allocation() {
    let (server, len) = start_server();
    let addr = server.local_addr();

    // A prefix claiming 2 GiB: the server must answer with a typed
    // protocol error naming the limit (proof it rejected the *prefix*
    // rather than trying to honor it) and close.
    let mut client = connect(addr);
    let mut huge = Vec::from(0x7FFF_FFFFu32.to_be_bytes());
    huge.extend_from_slice(b"ignored");
    match client.send_raw_bytes(&huge) {
        Err(ClientError::Protocol(message)) => {
            assert!(message.contains("exceeds maximum"), "{message}")
        }
        other => panic!("oversized prefix: want protocol error, got {other:?}"),
    }

    // Maximum u32 and exactly-one-over-the-limit prefixes, same story.
    for bad_len in [u32::MAX, (hum_server::MAX_FRAME_BYTES as u32) + 1] {
        let mut client = connect(addr);
        match client.send_raw_bytes(&bad_len.to_be_bytes()) {
            Err(ClientError::Protocol(message)) => {
                assert!(message.contains("exceeds maximum"), "{message}")
            }
            other => panic!("prefix {bad_len}: want protocol error, got {other:?}"),
        }
    }

    // A truncated frame (prefix promises 100 bytes, connection ends after
    // 10) gets a typed `truncated frame` error before the close.
    let mut truncated = Vec::from(100u32.to_be_bytes());
    truncated.extend_from_slice(b"0123456789");
    let drained = slam_bytes(addr, &truncated);
    let text = String::from_utf8_lossy(&drained);
    assert!(text.contains("truncated frame"), "got: {text}");

    // A bare, truncated header (2 of 4 length bytes) is also truncation.
    let drained = slam_bytes(addr, &[0x00, 0x00]);
    let text = String::from_utf8_lossy(&drained);
    assert!(text.contains("truncated frame"), "got: {text}");

    assert_still_serving(addr, len, "after prefix abuse");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn every_single_bit_flip_of_a_valid_frame_is_survivable() {
    let (server, len) = start_server();
    let addr = server.local_addr();
    let frame = canonical_frame();

    // Exhaustive single-bit corruption of header and payload. Depending on
    // where the flip lands the server may answer normally (the JSON is
    // still valid), answer a typed error, or see a short/oversized frame
    // and close — but it must never panic, hang, or stop serving.
    for index in 0..frame.len() {
        for bit in 0..8u8 {
            let mut corrupted = frame.clone();
            flip_bit(&mut corrupted, index, bit);
            slam_bytes(addr, &corrupted);
        }
    }

    assert_still_serving(addr, len, "after exhaustive bit flips");
    let mut client = connect(addr);
    let reply = client
        .knn(&[60.0, 62.5, 64.0, 62.5], 1, &Default::default())
        .expect("good requests still work");
    assert_eq!(reply.matches.len(), 1);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn sessionful_ops_out_of_order_duplicated_or_post_close_get_typed_errors() {
    use hum_server::{QueryOptions, ServiceQuery};

    let (server, len) = start_server();
    let mut client = connect(server.local_addr());
    let options = QueryOptions::default();
    let frames = [60.0, 62.5, 64.0, 62.5];

    // Out-of-order: session ops against ids never handed out. Typed
    // BadRequest, connection survives.
    let orphans: &[&[u8]] = &[
        br#"{"op":"refine","session":424242}"#,
        br#"{"op":"append_frames","session":424242,"frames":[60.0]}"#,
        br#"{"op":"close_session","session":424242}"#,
    ];
    for payload in orphans {
        match client.send_raw_frame(payload) {
            Err(ClientError::BadRequest(message)) => {
                assert!(message.contains("unknown"), "{message}")
            }
            other => panic!("orphan op {payload:?}: want BadRequest, got {other:?}"),
        }
        assert_eq!(client.ping().expect("connection survives"), len);
    }

    // A session op pinned to a version this server does not speak is
    // Unsupported — the client should renegotiate, not retry.
    match client.send_raw_frame(br#"{"op":"refine","session":1,"v":3}"#) {
        Err(ClientError::Unsupported(message)) => assert!(message.contains("3"), "{message}"),
        other => panic!("v:3 refine: want Unsupported, got {other:?}"),
    }

    // Duplicate appends are legal (the stream really can repeat values);
    // duplicate closes are not.
    let session = client.open_session(ServiceQuery::Knn { k: 1 }, &options).expect("open");
    assert_eq!(client.append_frames(session, &frames).expect("append"), 4);
    assert_eq!(client.append_frames(session, &frames).expect("append again"), 8);
    assert_eq!(client.close_session(session).expect("close"), 8);
    for (what, result) in [
        ("double close", client.close_session(session).map(|_| ())),
        ("post-close append", client.append_frames(session, &frames).map(|_| ())),
        ("post-close refine", client.refine(session, None).map(|_| ())),
    ] {
        match result {
            Err(ClientError::BadRequest(message)) => {
                assert!(message.contains("closed"), "{what}: {message}")
            }
            other => panic!("{what}: want BadRequest, got {other:?}"),
        }
    }

    // A protocol-level garbage frame mid-session must not damage the
    // session: the buffered frames refine afterwards as if nothing
    // happened, interleaved across two independent sessions.
    let a = client.open_session(ServiceQuery::Knn { k: 1 }, &options).expect("open a");
    let b = client.open_session(ServiceQuery::Knn { k: 1 }, &options).expect("open b");
    client.append_frames(a, &frames).expect("append a");
    match client.send_raw_frame(b"garbage between appends") {
        Err(ClientError::Protocol(_)) => {}
        other => panic!("garbage mid-session: want protocol error, got {other:?}"),
    }
    client.append_frames(b, &frames).expect("append b");
    assert_eq!(client.refine(a, None).expect("refine a").frames, 4);
    assert_eq!(client.refine(b, None).expect("refine b").frames, 4);
    assert_eq!(client.close_session(b).expect("close b"), 4);
    assert_eq!(client.close_session(a).expect("close a"), 4);

    assert_eq!(client.ping().expect("connection survives all of it"), len);
    server.shutdown().expect("clean shutdown");
}

#[test]
fn every_single_bit_flip_of_session_frames_is_survivable() {
    let (server, len) = start_server();
    let addr = server.local_addr();

    // Canonical session ops, including the pinned "v":2. Depending on the
    // flip the server may open a real session (eventually tripping the
    // session cap — a typed overloaded, also survivable), answer a typed
    // error, or close on a mangled frame; never panic, hang, or stop.
    let payloads: &[&[u8]] = &[
        br#"{"op":"open_session","mode":"knn","k":1,"v":2}"#,
        br#"{"op":"append_frames","session":1,"frames":[60.0,62.5],"v":2}"#,
        br#"{"op":"refine","session":1,"v":2}"#,
        br#"{"op":"close_session","session":1,"v":2}"#,
    ];
    for payload in payloads {
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload);
        for index in 0..frame.len() {
            for bit in 0..8u8 {
                let mut corrupted = frame.clone();
                flip_bit(&mut corrupted, index, bit);
                slam_bytes(addr, &corrupted);
            }
        }
        // Truncation sweep for the same frame: every cut point must end
        // in a typed `truncated frame` answer or a clean close.
        for end in 1..frame.len() {
            slam_bytes(addr, &frame[..end]);
        }
    }

    assert_still_serving(addr, len, "after session-frame corruption");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn random_garbage_streams_never_take_the_server_down() {
    let (server, len) = start_server();
    let addr = server.local_addr();

    // A deterministic xorshift keeps the garbage reproducible.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..64 {
        let size = 1 + (next() as usize % 256);
        let mut bytes = Vec::with_capacity(size);
        for _ in 0..size {
            bytes.push(next() as u8);
        }
        // Keep random "lengths" below the frame cap so the server commits
        // to reading a payload and then hits EOF — the nastier path.
        if round % 2 == 0 && bytes.len() >= 4 {
            bytes[0] = 0;
            bytes[1] &= 0x0F;
        }
        slam_bytes(addr, &bytes);
    }

    assert_still_serving(addr, len, "after garbage streams");
    server.shutdown().expect("clean shutdown");
}
