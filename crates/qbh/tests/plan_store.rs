//! The transform plan across the persistence boundary: a store or snapshot
//! created with `TransformChoice::Auto` must reopen with the identical
//! persisted plan (never silently re-planning), answer bit-identically to a
//! rebuild that pins the planned transform as `Fixed`, and turn any
//! corruption of the persisted plan into a typed [`StorageError`] — never a
//! panic, never a quietly different plan.

use std::path::{Path, PathBuf};

use hum_core::obs::{Metric, MetricsSink};
use hum_core::plan::{PlanFamily, PlannerOptions, TransformPlan};
use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};
use hum_qbh::corpus::MelodyDatabase;
use hum_qbh::fault::flip_bit;
use hum_qbh::storage::{self, StorageError};
use hum_qbh::store::manifest_path;
use hum_qbh::system::{QbhConfig, QbhSystem, StoreOptions, TransformChoice, TransformKind};

fn database() -> MelodyDatabase {
    MelodyDatabase::from_songbook(&SongbookConfig {
        songs: 8,
        phrases_per_song: 5,
        ..SongbookConfig::default()
    })
}

fn hums(db: &MelodyDatabase, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let target = (i * 11) as u64 % db.len() as u64;
            let mut singer = HummingSimulator::new(SingerProfile::good(), 900 + i as u64);
            singer.sing_series(db.entry(target).unwrap().melody(), 0.01)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qbh-plan-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn auto_config() -> QbhConfig {
    QbhConfig {
        transform: TransformChoice::Auto(PlannerOptions::default()),
        ..QbhConfig::default()
    }
}

fn sample_series(db: &MelodyDatabase, config: &QbhConfig) -> Vec<Vec<f64>> {
    db.entries()
        .iter()
        .map(|e| e.melody().to_time_series(config.samples_per_beat))
        .collect()
}

fn kind_of(family: PlanFamily) -> TransformKind {
    match family {
        PlanFamily::NewPaa => TransformKind::NewPaa,
        PlanFamily::KeoghPaa => TransformKind::KeoghPaa,
        PlanFamily::Dft => TransformKind::Dft,
        PlanFamily::Dwt => TransformKind::Dwt,
    }
}

/// Ingests the whole database into a freshly planned store at `dir`.
fn build_auto_store(db: &MelodyDatabase, dir: &Path, memtable: usize) -> QbhSystem {
    let config = auto_config();
    let sample = sample_series(db, &config);
    let options = StoreOptions { memtable_capacity: memtable, ..StoreOptions::default() };
    let mut system = QbhSystem::try_create_store_planned(
        dir,
        &config,
        options,
        &sample,
        &MetricsSink::Disabled,
    )
    .unwrap();
    for entry in db.entries() {
        let series = entry.melody().to_time_series(config.samples_per_beat);
        system.try_insert_melody(entry.id(), entry.song(), entry.phrase(), &series).unwrap();
        if system.needs_flush() {
            system.flush().unwrap();
        }
    }
    system.flush().unwrap();
    system
}

#[test]
fn auto_store_reopens_with_the_identical_plan_and_never_replans() {
    let db = database();
    let dir = temp_dir("reopen");
    let system = build_auto_store(&db, &dir, 7);
    let created_plan: TransformPlan = system.plan().expect("auto store carries a plan").clone();
    let resolved = *system.config();
    assert_eq!(
        resolved.transform,
        TransformChoice::Fixed(kind_of(created_plan.family)),
        "persisted config must be the resolved Fixed choice"
    );
    assert_eq!(resolved.feature_dims, created_plan.dims);
    drop(system);

    // The manifest of a planned store is the versioned HUMMAN02 form.
    let manifest = std::fs::read(manifest_path(&dir)).unwrap();
    assert_eq!(&manifest[..8], b"HUMMAN02");

    let metrics = MetricsSink::enabled();
    let reopened =
        QbhSystem::try_open_store_with(&dir, StoreOptions::default(), &metrics).unwrap();
    assert_eq!(reopened.plan(), Some(&created_plan), "reopen must surface the persisted plan");
    assert_eq!(*reopened.config(), resolved);
    let registry = metrics.registry().unwrap();
    assert_eq!(
        registry.get(Metric::PlannerRuns),
        0,
        "reopening a planned store must never re-plan"
    );

    let stats = reopened.store_stats().unwrap();
    assert_eq!(stats.plan_family, Some(created_plan.family));
    assert_eq!(stats.plan_dims, created_plan.dims);
    assert_eq!(
        stats.plan_tightness_ppm,
        (created_plan.mean_tightness.clamp(0.0, 1.0) * 1e6).round() as u64
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auto_store_answers_bit_identically_to_a_fixed_rebuild() {
    let db = database();
    let queries = hums(&db, 4);
    let auto_dir = temp_dir("auto-vs-fixed-a");
    let auto = build_auto_store(&db, &auto_dir, 9);
    let resolved = *auto.config();
    assert!(resolved.fixed_transform().is_some());

    // Same corpus, same ingest schedule, but the planner's output pinned
    // up front as a Fixed configuration: an operator replaying the plan.
    let fixed_dir = temp_dir("auto-vs-fixed-f");
    let options = StoreOptions { memtable_capacity: 9, ..StoreOptions::default() };
    let mut fixed = QbhSystem::try_create_store(&fixed_dir, &resolved, options).unwrap();
    for entry in db.entries() {
        let series = entry.melody().to_time_series(resolved.samples_per_beat);
        fixed.try_insert_melody(entry.id(), entry.song(), entry.phrase(), &series).unwrap();
        if fixed.needs_flush() {
            fixed.flush().unwrap();
        }
    }
    fixed.flush().unwrap();

    for (i, q) in queries.iter().enumerate() {
        let a = auto.query_series(q, 10);
        let f = fixed.query_series(q, 10);
        assert_eq!(a.stats, f.stats, "query #{i}: engine counters diverged");
        assert_eq!(a.matches.len(), f.matches.len(), "query #{i}");
        for (x, y) in a.matches.iter().zip(&f.matches) {
            assert_eq!((x.id, x.song, x.phrase), (y.id, y.song, y.phrase), "query #{i}");
            assert_eq!(x.distance.to_bits(), y.distance.to_bits(), "query #{i}");
        }
    }
    let _ = std::fs::remove_dir_all(&auto_dir);
    let _ = std::fs::remove_dir_all(&fixed_dir);
}

#[test]
fn auto_build_matches_fixed_build_at_every_shard_count() {
    let db = database();
    let queries = hums(&db, 3);
    for shards in [1usize, 2, 5] {
        let config = QbhConfig { shards, ..auto_config() };
        let auto = QbhSystem::build(&db, &config);
        let resolved = *auto.config();
        let fixed = QbhSystem::build(&db, &resolved);
        for (i, q) in queries.iter().enumerate() {
            let a = auto.query_series(q, 10);
            let f = fixed.query_series(q, 10);
            assert_eq!(a.stats, f.stats, "shards {shards} query #{i}");
            for (x, y) in a.matches.iter().zip(&f.matches) {
                assert_eq!(x.distance.to_bits(), y.distance.to_bits(), "shards {shards} #{i}");
            }
        }
    }
}

#[test]
fn snapshot_plan_roundtrips_and_gates_the_file_version() {
    let db = database();
    let dir = temp_dir("snapshot");
    let config = auto_config();
    let sample = sample_series(&db, &config);
    let (resolved, plan) =
        QbhSystem::resolve_transform(&config, &sample, &MetricsSink::Disabled).unwrap();
    let plan = plan.expect("auto resolution produces a plan");

    // Plan present: the snapshot is the extended HUMIDX04 form and the
    // plan comes back verbatim.
    let planned = dir.join("planned.humidx");
    storage::save_planned(&planned, &db, &resolved, Some(&plan), &MetricsSink::Disabled).unwrap();
    let bytes = std::fs::read(&planned).unwrap();
    assert_eq!(&bytes[..8], b"HUMIDX04");
    let (loaded_db, loaded_config, loaded_plan) =
        storage::load_planned(&planned, &MetricsSink::Disabled).unwrap();
    assert_eq!(loaded_db.len(), db.len());
    assert_eq!(loaded_config, resolved);
    assert_eq!(loaded_plan.as_ref(), Some(&plan));

    // No plan: byte-identical discipline — the file stays plain HUMIDX03
    // and loads with no plan attached.
    let plain = dir.join("plain.humidx");
    storage::save_planned(&plain, &db, &resolved, None, &MetricsSink::Disabled).unwrap();
    let bytes = std::fs::read(&plain).unwrap();
    assert_eq!(&bytes[..8], b"HUMIDX03");
    let (_, _, no_plan) = storage::load_planned(&plain, &MetricsSink::Disabled).unwrap();
    assert_eq!(no_plan, None);

    // A planned snapshot loads into a queryable system carrying the plan.
    let system = QbhSystem::try_load(&planned).unwrap();
    assert_eq!(system.plan(), Some(&plan));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupting_the_plan_section_is_a_typed_error_never_a_panic() {
    let db = database();
    let dir = temp_dir("corrupt");
    let config = auto_config();
    let sample = sample_series(&db, &config);
    let (resolved, plan) =
        QbhSystem::resolve_transform(&config, &sample, &MetricsSink::Disabled).unwrap();
    let plan = plan.unwrap();

    let planned = dir.join("planned.humidx");
    let plain = dir.join("plain.humidx");
    storage::save_planned(&planned, &db, &resolved, Some(&plan), &MetricsSink::Disabled).unwrap();
    storage::save_planned(&plain, &db, &resolved, None, &MetricsSink::Disabled).unwrap();
    let pristine = std::fs::read(&planned).unwrap();
    let plan_extra = pristine.len() - std::fs::read(&plain).unwrap().len();
    assert!(plan_extra > 0, "the plan section must occupy bytes");

    // Flip a bit at every byte of the file tail that the plan section (and
    // the footer guarding it) occupies: each corruption must surface as a
    // typed error from the load, never a panic and never a silent success.
    let victim = dir.join("victim.humidx");
    for offset in pristine.len() - plan_extra..pristine.len() {
        for bit in [0u8, 7] {
            let mut bytes = pristine.clone();
            flip_bit(&mut bytes, offset, bit);
            std::fs::write(&victim, &bytes).unwrap();
            let result = storage::load_planned(&victim, &MetricsSink::Disabled);
            assert!(
                result.is_err(),
                "flipping byte {offset} bit {bit} of the plan tail went unnoticed"
            );
        }
    }

    // Truncation anywhere inside the plan section is typed too.
    for keep in [pristine.len() - 1, pristine.len() - plan_extra / 2] {
        std::fs::write(&victim, &pristine[..keep]).unwrap();
        assert!(storage::load_planned(&victim, &MetricsSink::Disabled).is_err());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupting_the_manifest_plan_is_a_typed_error_on_open() {
    let db = database();
    let dir = temp_dir("manifest-corrupt");
    let system = build_auto_store(&db, &dir, 11);
    drop(system);

    let path = manifest_path(&dir);
    let pristine = std::fs::read(&path).unwrap();
    // The plan section sits between the tombstone section and the footer;
    // flipping bits across the back half of the manifest covers it.
    for offset in (pristine.len() / 2..pristine.len()).step_by(3) {
        let mut bytes = pristine.clone();
        flip_bit(&mut bytes, offset, (offset % 8) as u8);
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            QbhSystem::try_open_store(&dir).is_err(),
            "manifest byte {offset} flip went unnoticed"
        );
    }
    // Restore: the untouched manifest still opens with its plan.
    std::fs::write(&path, &pristine).unwrap();
    let reopened = QbhSystem::try_open_store(&dir).unwrap();
    assert!(reopened.plan().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_plan_that_contradicts_the_config_is_rejected_on_load() {
    let db = database();
    let dir = temp_dir("mismatch");
    let config = auto_config();
    let sample = sample_series(&db, &config);
    let (resolved, plan) =
        QbhSystem::resolve_transform(&config, &sample, &MetricsSink::Disabled).unwrap();
    let mut plan = plan.unwrap();

    // Tamper with the evidence so it no longer describes the config: a
    // well-formed plan for a different dimensionality.
    plan.dims = if resolved.feature_dims == 4 { 8 } else { 4 };
    for c in &mut plan.candidates {
        c.dims = plan.dims;
    }
    let path = dir.join("mismatch.humidx");
    storage::save_planned(&path, &db, &resolved, Some(&plan), &MetricsSink::Disabled).unwrap();
    match QbhSystem::try_load(&path).map(|_| ()) {
        Err(StorageError::Corrupt(message)) => {
            assert!(message.contains("plan"), "unhelpful mismatch message: {message}")
        }
        other => panic!("plan/config mismatch must be Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unresolved_auto_is_a_typed_error_on_every_persistence_path() {
    let db = database();
    let dir = temp_dir("unresolved");
    let config = auto_config();

    // The plain store constructor has no sample to plan from: typed error.
    match QbhSystem::try_create_store(&dir.join("store"), &config, StoreOptions::default())
        .map(|_| ())
    {
        Err(StorageError::Unrepresentable(message)) => {
            assert!(message.contains("Auto"), "unhelpful message: {message}")
        }
        other => panic!("expected Unrepresentable, got {other:?}"),
    }

    // Direct snapshot persistence of an unresolved config: typed error.
    assert!(matches!(
        storage::save(&dir.join("auto.humidx"), &db, &config),
        Err(StorageError::Unrepresentable(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
