//! The paper's retrieval-quality protocol (Tables 2 and 3).
//!
//! Quality is reported as *rank bins*: for each hum query, where did the
//! intended target melody land in the ranked results? The paper's bins are
//! 1, 2–3, 4–5, 6–10 and "10-" (below the top ten / not retrieved).
//!
//! [`generate_hums`] produces paired hum queries so that the time-series
//! approach and the contour approach are evaluated on *identical* input —
//! the comparison Table 2 makes.

use hum_music::contour::{ContourAlphabet, ContourIndex, SegmenterConfig};
use hum_music::{HummingSimulator, SingerProfile};

use crate::corpus::MelodyDatabase;
use crate::system::QbhSystem;

/// Rank-bin histogram with the paper's bucket boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankBins {
    /// Rank 1.
    pub top1: usize,
    /// Ranks 2–3.
    pub r2_3: usize,
    /// Ranks 4–5.
    pub r4_5: usize,
    /// Ranks 6–10.
    pub r6_10: usize,
    /// Rank 11+ or not retrieved.
    pub beyond10: usize,
}

impl RankBins {
    /// Records one query's rank (`None` = not retrieved).
    pub fn record(&mut self, rank: Option<usize>) {
        match rank {
            Some(1) => self.top1 += 1,
            Some(2..=3) => self.r2_3 += 1,
            Some(4..=5) => self.r4_5 += 1,
            Some(6..=10) => self.r6_10 += 1,
            _ => self.beyond10 += 1,
        }
    }

    /// Total queries recorded.
    pub fn total(&self) -> usize {
        self.top1 + self.r2_3 + self.r4_5 + self.r6_10 + self.beyond10
    }

    /// Queries landing in the top ten.
    pub fn within_top10(&self) -> usize {
        self.total() - self.beyond10
    }

    /// The five counts in table order (1, 2–3, 4–5, 6–10, 10-).
    pub fn as_row(&self) -> [usize; 5] {
        [self.top1, self.r2_3, self.r4_5, self.r6_10, self.beyond10]
    }
}

impl std::fmt::Display for RankBins {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "1: {}  2-3: {}  4-5: {}  6-10: {}  10-: {}",
            self.top1, self.r2_3, self.r4_5, self.r6_10, self.beyond10
        )
    }
}

/// Summary retrieval metrics over a batch of queries, complementing the
/// paper's rank bins with the standard MIR aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetrievalMetrics {
    /// Mean reciprocal rank (unretrieved queries contribute 0).
    pub mrr: f64,
    /// Fraction of queries whose target ranked first.
    pub precision_at_1: f64,
    /// Fraction of queries whose target ranked in the top five.
    pub precision_at_5: f64,
    /// Fraction of queries whose target ranked in the top ten.
    pub precision_at_10: f64,
}

/// Computes [`RetrievalMetrics`] from per-query ranks (`None` = target not
/// retrieved). Returns all-zeros for an empty batch.
pub fn retrieval_metrics(ranks: &[Option<usize>]) -> RetrievalMetrics {
    if ranks.is_empty() {
        return RetrievalMetrics::default();
    }
    let n = ranks.len() as f64;
    let mut m = RetrievalMetrics::default();
    for rank in ranks.iter().flatten() {
        m.mrr += 1.0 / *rank as f64;
        if *rank == 1 {
            m.precision_at_1 += 1.0;
        }
        if *rank <= 5 {
            m.precision_at_5 += 1.0;
        }
        if *rank <= 10 {
            m.precision_at_10 += 1.0;
        }
    }
    m.mrr /= n;
    m.precision_at_1 /= n;
    m.precision_at_5 /= n;
    m.precision_at_10 /= n;
    m
}

/// Runs hum queries through a system and returns per-query target ranks
/// (searching the top `depth` results; deeper targets count as `None`).
pub fn target_ranks(system: &QbhSystem, hums: &[HumQuery], depth: usize) -> Vec<Option<usize>> {
    hums.iter()
        .map(|hum| {
            system
                .query_series(&hum.series, depth)
                .matches
                .iter()
                .position(|m| m.id == hum.target)
                .map(|p| p + 1)
        })
        .collect()
}

/// One hum query: the intended target and the hummed pitch series.
#[derive(Debug, Clone)]
pub struct HumQuery {
    /// Intended database melody.
    pub target: u64,
    /// The hummed pitch series (10 ms frames).
    pub series: Vec<f64>,
}

/// Generates `count` hum queries from a singer profile, with targets spread
/// deterministically across the database. The same `(profile, seed)` always
/// hums the same queries, so competing rankers can be compared pairwise.
pub fn generate_hums(
    db: &MelodyDatabase,
    profile: SingerProfile,
    count: usize,
    seed: u64,
) -> Vec<HumQuery> {
    assert!(!db.is_empty(), "cannot hum from an empty database");
    (0..count)
        .map(|i| {
            // Golden-ratio stride spreads targets across songs.
            let target = ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed) % db.len() as u64;
            let mut singer = HummingSimulator::new(profile, seed.wrapping_add(i as u64 * 7919));
            let series = singer.sing_series(db.entry(target).expect("in range").melody(), 0.01);
            HumQuery { target, series }
        })
        .collect()
}

/// Generates hum queries through the *full audio path*: the perturbed notes
/// are synthesized into a waveform (harmonics, vibrato, glides, breath
/// noise) and the pitch series is recovered by the autocorrelation tracker
/// at 10 ms frames — the paper's actual front end (§3.1). Both competing
/// rankers then consume this identical, realistically imperfect series.
pub fn generate_hums_audio(
    db: &MelodyDatabase,
    profile: SingerProfile,
    count: usize,
    seed: u64,
) -> Vec<HumQuery> {
    use hum_audio::{track_pitch, HumNote, HumSynthesizer, PitchTrackerConfig, SynthConfig};
    assert!(!db.is_empty(), "cannot hum from an empty database");
    (0..count)
        .map(|i| {
            let target = ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ seed) % db.len() as u64;
            let mut singer = HummingSimulator::new(profile, seed.wrapping_add(i as u64 * 7919));
            let sung = singer.sing_notes(db.entry(target).expect("in range").melody());
            let notes: Vec<HumNote> =
                sung.iter().map(|n| HumNote { midi: n.midi, seconds: n.seconds }).collect();
            let synth = HumSynthesizer::new(SynthConfig {
                seed: seed.wrapping_add(i as u64 * 104729),
                ..SynthConfig::default()
            });
            let audio = synth.render(&notes);
            let series =
                track_pitch(&audio, &PitchTrackerConfig::default()).voiced_series();
            HumQuery { target, series }
        })
        .collect()
}

/// Evaluates the time-series (warping index) approach on hum queries.
pub fn evaluate_timeseries(system: &QbhSystem, hums: &[HumQuery]) -> RankBins {
    evaluate_timeseries_banded(system, hums, system.band())
}

/// Same, at an explicit DTW band (Table 3 varies the warping width).
pub fn evaluate_timeseries_banded(
    system: &QbhSystem,
    hums: &[HumQuery],
    band: usize,
) -> RankBins {
    let mut bins = RankBins::default();
    for hum in hums {
        let results = system.query_series_banded(&hum.series, band, 10);
        let rank = results.matches.iter().position(|m| m.id == hum.target).map(|p| p + 1);
        bins.record(rank);
    }
    bins
}

/// Evaluates the contour baseline on the same hum queries.
pub fn evaluate_contour(
    db: &MelodyDatabase,
    hums: &[HumQuery],
    alphabet: ContourAlphabet,
) -> RankBins {
    let mut index = ContourIndex::new(alphabet, SegmenterConfig::default(), 3);
    for entry in db.entries() {
        index.insert(entry.id(), entry.melody());
    }
    let mut bins = RankBins::default();
    for hum in hums {
        bins.record(index.rank_of(&hum.series, hum.target));
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::QbhConfig;
    use hum_music::SongbookConfig;

    fn db() -> MelodyDatabase {
        MelodyDatabase::from_songbook(&SongbookConfig {
            songs: 20,
            phrases_per_song: 5,
            ..SongbookConfig::default()
        })
    }

    #[test]
    fn bins_classify_ranks_correctly() {
        let mut bins = RankBins::default();
        for rank in [1, 2, 3, 4, 5, 6, 10, 11, 50] {
            bins.record(Some(rank));
        }
        bins.record(None);
        assert_eq!(bins.as_row(), [1, 2, 2, 2, 3]);
        assert_eq!(bins.total(), 10);
        assert_eq!(bins.within_top10(), 7);
    }

    #[test]
    fn hum_generation_is_deterministic_and_varied() {
        let db = db();
        let a = generate_hums(&db, SingerProfile::good(), 5, 1);
        let b = generate_hums(&db, SingerProfile::good(), 5, 1);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.target, y.target);
            assert_eq!(x.series, y.series);
        }
        // Targets are not all identical.
        let distinct: std::collections::HashSet<u64> = a.iter().map(|h| h.target).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn good_singers_mostly_hit_the_top_bins() {
        let db = db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let hums = generate_hums(&db, SingerProfile::good(), 10, 42);
        let bins = evaluate_timeseries(&system, &hums);
        assert_eq!(bins.total(), 10);
        assert!(
            bins.within_top10() >= 8,
            "good singers should succeed: {bins}"
        );
    }

    #[test]
    fn timeseries_beats_contour_on_shared_audio_hums() {
        // The paper's Table 2 comparison runs on hums that went through the
        // acoustic front end; that is where the contour method's note
        // segmentation degrades.
        let db = db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let hums = generate_hums_audio(&db, SingerProfile::good(), 12, 7);
        let ts = evaluate_timeseries(&system, &hums);
        let contour = evaluate_contour(&db, &hums, ContourAlphabet::Five);
        assert!(
            ts.top1 >= contour.top1,
            "time series {ts} should not lose at rank 1 to contour {contour}"
        );
        assert!(
            ts.within_top10() >= contour.within_top10(),
            "time series {ts} vs contour {contour}"
        );
    }

    #[test]
    fn retrieval_metrics_known_values() {
        let ranks = vec![Some(1), Some(2), Some(10), None];
        let m = retrieval_metrics(&ranks);
        assert!((m.mrr - (1.0 + 0.5 + 0.1) / 4.0).abs() < 1e-12);
        assert!((m.precision_at_1 - 0.25).abs() < 1e-12);
        assert!((m.precision_at_5 - 0.5).abs() < 1e-12);
        assert!((m.precision_at_10 - 0.75).abs() < 1e-12);
        assert_eq!(retrieval_metrics(&[]), RetrievalMetrics::default());
    }

    #[test]
    fn metrics_are_monotone_in_cutoff() {
        let db = db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let hums = generate_hums(&db, SingerProfile::good(), 8, 3);
        let ranks = target_ranks(&system, &hums, 10);
        let m = retrieval_metrics(&ranks);
        assert!(m.precision_at_1 <= m.precision_at_5);
        assert!(m.precision_at_5 <= m.precision_at_10);
        assert!(m.mrr <= m.precision_at_10 + 1e-12);
        assert!(m.mrr >= m.precision_at_1 - 1e-12);
    }

    #[test]
    fn display_formats_all_bins() {
        let mut bins = RankBins::default();
        bins.record(Some(1));
        bins.record(None);
        let s = bins.to_string();
        assert!(s.contains("1: 1") && s.contains("10-: 1"));
    }
}
