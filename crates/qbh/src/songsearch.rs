//! Whole-song subsequence search.
//!
//! The phrase-segmented system ([`crate::system::QbhSystem`]) implements the
//! paper's chosen design ("we use whole sequence matching" over pre-segmented
//! phrases). This module implements the alternative the paper describes
//! first — match the hum against *every position of every full song* — by
//! concatenating each song's phrases into one long time series and indexing
//! its sliding windows with [`hum_core::subsequence::SubsequenceIndex`].
//!
//! Useful when the hummed fragment does not respect phrase boundaries
//! (users who start mid-verse), at the cost the paper predicts: many more
//! indexed windows than melodies.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use hum_core::batch::BatchOptions;
use hum_core::dtw::band_for_warping_width;
use hum_core::engine::{EngineError, EngineStats};
use hum_core::normal::NormalForm;
use hum_core::obs::MetricsSink;
use hum_core::shard::shard_for;
use hum_core::subsequence::{SubsequenceConfig, SubsequenceIndex, SubsequenceResult};
use hum_core::transform::paa::NewPaa;
use hum_index::RStarTree;
use hum_music::{Melody, Song, Songbook};

use crate::storage::StorageError;
use crate::store;

/// Song-search configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SongSearchConfig {
    /// Samples per beat when rendering songs to time series.
    pub samples_per_beat: usize,
    /// Window length in samples (≈ the length of a hummed fragment).
    pub window: usize,
    /// Hop between windows in samples.
    pub hop: usize,
    /// Normal-form length (and transform input length).
    pub normal_length: usize,
    /// Reduced feature dimensions.
    pub feature_dims: usize,
    /// Default warping width for queries.
    pub warping_width: f64,
    /// Number of song shards for scatter-gather serving (1 = monolithic).
    /// Songs route by [`shard_for`]`(song_idx, shards)`; each song's windows
    /// live wholly in its home shard, so the per-shard best-per-song
    /// distances are exact and the merged top-`k` is bit-identical to the
    /// monolithic index (stats vary with the shard count, as in
    /// [`hum_core::shard`]).
    pub shards: usize,
}

impl Default for SongSearchConfig {
    fn default() -> Self {
        SongSearchConfig {
            samples_per_beat: 4,
            window: 96,
            hop: 16,
            normal_length: 128,
            feature_dims: 8,
            warping_width: 0.1,
            shards: 1,
        }
    }
}

/// One song-level hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SongMatch {
    /// Index of the song in the songbook.
    pub song: usize,
    /// Window start offset within the song's time series, in samples.
    pub offset: usize,
    /// Offset expressed in beats.
    pub offset_beats: f64,
    /// Band-constrained DTW distance of the best window.
    pub distance: f64,
}

/// Results of a song search.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SongSearchResults {
    /// Hits, best first, at most one per song.
    pub matches: Vec<SongMatch>,
    /// Engine counters.
    pub stats: EngineStats,
}

/// Subsequence search over whole songs, hash-partitioned across independent
/// [`SubsequenceIndex`] shards (one shard by default).
pub struct SongSearch {
    shards: Vec<SubsequenceIndex<NewPaa, RStarTree>>,
    config: SongSearchConfig,
    band: usize,
    songs: usize,
    /// Durable removal-log sidecar (`HUMRML01`): the path and the set of
    /// removed song indices it holds. `None` until attached — removals are
    /// then in-memory only, as before.
    removal_log: Option<(PathBuf, BTreeSet<u64>)>,
}

impl SongSearch {
    /// Builds the search structure over a songbook.
    ///
    /// # Panics
    /// Panics on an empty songbook or degenerate configuration.
    pub fn build(book: &Songbook, config: &SongSearchConfig) -> Self {
        assert!(!book.songs.is_empty(), "empty songbook");
        let shard_count = config.shards.max(1);
        let mut shards: Vec<SubsequenceIndex<NewPaa, RStarTree>> = (0..shard_count)
            .map(|_| {
                SubsequenceIndex::new(
                    NewPaa::new(config.normal_length, config.feature_dims),
                    RStarTree::new(config.feature_dims),
                    SubsequenceConfig {
                        window: config.window,
                        hop: config.hop,
                        normal: NormalForm::with_length(config.normal_length),
                    },
                )
            })
            .collect();
        for (song_idx, song) in book.songs.iter().enumerate() {
            let mut series = Vec::new();
            for phrase in &song.phrases {
                series.extend(phrase.to_time_series(config.samples_per_beat));
            }
            shards[shard_for(song_idx as u64, shard_count)]
                .insert_source(song_idx as u64, &series);
        }
        SongSearch {
            shards,
            config: *config,
            band: band_for_warping_width(config.warping_width, config.normal_length),
            songs: book.songs.len(),
            removal_log: None,
        }
    }

    /// The shard that does / would hold `song_idx`'s windows.
    fn home(&self, song_idx: usize) -> usize {
        shard_for(song_idx as u64, self.shards.len())
    }

    /// Loads a persisted melody snapshot (either `HUMIDX` version) and
    /// builds whole-song subsequence search over it: entries are grouped by
    /// their `song` provenance (renumbered densely in ascending order) and
    /// each song's phrases are concatenated in phrase order. Reconstructed
    /// songs carry placeholder names/keys — the snapshot stores melodies,
    /// not song metadata.
    ///
    /// # Errors
    /// Any [`StorageError`] from [`crate::storage::load`], plus
    /// [`StorageError::Corrupt`] for a snapshot that holds zero melodies.
    pub fn try_load(
        path: &std::path::Path,
        config: &SongSearchConfig,
    ) -> Result<Self, StorageError> {
        Self::try_load_with(path, config, &MetricsSink::Disabled)
    }

    /// [`SongSearch::try_load`], recording the load outcome and byte count
    /// into a metrics sink.
    pub fn try_load_with(
        path: &std::path::Path,
        config: &SongSearchConfig,
        metrics: &MetricsSink,
    ) -> Result<Self, StorageError> {
        let (db, _) = crate::storage::load_with(path, metrics)?;
        if db.is_empty() {
            return Err(StorageError::Corrupt(
                "snapshot holds no melodies; cannot build song search".into(),
            ));
        }
        let mut by_song: BTreeMap<usize, Vec<(usize, Melody)>> = BTreeMap::new();
        for entry in db.entries() {
            by_song
                .entry(entry.song())
                .or_default()
                .push((entry.phrase(), entry.melody().clone()));
        }
        let songs = by_song
            .into_iter()
            .map(|(song, mut phrases)| {
                phrases.sort_by_key(|(phrase, _)| *phrase);
                Song {
                    name: format!("Song {song}"),
                    tonic: 60,
                    major: true,
                    phrases: phrases.into_iter().map(|(_, melody)| melody).collect(),
                }
            })
            .collect();
        Ok(Self::build(&Songbook { songs }, config))
    }

    /// [`SongSearch::try_load_with`] plus a durable removal log: songs
    /// logged in `log_path` are dropped after the rebuild (the snapshot
    /// still contains them — song removal does not rewrite it), and
    /// subsequent [`SongSearch::try_remove_song`] calls append to the log
    /// *before* removing in memory, so a crash-and-reload never resurrects
    /// a removed song. A missing log file is an empty log.
    ///
    /// Song indices here are the dense rebuild indices, which are
    /// deterministic for a given snapshot — the log stays meaningful
    /// across reloads as long as the snapshot is unchanged.
    ///
    /// # Errors
    /// As [`SongSearch::try_load_with`], plus any [`StorageError`] reading
    /// the log.
    pub fn try_load_durable(
        path: &Path,
        log_path: &Path,
        config: &SongSearchConfig,
        metrics: &MetricsSink,
    ) -> Result<Self, StorageError> {
        let mut search = Self::try_load_with(path, config, metrics)?;
        search.attach_removal_log(log_path)?;
        Ok(search)
    }

    /// Attaches a removal-log sidecar at `log_path` and applies it: songs
    /// the log names are dropped from the in-memory index now (they were
    /// durably removed in a previous life), and future removals write
    /// through the log. Returns how many currently-indexed songs the log
    /// dropped.
    ///
    /// # Errors
    /// Any [`StorageError`] reading an existing log (a missing file is an
    /// empty log, not an error).
    pub fn attach_removal_log(&mut self, log_path: &Path) -> Result<usize, StorageError> {
        let logged = store::load_removal_log(log_path)?;
        let mut dropped = 0;
        for &idx in &logged {
            let home = self.home(idx as usize);
            if self.shards[home].remove_source(idx) {
                self.songs -= 1;
                dropped += 1;
            }
        }
        self.removal_log = Some((log_path.to_path_buf(), logged));
        Ok(dropped)
    }

    /// Live insert: renders a song (its phrases concatenated in order) to
    /// one time series and indexes its sliding windows under `song_idx`.
    /// On error nothing changes.
    ///
    /// # Errors
    /// [`EngineError::DuplicateId`] when `song_idx` is already indexed or
    /// reserved by the attached removal log (a durably-removed index is
    /// never re-used), [`EngineError::EmptyQuery`] for a song with no
    /// renderable samples, and [`EngineError::NonFiniteSample`] for
    /// NaN/infinite samples.
    pub fn try_insert_song(&mut self, song_idx: usize, song: &Song) -> Result<(), EngineError> {
        let mut series = Vec::new();
        for phrase in &song.phrases {
            series.extend(phrase.to_time_series(self.config.samples_per_beat));
        }
        // A logged index stays reserved: re-using it would desynchronize
        // the in-memory view from what a reload reconstructs (the log
        // would kill the fresh copy along with the old one). Mirrors the
        // tombstone reservation in [`crate::system::QbhSystem`].
        if self.removal_log.as_ref().is_some_and(|(_, logged)| logged.contains(&(song_idx as u64)))
        {
            return Err(EngineError::DuplicateId(song_idx as u64));
        }
        // A song index always hashes to the same shard, so the per-shard
        // duplicate check is a global one.
        let home = self.home(song_idx);
        self.shards[home].try_insert_source(song_idx as u64, &series)?;
        self.songs += 1;
        Ok(())
    }

    /// Live removal: drops every window of `song_idx` from its home shard.
    /// Returns `Ok(true)` if the song was indexed.
    ///
    /// With a removal log attached ([`SongSearch::attach_removal_log`] /
    /// [`SongSearch::try_load_durable`]) the removal is written to the log
    /// **before** the in-memory drop, so a crash-and-reload can never
    /// resurrect the song; without one the removal is in-memory only and
    /// this never errors.
    ///
    /// # Errors
    /// Any I/O or encoding failure writing the log; the song stays indexed
    /// and queryable on error.
    pub fn try_remove_song(&mut self, song_idx: usize) -> Result<bool, StorageError> {
        let home = self.home(song_idx);
        if !self.shards[home].contains_source(song_idx as u64) {
            return Ok(false);
        }
        if let Some((path, logged)) = self.removal_log.as_mut() {
            let mut next = logged.clone();
            next.insert(song_idx as u64);
            store::save_removal_log(path, &next)?;
            *logged = next;
        }
        self.shards[home].remove_source(song_idx as u64);
        self.songs -= 1;
        Ok(true)
    }

    /// Number of indexed songs.
    pub fn song_count(&self) -> usize {
        self.songs
    }

    /// Number of song shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of indexed windows across all shards (the cost the paper
    /// warns about).
    pub fn window_count(&self) -> usize {
        self.shards.iter().map(SubsequenceIndex::window_count).sum()
    }

    /// Finds the `k` most likely songs for a hummed pitch series, with the
    /// best-matching position inside each. Every shard reports its own
    /// top-`k` songs (each song's windows live wholly in one shard, so the
    /// per-song best window and distance are exact); the `k` best of the
    /// union are exactly the monolithic top-`k`.
    pub fn query(&self, pitch_series: &[f64], k: usize) -> SongSearchResults {
        if self.shards.len() == 1 {
            return self.annotate(self.shards[0].knn(pitch_series, self.band, k, true));
        }
        let runs: Vec<SubsequenceResult> = self
            .shards
            .iter()
            .map(|shard| shard.knn(pitch_series, self.band, k, true))
            .collect();
        self.annotate(merge_song_results(runs, k))
    }

    /// Batched [`SongSearch::query`]: one result per hummed series, in
    /// submission order, fanned out across [`BatchOptions::threads`] worker
    /// threads. Bit-identical to sequential queries for every thread count
    /// (each shard's batch is deterministic, and the per-query merge across
    /// shards is order-fixed).
    pub fn query_batch(
        &self,
        pitch_series: &[Vec<f64>],
        k: usize,
        options: &BatchOptions,
    ) -> Vec<SongSearchResults> {
        if self.shards.len() == 1 {
            return self.shards[0]
                .knn_batch(pitch_series, self.band, k, true, options)
                .into_iter()
                .map(|r| self.annotate(r))
                .collect();
        }
        let mut per_shard: Vec<std::vec::IntoIter<SubsequenceResult>> = self
            .shards
            .iter()
            .map(|shard| shard.knn_batch(pitch_series, self.band, k, true, options).into_iter())
            .collect();
        // Transpose: `knn_batch` yields one result per query per shard, so
        // taking the next result from every shard's iterator reassembles
        // one query's per-shard runs.
        (0..pitch_series.len())
            .map(|_| {
                let runs: Vec<SubsequenceResult> =
                    per_shard.iter_mut().filter_map(Iterator::next).collect();
                self.annotate(merge_song_results(runs, k))
            })
            .collect()
    }

    fn annotate(&self, result: hum_core::subsequence::SubsequenceResult) -> SongSearchResults {
        let matches = result
            .matches
            .into_iter()
            .map(|m| SongMatch {
                song: m.source as usize,
                offset: m.offset,
                offset_beats: m.offset as f64 / self.config.samples_per_beat as f64,
                distance: m.distance,
            })
            .collect();
        SongSearchResults { matches, stats: result.stats }
    }
}

/// Gathers per-shard song k-NN results: counters absorb in fixed shard
/// order; matches sort by `(distance, source)` — the same total order the
/// per-shard lists use, and song indices are unique across shards — then
/// truncate to the global top-`k`.
fn merge_song_results(runs: Vec<SubsequenceResult>, k: usize) -> SubsequenceResult {
    let mut stats = EngineStats::default();
    let mut matches = Vec::new();
    for run in runs {
        stats.absorb(&run.stats);
        matches.extend(run.matches);
    }
    matches.sort_by(|a, b| {
        a.distance.total_cmp(&b.distance).then_with(|| a.source.cmp(&b.source))
    });
    matches.truncate(k);
    stats.matches = matches.len() as u64;
    SubsequenceResult { matches, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};

    fn book() -> Songbook {
        Songbook::generate(&SongbookConfig {
            songs: 8,
            phrases_per_song: 6,
            ..SongbookConfig::default()
        })
    }

    #[test]
    fn hum_of_a_mid_song_phrase_finds_the_song() {
        let book = book();
        let search = SongSearch::build(&book, &SongSearchConfig::default());
        assert_eq!(search.song_count(), 8);
        assert!(search.window_count() > 8 * 6, "windows should outnumber phrases");

        let mut hits = 0;
        for (i, (song_idx, phrase_idx)) in
            [(2usize, 3usize), (5, 1), (7, 4), (0, 0)].iter().enumerate()
        {
            let phrase = &book.songs[*song_idx].phrases[*phrase_idx];
            let mut singer = HummingSimulator::new(SingerProfile::good(), 50 + i as u64);
            let hum = singer.sing_series(phrase, 0.01);
            let results = search.query(&hum, 3);
            if results.matches.iter().any(|m| m.song == *song_idx) {
                hits += 1;
            }
        }
        assert!(hits >= 3, "only {hits}/4 mid-song hums located their song");
    }

    #[test]
    fn exact_window_reports_sensible_offset() {
        let book = book();
        let config = SongSearchConfig::default();
        let search = SongSearch::build(&book, &config);
        // Rebuild song 3's series and query with an exact interior window.
        let mut series = Vec::new();
        for phrase in &book.songs[3].phrases {
            series.extend(phrase.to_time_series(config.samples_per_beat));
        }
        let start = 160;
        let window = &series[start..start + config.window];
        let results = search.query(window, 1);
        let top = &results.matches[0];
        assert_eq!(top.song, 3);
        // The hop quantizes offsets; the best window starts within one hop.
        assert!(
            top.offset.abs_diff(start) <= config.hop,
            "offset {} vs planted {}",
            top.offset,
            start
        );
        assert_eq!(top.offset_beats, top.offset as f64 / 4.0);
    }

    #[test]
    fn batched_song_queries_match_sequential() {
        let book = book();
        let search = SongSearch::build(&book, &SongSearchConfig::default());
        let hums: Vec<Vec<f64>> = (0..4)
            .map(|i| {
                let phrase = &book.songs[i % book.songs.len()].phrases[1];
                HummingSimulator::new(SingerProfile::good(), 70 + i as u64)
                    .sing_series(phrase, 0.01)
            })
            .collect();
        let expected: Vec<SongSearchResults> =
            hums.iter().map(|h| search.query(h, 3)).collect();
        for threads in [1, 2, 8] {
            let got = search.query_batch(&hums, 3, &BatchOptions::new(threads, 2));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn live_song_insert_and_removal_round_trip() {
        let full = book();
        let config = SongSearchConfig::default();
        // Build over the first 7 songs, then live-insert the 8th.
        let partial = Songbook { songs: full.songs[..7].to_vec() };
        let mut search = SongSearch::build(&partial, &config);
        assert_eq!(search.song_count(), 7);

        search.try_insert_song(7, &full.songs[7]).unwrap();
        assert_eq!(search.song_count(), 8);
        assert_eq!(
            search.try_insert_song(7, &full.songs[7]).unwrap_err(),
            EngineError::DuplicateId(7)
        );

        // Query with an exact interior window of the inserted song: it must
        // match its own window at (near-)zero distance.
        let mut series = Vec::new();
        for phrase in &full.songs[7].phrases {
            series.extend(phrase.to_time_series(config.samples_per_beat));
        }
        let window = &series[64..64 + config.window];
        let top = &search.query(window, 1).matches[0];
        assert_eq!(top.song, 7, "live-inserted song must be findable");
        assert!(top.distance < 1e-9);

        assert!(search.try_remove_song(7).unwrap());
        assert!(!search.try_remove_song(7).unwrap());
        assert_eq!(search.song_count(), 7);
        assert!(
            search.query(window, 8).matches.iter().all(|m| m.song != 7),
            "removed song must not appear in results"
        );
    }

    #[test]
    fn sharded_song_search_matches_monolithic() {
        let book = book();
        let mono = SongSearch::build(&book, &SongSearchConfig::default());
        let hums: Vec<Vec<f64>> = (0..4)
            .map(|i| {
                let phrase = &book.songs[(i * 2) % book.songs.len()].phrases[i % 6];
                HummingSimulator::new(SingerProfile::good(), 300 + i as u64)
                    .sing_series(phrase, 0.01)
            })
            .collect();
        for shards in [2usize, 3, 8] {
            let config = SongSearchConfig { shards, ..SongSearchConfig::default() };
            let search = SongSearch::build(&book, &config);
            assert_eq!(search.shard_count(), shards);
            assert_eq!(search.window_count(), mono.window_count());
            for hum in &hums {
                assert_eq!(
                    search.query(hum, 3).matches,
                    mono.query(hum, 3).matches,
                    "shards={shards}"
                );
            }
            // The batched form merges per query, identically to sequential
            // queries, at every thread count.
            let expected: Vec<SongSearchResults> =
                hums.iter().map(|h| search.query(h, 3)).collect();
            for threads in [1, 4] {
                let got = search.query_batch(&hums, 3, &BatchOptions::new(threads, 2));
                assert_eq!(got, expected, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn results_are_deduped_per_song() {
        let book = book();
        let search = SongSearch::build(&book, &SongSearchConfig::default());
        let phrase = &book.songs[1].phrases[2];
        let hum =
            HummingSimulator::new(SingerProfile::good(), 9).sing_series(phrase, 0.01);
        let results = search.query(&hum, 5);
        let mut songs: Vec<usize> = results.matches.iter().map(|m| m.song).collect();
        let before = songs.len();
        songs.dedup();
        assert_eq!(songs.len(), before, "every hit must be a distinct song");
    }
}
