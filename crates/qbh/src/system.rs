//! The assembled QBH system.
//!
//! Wraps the `hum-core` engine with the music-specific plumbing: melody →
//! time series rendering (§3.2), pitch-series normal forms (§3.3), audio
//! ingestion through the pitch tracker (§3.1), and provenance-aware results
//! (which song, which phrase).

use std::collections::HashMap;

use hum_audio::{track_pitch, PitchTrackerConfig};
use hum_core::batch::BatchOptions;
use hum_core::dtw::band_for_warping_width;
use hum_core::engine::{
    check_finite, DtwIndexEngine, EngineConfig, EngineError, EngineStats, QueryRequest,
    QueryScratch,
};
use hum_core::normal::NormalForm;
use hum_core::session::QuerySession;
use hum_core::obs::{MetricsSink, QueryTrace};
use hum_core::shard::ShardedEngine;
use hum_core::transform::dft::Dft;
use hum_core::transform::dwt::Dwt;
use hum_core::transform::paa::{KeoghPaa, NewPaa};
use hum_core::transform::svd::SvdTransform;
use hum_core::transform::EnvelopeTransform;
use hum_index::{GridFile, LinearScan, RStarTree, SpatialIndex};

use crate::corpus::MelodyDatabase;
use crate::storage::StorageError;

/// Which envelope transform the index uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// The paper's improved PAA envelope transform (default).
    NewPaa,
    /// Keogh's original PAA envelope transform (comparison baseline).
    KeoghPaa,
    /// Truncated Fourier features.
    Dft,
    /// Truncated Haar wavelet features.
    Dwt,
    /// Data-adaptive SVD features (fitted on the database).
    Svd,
}

/// Which spatial index backend stores the feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// R\*-tree (the paper's choice).
    RStar,
    /// Grid file.
    Grid,
    /// Linear scan baseline.
    Linear,
}

/// System configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QbhConfig {
    /// Canonical normal-form length (the paper's large-database experiments
    /// use 128).
    pub normal_length: usize,
    /// Reduced feature dimensionality (the paper indexes 8 dimensions).
    pub feature_dims: usize,
    /// Time-series samples per beat when rendering database melodies.
    pub samples_per_beat: usize,
    /// Default warping width δ = (2k+1)/n for queries.
    pub warping_width: f64,
    /// Envelope transform choice.
    pub transform: TransformKind,
    /// Index backend choice.
    pub backend: Backend,
    /// Page size in bytes for the backend.
    pub page_bytes: usize,
    /// Number of corpus shards for scatter-gather serving (1 = monolithic).
    /// Matches are bit-identical at every shard count; see
    /// [`hum_core::shard`] for the determinism contract.
    pub shards: usize,
}

impl Default for QbhConfig {
    fn default() -> Self {
        QbhConfig {
            normal_length: 128,
            feature_dims: 8,
            samples_per_beat: 4,
            warping_width: 0.1,
            transform: TransformKind::NewPaa,
            backend: Backend::RStar,
            page_bytes: 4096,
            shards: 1,
        }
    }
}

/// One retrieval hit with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct QbhMatch {
    /// Database melody id.
    pub id: u64,
    /// Source song index.
    pub song: usize,
    /// Phrase index within the song.
    pub phrase: usize,
    /// Exact band-constrained DTW distance to the query's normal form.
    pub distance: f64,
}

/// Ranked retrieval results plus work counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QbhResults {
    /// Matches sorted by ascending DTW distance.
    pub matches: Vec<QbhMatch>,
    /// Engine counters for the query.
    pub stats: EngineStats,
}

/// The engine type the system assembles: a sharded scatter-gather engine
/// over trait objects for the configured transform and backend, `Send +
/// Sync` so batched queries can fan out across threads. With
/// [`QbhConfig::shards`]` == 1` (the default) the single shard *is* the
/// monolithic engine.
pub type QbhEngine =
    ShardedEngine<Box<dyn EnvelopeTransform + Send + Sync>, Box<dyn SpatialIndex + Send + Sync>>;

/// A built query-by-humming system.
pub struct QbhSystem {
    engine: QbhEngine,
    normal: NormalForm,
    band: usize,
    // Keyed by melody id (not a Vec indexed by id): live inserts may use
    // arbitrary ids, and removals leave holes.
    provenance: HashMap<u64, (usize, usize)>,
}

impl QbhSystem {
    /// Builds the system over a melody database.
    ///
    /// # Panics
    /// Panics on an empty database or a configuration the chosen transform
    /// rejects (e.g. PAA dims not dividing the normal length).
    pub fn build(db: &MelodyDatabase, config: &QbhConfig) -> Self {
        assert!(!db.is_empty(), "cannot build over an empty melody database");
        let normal = NormalForm::with_length(config.normal_length);

        let normals: Vec<Vec<f64>> = db
            .entries()
            .iter()
            .map(|e| normal.apply(&e.melody().to_time_series(config.samples_per_beat)))
            .collect();

        // SVD is data-adaptive: fit it *once* on the same global sample every
        // shard count sees, then clone the fitted basis into each shard.
        // Feature vectors are therefore shard-count-invariant, which the
        // bit-identical-results contract depends on.
        // SVD is data-adaptive: fit it *once* on the same global sample every
        // shard count sees, then clone the fitted basis into each shard.
        // Feature vectors are therefore shard-count-invariant, which the
        // bit-identical-results contract depends on.
        let mut svd: Option<SvdTransform> = None;
        let mut make_transform = || -> Box<dyn EnvelopeTransform + Send + Sync> {
            match config.transform {
                TransformKind::NewPaa => {
                    Box::new(NewPaa::new(config.normal_length, config.feature_dims))
                }
                TransformKind::KeoghPaa => {
                    Box::new(KeoghPaa::new(config.normal_length, config.feature_dims))
                }
                TransformKind::Dft => {
                    Box::new(Dft::new(config.normal_length, config.feature_dims))
                }
                TransformKind::Dwt => {
                    Box::new(Dwt::new(config.normal_length, config.feature_dims))
                }
                TransformKind::Svd => {
                    let fitted = svd.get_or_insert_with(|| {
                        let sample: Vec<Vec<f64>> =
                            normals.iter().take(500).cloned().collect();
                        SvdTransform::fit(&sample, config.feature_dims)
                    });
                    Box::new(fitted.clone())
                }
            }
        };
        let make_index = || -> Box<dyn SpatialIndex + Send + Sync> {
            match config.backend {
                Backend::RStar => {
                    Box::new(RStarTree::with_page_size(config.feature_dims, config.page_bytes))
                }
                Backend::Grid => Box::new(GridFile::with_params(
                    config.feature_dims,
                    8,
                    1024,
                    config.page_bytes,
                )),
                Backend::Linear => {
                    Box::new(LinearScan::with_page_size(config.feature_dims, config.page_bytes))
                }
            }
        };

        let mut engine = QbhEngine::build(config.shards.max(1), |_| {
            DtwIndexEngine::new(make_transform(), make_index(), EngineConfig::default())
        });
        let mut provenance = HashMap::with_capacity(db.len());
        for (entry, nf) in db.entries().iter().zip(normals) {
            engine.insert(entry.id(), nf);
            provenance.insert(entry.id(), (entry.song(), entry.phrase()));
        }
        QbhSystem {
            engine,
            normal,
            band: band_for_warping_width(config.warping_width, config.normal_length),
            provenance,
        }
    }

    /// Loads a persisted snapshot (either `HUMIDX` version) and builds the
    /// system over it.
    ///
    /// # Errors
    /// Any [`StorageError`] from [`crate::storage::load`], plus
    /// [`StorageError::Corrupt`] for a snapshot that holds zero melodies
    /// (structurally valid, but no system can be built over it). The
    /// configuration itself is validated during the read, so this never
    /// panics on untrusted files.
    pub fn try_load(path: &std::path::Path) -> Result<Self, StorageError> {
        Self::try_load_with(path, &MetricsSink::Disabled)
    }

    /// [`QbhSystem::try_load`], recording the load outcome and byte count
    /// into `metrics` and installing the same sink on the built engine so
    /// subsequent queries are recorded too.
    pub fn try_load_with(
        path: &std::path::Path,
        metrics: &MetricsSink,
    ) -> Result<Self, StorageError> {
        Self::try_load_with_shards(path, metrics, None)
    }

    /// [`QbhSystem::try_load_with`] with an optional shard-count override
    /// (the serving layer's `--shards` knob). `Some(n)` re-shards the loaded
    /// corpus into `n` shards regardless of what the snapshot was persisted
    /// with; `None` keeps the snapshot's own shard count (always 1 for
    /// `HUMIDX01`/`HUMIDX02` files). Query results are bit-identical either
    /// way.
    ///
    /// # Errors
    /// Same as [`QbhSystem::try_load_with`].
    pub fn try_load_with_shards(
        path: &std::path::Path,
        metrics: &MetricsSink,
        shards: Option<usize>,
    ) -> Result<Self, StorageError> {
        let (db, mut config) = crate::storage::load_with(path, metrics)?;
        if db.is_empty() {
            return Err(StorageError::Corrupt(
                "snapshot holds no melodies; cannot build a query system".into(),
            ));
        }
        if let Some(n) = shards {
            config.shards = n.max(1);
        }
        let mut system = Self::build(&db, &config);
        system.set_metrics(metrics.clone());
        Ok(system)
    }

    /// Number of indexed melodies.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// `true` if nothing is indexed (never after a successful build).
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// The DTW band implied by the configured warping width.
    pub fn band(&self) -> usize {
        self.band
    }

    /// Number of corpus shards the engine scatters queries across.
    pub fn shard_count(&self) -> usize {
        self.engine.shard_count()
    }

    /// The underlying engine, for experiments that need raw control.
    pub fn engine(&self) -> &QbhEngine {
        &self.engine
    }

    /// Points the engine at a metrics sink (see
    /// [`DtwIndexEngine::set_metrics`]); pass [`MetricsSink::enabled`] to
    /// start recording every query into a shared registry.
    pub fn set_metrics(&mut self, sink: MetricsSink) {
        self.engine.set_metrics(sink);
    }

    /// The metrics sink in use (disabled by default).
    pub fn metrics(&self) -> &MetricsSink {
        self.engine.metrics()
    }

    /// Opens an incremental query session: the request template's kind,
    /// band, trace, and scan settings apply to every refinement (any
    /// series already on the template is ignored — frames stream in
    /// through [`QuerySession::append`]). Use [`QbhSystem::band`] for the
    /// configured warping width. The session owns the incremental
    /// normal-form state; [`QbhSystem::try_refine_session`] answers the
    /// query over everything appended so far, bit-identical to a one-shot
    /// [`QbhSystem::try_query_request`] over the same prefix.
    pub fn open_session(&self, template: QueryRequest) -> QuerySession {
        QuerySession::new(template, self.normal)
    }

    /// Refines a session: answers its query over every frame appended so
    /// far, annotated with provenance. The session's template budget
    /// governs the deadline (attach one with
    /// [`QueryRequest::with_budget`] before opening, or use the
    /// scratch-reusing form).
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`] before the first append, plus anything
    /// the engine reports — [`EngineError::DeadlineExceeded`] carries the
    /// partial counters when the budget expires mid-refinement.
    pub fn try_refine_session(
        &self,
        session: &QuerySession,
    ) -> Result<(QbhResults, Option<QueryTrace>), EngineError> {
        let mut scratch = QueryScratch::new();
        self.try_refine_session_with(session, &mut scratch)
    }

    /// [`QbhSystem::try_refine_session`] computing in caller-provided
    /// scratch — the serving path reuses one scratch per worker. Results
    /// and counters are identical to the fresh-scratch form.
    ///
    /// # Errors
    /// Same as [`QbhSystem::try_refine_session`].
    pub fn try_refine_session_with(
        &self,
        session: &QuerySession,
        scratch: &mut QueryScratch,
    ) -> Result<(QbhResults, Option<QueryTrace>), EngineError> {
        let budget = session.template().budget();
        let outcome = session.refine(&self.engine, budget, scratch)?;
        Ok((self.annotate(outcome.result), outcome.trace))
    }

    /// Executes a [`QueryRequest`] on a hummed pitch series: the series is
    /// normalized and attached to the request (any series already on the
    /// request is replaced), so callers only choose kind, band, trace, and
    /// scan fallback. Use [`QbhSystem::band`] for the configured warping
    /// width. Returns annotated results plus the cascade trace when the
    /// request asked for one.
    ///
    /// Implemented as a degenerate session — open, append everything,
    /// refine once — so the one-shot and streaming surfaces cannot drift:
    /// there is exactly one path from raw frames to the engine.
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`] on an empty pitch series, plus anything
    /// [`DtwIndexEngine::try_query`] reports.
    pub fn try_query_request(
        &self,
        pitch_series: &[f64],
        request: QueryRequest,
    ) -> Result<(QbhResults, Option<QueryTrace>), EngineError> {
        let mut scratch = QueryScratch::new();
        self.try_query_request_with(pitch_series, request, &mut scratch)
    }

    /// [`QbhSystem::try_query_request`] computing in caller-provided
    /// scratch — the server's worker pool reuses one scratch per worker.
    /// Results and counters are identical to the fresh-scratch form.
    ///
    /// # Errors
    /// Same as [`QbhSystem::try_query_request`].
    pub fn try_query_request_with(
        &self,
        pitch_series: &[f64],
        request: QueryRequest,
        scratch: &mut QueryScratch,
    ) -> Result<(QbhResults, Option<QueryTrace>), EngineError> {
        let mut session = self.open_session(request);
        // An empty series leaves the session empty; refinement reports
        // `EmptyQuery` before `NormalForm::apply` could see it.
        session.append(pitch_series)?;
        self.try_refine_session_with(&session, scratch)
    }

    /// Live insert: renders a raw (hummed-scale) pitch series to normal
    /// form, indexes it under `id`, and records its provenance. The melody
    /// is queryable as soon as this returns; on error nothing changes.
    ///
    /// # Errors
    /// [`EngineError::EmptyQuery`] on an empty series,
    /// [`EngineError::NonFiniteSample`] on NaN/infinite samples (checked on
    /// the *raw* series, before resampling can smear the poison), and
    /// [`EngineError::DuplicateId`] when `id` is already indexed.
    pub fn try_insert_melody(
        &mut self,
        id: u64,
        song: usize,
        phrase: usize,
        pitch_series: &[f64],
    ) -> Result<(), EngineError> {
        if pitch_series.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        check_finite(pitch_series, "inserted pitch series")?;
        self.engine.try_insert(id, self.normal.apply(pitch_series))?;
        self.provenance.insert(id, (song, phrase));
        Ok(())
    }

    /// Live removal: drops the melody stored under `id` from the engine,
    /// the index, and the provenance table. Returns `true` if it was
    /// present.
    pub fn try_remove(&mut self, id: u64) -> bool {
        if !self.engine.remove(id) {
            return false;
        }
        self.provenance.remove(&id);
        true
    }

    /// Panicking form of [`QbhSystem::try_query_request`].
    ///
    /// # Panics
    /// Panics on any [`EngineError`] the `try_` form would return.
    pub fn query_request(
        &self,
        pitch_series: &[f64],
        request: QueryRequest,
    ) -> (QbhResults, Option<QueryTrace>) {
        self.try_query_request(pitch_series, request).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Top-`k` matches for a hummed pitch series (fractional MIDI values,
    /// silence already removed), at the configured warping width.
    pub fn query_series(&self, pitch_series: &[f64], k: usize) -> QbhResults {
        self.query_series_banded(pitch_series, self.band, k)
    }

    /// Top-`k` matches at an explicit DTW band.
    ///
    /// # Panics
    /// Panics on an empty pitch series.
    pub fn query_series_banded(&self, pitch_series: &[f64], band: usize, k: usize) -> QbhResults {
        let query = self.normal.apply(pitch_series);
        let request = QueryRequest::knn(k).with_series(query).with_band(band);
        self.annotate(self.engine.query(&request).result)
    }

    /// ε-range query on the normal-form DTW distance (used by the candidate
    /// and page-access experiments).
    pub fn range_query(&self, pitch_series: &[f64], band: usize, radius: f64) -> QbhResults {
        let query = self.normal.apply(pitch_series);
        let request = QueryRequest::range(radius).with_series(query).with_band(band);
        self.annotate(self.engine.query(&request).result)
    }

    /// Batched [`QbhSystem::query_series`]: top-`k` matches for each of `n`
    /// hummed pitch series at the configured warping width, executed across
    /// [`BatchOptions::threads`] worker threads in deterministic fixed-size
    /// chunks. Results — matches *and* counters — are bit-identical to `n`
    /// sequential [`QbhSystem::query_series`] calls for every thread count.
    pub fn query_series_batch(
        &self,
        pitch_series: &[Vec<f64>],
        k: usize,
        options: &BatchOptions,
    ) -> Vec<QbhResults> {
        let batch: Vec<QueryRequest> = pitch_series
            .iter()
            .map(|series| {
                QueryRequest::knn(k).with_series(self.normal.apply(series)).with_band(self.band)
            })
            .collect();
        self.engine
            .try_query_batch(&batch, options)
            .unwrap_or_else(|e| panic!("{e}"))
            .outcomes
            .into_iter()
            .map(|o| self.annotate(o.result))
            .collect()
    }

    /// Full pipeline from raw microphone audio: pitch-track at 10 ms frames,
    /// drop silence, and search.
    ///
    /// Returns empty results when no voiced frames were found.
    pub fn query_audio(&self, samples: &[f64], sample_rate: u32, k: usize) -> QbhResults {
        let tracker = PitchTrackerConfig { sample_rate, ..PitchTrackerConfig::default() };
        let series = track_pitch(samples, &tracker).voiced_series();
        if series.is_empty() {
            return QbhResults::default();
        }
        self.query_series(&series, k)
    }

    fn annotate(&self, result: hum_core::engine::QueryResult) -> QbhResults {
        let matches = result
            .matches
            .into_iter()
            .map(|(id, distance)| {
                // Every indexed id has provenance (insert paths record it in
                // lockstep); a miss would be an internal bug, so surface it
                // loudly in debug builds and degrade to (0, 0) in release.
                let provenance = self.provenance.get(&id).copied();
                debug_assert!(provenance.is_some(), "id {id} has no provenance");
                let (song, phrase) = provenance.unwrap_or((0, 0));
                QbhMatch { id, song, phrase, distance }
            })
            .collect();
        QbhResults { matches, stats: result.stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hum_audio::{HumSynthesizer, SynthConfig};
    use hum_music::{HummingSimulator, SingerProfile, SongbookConfig};

    fn small_db() -> MelodyDatabase {
        MelodyDatabase::from_songbook(&SongbookConfig {
            songs: 10,
            phrases_per_song: 5,
            ..SongbookConfig::default()
        })
    }

    #[test]
    fn exact_rendition_ranks_first() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        // "Hum" phrase 12 perfectly: its own time series.
        let series = db.entry(12).unwrap().melody().to_time_series(4);
        let results = system.query_series(&series, 5);
        assert_eq!(results.matches[0].id, 12);
        assert!(results.matches[0].distance < 1e-9);
    }

    #[test]
    fn good_singer_hum_ranks_target_highly() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let mut hits = 0;
        for (i, target) in [3u64, 17, 29, 41].iter().enumerate() {
            let mut singer = HummingSimulator::new(SingerProfile::good(), 100 + i as u64);
            let hum = singer.sing_series(db.entry(*target).unwrap().melody(), 0.01);
            let results = system.query_series(&hum, 10);
            if results.matches.iter().take(3).any(|m| m.id == *target) {
                hits += 1;
            }
        }
        assert!(hits >= 3, "only {hits}/4 hums found their target in the top 3");
    }

    #[test]
    fn provenance_is_reported() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let series = db.entry(23).unwrap().melody().to_time_series(4);
        let m = &system.query_series(&series, 1).matches[0];
        assert_eq!((m.song, m.phrase), (db.entry(23).unwrap().song(), db.entry(23).unwrap().phrase()));
    }

    #[test]
    fn all_transform_and_backend_combinations_build_and_agree() {
        let db = small_db();
        let series = db.entry(7).unwrap().melody().to_time_series(4);
        let mut reference: Option<Vec<u64>> = None;
        for transform in [
            TransformKind::NewPaa,
            TransformKind::KeoghPaa,
            TransformKind::Dft,
            TransformKind::Dwt,
            TransformKind::Svd,
        ] {
            for backend in [Backend::RStar, Backend::Grid, Backend::Linear] {
                let config = QbhConfig { transform, backend, ..QbhConfig::default() };
                let system = QbhSystem::build(&db, &config);
                let ids: Vec<u64> =
                    system.query_series(&series, 5).matches.iter().map(|m| m.id).collect();
                match &reference {
                    None => reference = Some(ids),
                    // Exact DTW refinement makes the final ranking
                    // transform- and backend-independent.
                    Some(r) => assert_eq!(&ids, r, "{transform:?}/{backend:?}"),
                }
            }
        }
    }

    #[test]
    fn sharded_system_matches_monolithic() {
        let db = small_db();
        // SVD included deliberately: it is data-adaptive, and the fit-once-
        // clone-per-shard build is what keeps its features shard-invariant.
        for transform in [TransformKind::NewPaa, TransformKind::Svd] {
            let mono =
                QbhSystem::build(&db, &QbhConfig { transform, ..QbhConfig::default() });
            for shards in [2usize, 4, 7] {
                let config = QbhConfig { transform, shards, ..QbhConfig::default() };
                let system = QbhSystem::build(&db, &config);
                assert_eq!(system.shard_count(), shards);
                for id in [3u64, 17, 29] {
                    let series = db.entry(id).unwrap().melody().to_time_series(4);
                    assert_eq!(
                        system.query_series(&series, 5).matches,
                        mono.query_series(&series, 5).matches,
                        "{transform:?} shards={shards} id={id}"
                    );
                    assert_eq!(
                        system.range_query(&series, system.band(), 2.0).matches,
                        mono.range_query(&series, mono.band(), 2.0).matches,
                        "{transform:?} shards={shards} id={id}"
                    );
                }
            }
        }
    }

    #[test]
    fn audio_pipeline_end_to_end() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let target = 31u64;
        let mut singer = HummingSimulator::new(SingerProfile::good(), 5);
        let sung = singer.sing_notes(db.entry(target).unwrap().melody());
        let hum_notes: Vec<hum_audio::HumNote> =
            sung.iter().map(|n| hum_audio::HumNote { midi: n.midi, seconds: n.seconds }).collect();
        let audio = HumSynthesizer::new(SynthConfig::default()).render(&hum_notes);
        let results = system.query_audio(&audio, 8_000, 10);
        assert!(
            results.matches.iter().any(|m| m.id == target),
            "audio-route query missed its target"
        );
    }

    #[test]
    fn batched_queries_match_sequential_for_every_thread_count() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let hums: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                let mut singer = HummingSimulator::new(SingerProfile::good(), 400 + i);
                singer.sing_series(db.entry(i * 7).unwrap().melody(), 0.01)
            })
            .collect();
        let expected: Vec<QbhResults> =
            hums.iter().map(|h| system.query_series(h, 5)).collect();
        for threads in [1, 2, 8] {
            let got = system.query_series_batch(&hums, 5, &BatchOptions::new(threads, 2));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn silent_audio_returns_empty() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let results = system.query_audio(&vec![0.0; 8000], 8_000, 5);
        assert!(results.matches.is_empty());
    }

    #[test]
    fn range_query_respects_radius() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let series = db.entry(2).unwrap().melody().to_time_series(4);
        let tight = system.range_query(&series, system.band(), 1e-6);
        assert_eq!(tight.matches.len(), 1);
        let loose = system.range_query(&series, system.band(), 1e6);
        assert_eq!(loose.matches.len(), db.len());
    }

    #[test]
    #[should_panic(expected = "empty melody database")]
    fn empty_database_rejected() {
        let _ = QbhSystem::build(&MelodyDatabase::empty(), &QbhConfig::default());
    }

    #[test]
    fn query_request_matches_legacy_paths_and_traces() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let series = db.entry(12).unwrap().melody().to_time_series(4);
        let (results, trace) = system.query_request(
            &series,
            QueryRequest::knn(5).with_band(system.band()).with_trace(true),
        );
        assert_eq!(results, system.query_series(&series, 5));
        let trace = trace.expect("trace requested");
        assert_eq!(trace.totals(), results.stats);
        assert_eq!(trace.matches, 5);
    }

    #[test]
    fn empty_pitch_series_is_a_typed_error() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        assert_eq!(
            system.try_query_request(&[], QueryRequest::knn(3)).unwrap_err(),
            EngineError::EmptyQuery
        );
    }

    #[test]
    fn live_insert_is_immediately_queryable_and_removal_unfindable() {
        let db = small_db();
        let mut system = QbhSystem::build(&db, &QbhConfig::default());
        let before = system.len();

        // A distinctive melody far from the songbook's register.
        let series: Vec<f64> = (0..64).map(|i| 90.0 + 5.0 * (i as f64 * 0.7).sin()).collect();
        system.try_insert_melody(7_000, 99, 3, &series).unwrap();
        assert_eq!(system.len(), before + 1);

        let results = system.query_series(&series, 1);
        assert_eq!(results.matches[0].id, 7_000);
        assert_eq!((results.matches[0].song, results.matches[0].phrase), (99, 3));

        assert!(system.try_remove(7_000));
        assert!(!system.try_remove(7_000), "second removal finds nothing");
        assert_eq!(system.len(), before);
        assert!(system.query_series(&series, 1).matches[0].id != 7_000);
    }

    #[test]
    fn live_insert_rejects_duplicate_ids_and_bad_samples() {
        let db = small_db();
        let mut system = QbhSystem::build(&db, &QbhConfig::default());
        let series: Vec<f64> = (0..32).map(|i| 60.0 + i as f64 * 0.1).collect();

        // Id 12 came from the database build.
        assert_eq!(
            system.try_insert_melody(12, 0, 0, &series).unwrap_err(),
            EngineError::DuplicateId(12)
        );
        assert_eq!(
            system.try_insert_melody(8_000, 0, 0, &[]).unwrap_err(),
            EngineError::EmptyQuery
        );
        let mut poisoned = series.clone();
        poisoned[7] = f64::NAN;
        let before = system.len();
        match system.try_insert_melody(8_000, 0, 0, &poisoned) {
            Err(EngineError::NonFiniteSample { index, .. }) => assert_eq!(index, 7),
            other => panic!("expected NonFiniteSample, got {other:?}"),
        }
        assert_eq!(system.len(), before, "failed insert must not change the system");
        assert!(!system.try_remove(8_000));
    }

    #[test]
    fn streaming_session_matches_one_shot_at_every_checkpoint() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig { shards: 3, ..QbhConfig::default() });
        let mut singer = HummingSimulator::new(SingerProfile::good(), 77);
        let hum = singer.sing_series(db.entry(19).unwrap().melody(), 0.01);

        let template = QueryRequest::knn(5).with_band(system.band()).with_trace(true);
        let mut session = system.open_session(template.clone());
        assert_eq!(
            system.try_refine_session(&session).unwrap_err(),
            EngineError::EmptyQuery
        );
        let mut scratch = QueryScratch::new();
        for chunk in hum.chunks(13) {
            session.append(chunk).unwrap();
            let streamed =
                system.try_refine_session_with(&session, &mut scratch).unwrap();
            let one_shot = system
                .try_query_request(session.frames(), template.clone())
                .unwrap();
            assert_eq!(streamed, one_shot, "prefix of {} frames", session.len());
        }
        // The fully-streamed hum answers exactly like the legacy surface.
        let (results, _) = system.try_query_request(&hum, template).unwrap();
        assert_eq!(results, system.query_series_banded(&hum, system.band(), 5));
    }

    #[test]
    fn scratch_reusing_query_matches_the_fresh_scratch_form() {
        let db = small_db();
        let system = QbhSystem::build(&db, &QbhConfig::default());
        let mut scratch = QueryScratch::new();
        for id in [3u64, 17, 29] {
            let series = db.entry(id).unwrap().melody().to_time_series(4);
            let request = QueryRequest::knn(5).with_band(system.band()).with_trace(true);
            let fresh = system.try_query_request(&series, request.clone()).unwrap();
            let reused =
                system.try_query_request_with(&series, request, &mut scratch).unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn metrics_sink_records_system_queries() {
        let db = small_db();
        let mut system = QbhSystem::build(&db, &QbhConfig::default());
        assert!(!system.metrics().is_enabled());
        system.set_metrics(MetricsSink::enabled());
        let series = db.entry(3).unwrap().melody().to_time_series(4);
        let results = system.query_series(&series, 4);
        let snapshot = system.metrics().registry().expect("enabled").snapshot();
        assert_eq!(snapshot.counter(hum_core::obs::Metric::KnnQueries), 1);
        assert_eq!(
            snapshot.counter(hum_core::obs::Metric::DpCells),
            results.stats.dp_cells
        );
    }
}
